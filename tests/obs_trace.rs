//! End-to-end observability contract (ISSUE 3, DESIGN.md §9): traces from a
//! real PDS scenario are deterministic (same seed → byte-identical event
//! stream, no divergence), discriminating (different seeds → a first
//! diverging event with virtual time, node and kind), non-perturbing
//! (identical `Stats` with tracing on and off), and round-trippable
//! through the JSONL schema the `pds-obs` CLI reads.

use bytes::Bytes;
use pds_core::{DataDescriptor, PdsConfig, PdsNode, QueryFilter};
use pds_obs::{
    first_divergence, phase_overhead, read_trace_file, render_divergence, JsonlSink, Phase,
    RingSink, TraceEvent, TraceKind, TraceSink,
};
use pds_sim::{Position, SimConfig, SimTime, Stats, World};

fn entry(n: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "no2")
        .attr("seq", i64::from(n))
        .build()
}

fn video(total: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "video")
        .attr("name", "clip")
        .attr("total_chunks", i64::from(total))
        .build()
}

/// Discovery plus a two-hop PDR retrieval: exercises PDD, PDR, transport
/// and radio trace events in one run.
fn run(seed: u64, sink: Option<Box<dyn TraceSink>>) -> (World, Stats) {
    let mut world = World::new(SimConfig::default(), seed);
    if let Some(sink) = sink {
        world.set_trace_sink(sink);
    }
    let chunk = |c: u32| Bytes::from(vec![c as u8; 4 * 1024]);
    let mut provider = PdsNode::new(PdsConfig::default(), 1)
        .with_chunk(video(3), pds_core::ChunkId(0), chunk(0))
        .with_chunk(video(3), pds_core::ChunkId(1), chunk(1))
        .with_chunk(video(3), pds_core::ChunkId(2), chunk(2));
    for k in 0..4u32 {
        provider = provider.with_metadata(entry(k), None);
    }
    world.add_node(Position::new(0.0, 0.0), Box::new(provider));
    world.add_node(
        Position::new(60.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 2).with_metadata(entry(10), None)),
    );
    let consumer = world.add_node(
        Position::new(120.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 3)),
    );
    world.run_until(SimTime::from_secs_f64(0.5));
    world.with_app::<PdsNode, _>(consumer, |node, ctx| {
        node.start_discovery(ctx, QueryFilter::match_all());
    });
    world.schedule(SimTime::from_secs_f64(8.0), move |w| {
        w.with_app::<PdsNode, _>(consumer, |node, ctx| {
            node.start_retrieval(ctx, video(3));
        });
    });
    world.run_until(SimTime::from_secs_f64(30.0));
    let stats = world.stats().clone();
    (world, stats)
}

fn traced_events(seed: u64) -> Vec<TraceEvent> {
    let (mut world, _) = run(seed, Some(Box::new(RingSink::new(0))));
    let sink = world.take_trace_sink().expect("sink installed");
    sink.as_any()
        .downcast_ref::<RingSink>()
        .expect("ring sink")
        .events()
}

#[test]
fn same_seed_traces_have_no_divergence() {
    let a = traced_events(42);
    let b = traced_events(42);
    assert!(!a.is_empty(), "scenario must emit trace events");
    assert!(
        first_divergence(&a, &b).is_none(),
        "same seed must replay to an identical trace"
    );
}

#[test]
fn different_seed_traces_report_first_divergence() {
    let a = traced_events(42);
    let b = traced_events(43);
    let d = first_divergence(&a, &b).expect("different seeds must diverge");
    let rendered = render_divergence(&a, &b, &d, 3);
    // The report names the first diverging event: virtual time, node, kind.
    let ev = d.left.as_ref().or(d.right.as_ref()).expect("one side set");
    assert!(
        rendered.contains(&format!("{}", ev.at_us)),
        "report must show the virtual time: {rendered}"
    );
    assert!(
        rendered.contains(&format!("{:?}", ev.kind)),
        "report must show the event kind: {rendered}"
    );
    assert!(
        rendered.contains(&format!("n{}", ev.node)),
        "report must show the node: {rendered}"
    );
}

#[test]
fn tracing_does_not_perturb_stats() {
    let (_, traced) = run(42, Some(Box::new(RingSink::new(0))));
    let (_, untraced) = run(42, None);
    assert_eq!(traced, untraced, "tracing must be observation-only");
}

#[test]
fn jsonl_file_round_trips_the_ring_trace() {
    let ring = traced_events(42);
    let path = std::env::temp_dir().join(format!("pds-obs-rt-{}.jsonl", std::process::id()));
    let (mut world, _) = run(
        42,
        Some(Box::new(
            JsonlSink::create(&path).expect("create trace file"),
        )),
    );
    drop(world.take_trace_sink()); // flushes
    let from_file = read_trace_file(&path).expect("parse trace file");
    std::fs::remove_file(&path).ok();
    assert_eq!(from_file, ring, "JSONL round trip must be lossless");
}

#[test]
fn protocol_phases_appear_in_the_trace() {
    let events = traced_events(42);
    let overhead = phase_overhead(&events);
    assert!(
        overhead.get(&Phase::Pdd).is_some_and(|o| o.bytes > 0),
        "discovery traffic must be attributed to PDD: {overhead:?}"
    );
    assert!(
        overhead.get(&Phase::Pdr).is_some_and(|o| o.bytes > 0),
        "chunk traffic must be attributed to PDR: {overhead:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::SessionFinished { .. })),
        "consumer sessions must emit SessionFinished"
    );
}
