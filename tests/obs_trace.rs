//! End-to-end observability contract (ISSUE 3, DESIGN.md §9): traces from a
//! real PDS scenario are deterministic (same seed → byte-identical event
//! stream, no divergence), discriminating (different seeds → a first
//! diverging event with virtual time, node and kind), non-perturbing
//! (identical `Stats` with tracing on and off), and round-trippable
//! through the JSONL schema the `pds-obs` CLI reads.

use bytes::Bytes;
use pds_core::{DataDescriptor, PdsConfig, PdsNode, QueryFilter};
use pds_obs::{
    critical_path, first_divergence, phase_overhead, read_trace_file, render_divergence, sessions,
    DelayComponent, FlightRecorder, JsonlSink, Phase, RingSink, TraceEvent, TraceKind, TraceSink,
};
use pds_sim::{Position, SimConfig, SimTime, Stats, World};

fn entry(n: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "no2")
        .attr("seq", i64::from(n))
        .build()
}

fn video(total: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "video")
        .attr("name", "clip")
        .attr("total_chunks", i64::from(total))
        .build()
}

/// Discovery plus a two-hop PDR retrieval: exercises PDD, PDR, transport
/// and radio trace events in one run.
fn run(seed: u64, sink: Option<Box<dyn TraceSink>>) -> (World, Stats) {
    let mut world = World::new(SimConfig::default(), seed);
    if let Some(sink) = sink {
        world.set_trace_sink(sink);
    }
    let chunk = |c: u32| Bytes::from(vec![c as u8; 4 * 1024]);
    let mut provider = PdsNode::new(PdsConfig::default(), 1)
        .with_chunk(video(3), pds_core::ChunkId(0), chunk(0))
        .with_chunk(video(3), pds_core::ChunkId(1), chunk(1))
        .with_chunk(video(3), pds_core::ChunkId(2), chunk(2));
    for k in 0..4u32 {
        provider = provider.with_metadata(entry(k), None);
    }
    world.add_node(Position::new(0.0, 0.0), Box::new(provider));
    world.add_node(
        Position::new(60.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 2).with_metadata(entry(10), None)),
    );
    let consumer = world.add_node(
        Position::new(120.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 3)),
    );
    world.run_until(SimTime::from_secs_f64(0.5));
    world.with_app::<PdsNode, _>(consumer, |node, ctx| {
        node.start_discovery(ctx, QueryFilter::match_all());
    });
    world.schedule(SimTime::from_secs_f64(8.0), move |w| {
        w.with_app::<PdsNode, _>(consumer, |node, ctx| {
            node.start_retrieval(ctx, video(3));
        });
    });
    world.run_until(SimTime::from_secs_f64(30.0));
    let stats = world.stats().clone();
    (world, stats)
}

fn traced_events(seed: u64) -> Vec<TraceEvent> {
    let (mut world, _) = run(seed, Some(Box::new(RingSink::new(0))));
    let sink = world.take_trace_sink().expect("sink installed");
    sink.as_any()
        .downcast_ref::<RingSink>()
        .expect("ring sink")
        .events()
}

#[test]
fn same_seed_traces_have_no_divergence() {
    let a = traced_events(42);
    let b = traced_events(42);
    assert!(!a.is_empty(), "scenario must emit trace events");
    assert!(
        first_divergence(&a, &b).is_none(),
        "same seed must replay to an identical trace"
    );
}

#[test]
fn different_seed_traces_report_first_divergence() {
    let a = traced_events(42);
    let b = traced_events(43);
    let d = first_divergence(&a, &b).expect("different seeds must diverge");
    let rendered = render_divergence(&a, &b, &d, 3);
    // The report names the first diverging event: virtual time, node, kind.
    let ev = d.left.as_ref().or(d.right.as_ref()).expect("one side set");
    assert!(
        rendered.contains(&format!("{}", ev.at_us)),
        "report must show the virtual time: {rendered}"
    );
    assert!(
        rendered.contains(&format!("{:?}", ev.kind)),
        "report must show the event kind: {rendered}"
    );
    assert!(
        rendered.contains(&format!("n{}", ev.node)),
        "report must show the node: {rendered}"
    );
}

#[test]
fn tracing_does_not_perturb_stats() {
    let (_, traced) = run(42, Some(Box::new(RingSink::new(0))));
    let (_, untraced) = run(42, None);
    assert_eq!(traced, untraced, "tracing must be observation-only");
}

#[test]
fn jsonl_file_round_trips_the_ring_trace() {
    let ring = traced_events(42);
    let path = std::env::temp_dir().join(format!("pds-obs-rt-{}.jsonl", std::process::id()));
    let (mut world, _) = run(
        42,
        Some(Box::new(
            JsonlSink::create(&path).expect("create trace file"),
        )),
    );
    drop(world.take_trace_sink()); // flushes
    let from_file = read_trace_file(&path).expect("parse trace file");
    std::fs::remove_file(&path).ok();
    assert_eq!(from_file, ring, "JSONL round trip must be lossless");
}

/// ISSUE 8 acceptance: the critical-path analysis decomposes each
/// session's end-to-end delay into the five named components, and the
/// components sum *exactly* (not just within rounding) to the session
/// delay — every inter-event gap is attributed to exactly one component.
#[test]
fn critical_path_components_sum_to_session_delay() {
    let events = traced_events(42);
    let spans = sessions(&events);
    assert!(!spans.is_empty(), "scenario must yield sessions");
    assert!(
        DelayComponent::ALL.len() >= 4,
        "decomposition must name at least four components"
    );
    let mut finished = 0;
    for span in &spans {
        if span.finish_us.is_none() {
            continue;
        }
        finished += 1;
        let breakdown = critical_path(span);
        assert_eq!(
            breakdown.total_us(),
            span.span_us(),
            "components must sum to the end-to-end delay of n{}#{} ({:?})",
            span.node,
            span.session,
            span.phase
        );
    }
    assert!(finished > 0, "at least one session must finish");

    // The PDR retrieval session specifically: a two-hop chunk fetch has
    // real airtime and processing, so the decomposition is non-trivial.
    let pdr = spans
        .iter()
        .find(|s| s.phase == Phase::Pdr && s.finish_us.is_some())
        .expect("the retrieval session must finish");
    let breakdown = critical_path(pdr);
    assert!(pdr.span_us() > 0, "retrieval cannot be instantaneous");
    let nonzero = DelayComponent::ALL
        .iter()
        .filter(|c| breakdown.get(**c) > 0)
        .count();
    assert!(
        nonzero >= 2,
        "retrieval delay must split across components: {breakdown:?}"
    );
}

/// The always-on flight recorder is a bounded tail of the same stream
/// the unbounded ring sees: with capacity above the scenario's per-node
/// event count, the dump reproduces the full trace in emission order,
/// and recording does not perturb the simulation.
#[test]
fn flight_recorder_dump_matches_full_trace() {
    let ring = traced_events(42);
    let (mut world, stats) = run(42, Some(Box::new(FlightRecorder::new(1 << 20))));
    let sink = world.take_trace_sink().expect("sink installed");
    let recorder = sink
        .as_any()
        .downcast_ref::<FlightRecorder>()
        .expect("flight recorder");
    assert_eq!(recorder.dropped(), 0, "capacity must cover the scenario");
    assert_eq!(
        recorder.dump(),
        ring,
        "flight dump must reproduce the trace in emission order"
    );
    let (_, untraced) = run(42, None);
    assert_eq!(stats, untraced, "flight recording must be observation-only");
}

#[test]
fn protocol_phases_appear_in_the_trace() {
    let events = traced_events(42);
    let overhead = phase_overhead(&events);
    assert!(
        overhead.get(&Phase::Pdd).is_some_and(|o| o.bytes > 0),
        "discovery traffic must be attributed to PDD: {overhead:?}"
    );
    assert!(
        overhead.get(&Phase::Pdr).is_some_and(|o| o.bytes > 0),
        "chunk traffic must be attributed to PDR: {overhead:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::SessionFinished { .. })),
        "consumer sessions must emit SessionFinished"
    );
}
