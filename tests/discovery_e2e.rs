//! End-to-end Peer Data Discovery over the full radio stack: grids,
//! filters, multi-round recovery, mixedcast with several consumers,
//! opportunistic caching.

use pds_core::{
    AttrValue, DataDescriptor, PdsConfig, PdsNode, Predicate, QueryFilter, Relation, RoundParams,
};
use pds_mobility::grid;
use pds_sim::{NodeId, SimConfig, SimDuration, SimTime, World};

fn entry(owner: usize, k: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("ns", "e")
        .attr("type", if k.is_multiple_of(2) { "no2" } else { "co2" })
        .attr(
            "time",
            AttrValue::Time((owner as i64) * 1000 + i64::from(k)),
        )
        .build()
}

/// Builds an n×n grid, `per_node` entries each; returns (world, ids).
fn grid_world(n: usize, per_node: u32, seed: u64) -> (World, Vec<NodeId>) {
    let mut world = World::new(SimConfig::paper_multi_hop(), seed);
    let mut ids = Vec::new();
    for (i, pos) in grid::positions(n, n, grid::SPACING_M).iter().enumerate() {
        let mut node = PdsNode::new(PdsConfig::default(), 9000 + i as u64);
        for k in 0..per_node {
            node = node.with_metadata(entry(i, k), None);
        }
        ids.push(world.add_node(*pos, Box::new(node)));
    }
    world.run_until(SimTime::from_secs_f64(0.2));
    (world, ids)
}

fn run_discovery(world: &mut World, consumer: NodeId, filter: QueryFilter, horizon: f64) {
    world.with_app::<PdsNode, _>(consumer, move |node, ctx| {
        node.start_discovery(ctx, filter);
    });
    let deadline = SimTime::from_secs_f64(horizon);
    loop {
        let done = world
            .app::<PdsNode>(consumer)
            .and_then(PdsNode::discovery_report)
            .is_some_and(|r| r.finished_at.is_some());
        if done || world.now() >= deadline {
            return;
        }
        let next = world.now() + SimDuration::from_millis(250);
        world.run_until(next.min(deadline));
    }
}

#[test]
fn five_by_five_grid_full_recall() {
    let (mut world, ids) = grid_world(5, 8, 1);
    let consumer = ids[grid::center_index(5, 5)];
    run_discovery(&mut world, consumer, QueryFilter::match_all(), 30.0);
    let report = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::discovery_report)
        .expect("ran");
    assert!(report.finished_at.is_some(), "must terminate");
    assert_eq!(report.entries, 25 * 8, "all entries discovered");
}

#[test]
fn corner_consumer_reaches_far_corner() {
    // Max-hop path: corner to corner on a 5×5 grid is 4 hops.
    let (mut world, ids) = grid_world(5, 4, 2);
    let consumer = ids[0];
    run_discovery(&mut world, consumer, QueryFilter::match_all(), 40.0);
    let report = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::discovery_report)
        .expect("ran");
    assert_eq!(report.entries, 100, "multi-round recovers distant entries");
}

#[test]
fn filtered_discovery_returns_only_matches() {
    let (mut world, ids) = grid_world(4, 6, 3);
    let consumer = ids[grid::center_index(4, 4)];
    let filter = QueryFilter::new(vec![Predicate::new("type", Relation::Eq, "no2")]);
    run_discovery(&mut world, consumer, filter, 30.0);
    let node = world.app::<PdsNode>(consumer).expect("alive");
    let session = node.engine().expect("started").discovery().expect("ran");
    // k ∈ 0..6 → "no2" for k=0,2,4 → half the entries.
    assert_eq!(session.entries().len(), 16 * 3);
    assert!(session
        .entries()
        .iter()
        .all(|d| d.get("type") == Some(&AttrValue::Str("no2".into()))));
}

#[test]
fn relays_cache_opportunistically() {
    let (mut world, ids) = grid_world(3, 5, 4);
    let consumer = ids[grid::center_index(3, 3)];
    run_discovery(&mut world, consumer, QueryFilter::match_all(), 20.0);
    // Every node overheard the responses converging on the center.
    let mut cached = 0usize;
    for &id in &ids {
        let n = world.app::<PdsNode>(id).expect("alive");
        cached += n.engine().expect("started").store().metadata_len();
    }
    assert!(
        cached > 9 * 5 * 2,
        "caching should spread entries well beyond the owners (total cached {cached})"
    );
}

#[test]
fn simultaneous_consumers_all_reach_full_recall() {
    let (mut world, ids) = grid_world(5, 6, 5);
    let consumers = [ids[6], ids[12], ids[18]];
    for &c in &consumers {
        world.with_app::<PdsNode, _>(c, |node, ctx| {
            node.start_discovery(ctx, QueryFilter::match_all());
        });
    }
    world.run_until(SimTime::from_secs_f64(40.0));
    for &c in &consumers {
        let report = world
            .app::<PdsNode>(c)
            .and_then(PdsNode::discovery_report)
            .expect("ran");
        assert_eq!(report.entries, 150, "consumer {c} complete");
    }
}

#[test]
fn single_round_misses_then_multi_round_recovers() {
    // With max_rounds = 1 on a lossy 7×7 grid, recall is typically below
    // 100 %; unlimited rounds close the gap. (The premise of Fig. 5/6.)
    let run = |max_rounds: u32| -> usize {
        let mut world = World::new(SimConfig::paper_multi_hop(), 6);
        let pds = PdsConfig {
            rounds: RoundParams {
                max_rounds,
                ..RoundParams::default()
            },
            ..PdsConfig::default()
        };
        let mut ids = Vec::new();
        for (i, pos) in grid::positions(7, 7, grid::SPACING_M).iter().enumerate() {
            let mut node = PdsNode::new(pds.clone(), 7000 + i as u64);
            for k in 0..40 {
                node = node.with_metadata(entry(i, k), None);
            }
            ids.push(world.add_node(*pos, Box::new(node)));
        }
        let consumer = ids[grid::center_index(7, 7)];
        world.run_until(SimTime::from_secs_f64(0.2));
        world.with_app::<PdsNode, _>(consumer, |node, ctx| {
            node.start_discovery(ctx, QueryFilter::match_all());
        });
        world.run_until(SimTime::from_secs_f64(60.0));
        world
            .app::<PdsNode>(consumer)
            .and_then(PdsNode::discovery_report)
            .expect("ran")
            .entries
    };
    let single = run(1);
    let multi = run(12);
    assert_eq!(multi, 49 * 40, "multi-round reaches full recall");
    assert!(
        single <= multi,
        "single round cannot beat multi-round ({single} vs {multi})"
    );
}

#[test]
fn whole_protocol_replays_deterministically() {
    let run = |seed: u64| -> (usize, u64) {
        let (mut world, ids) = grid_world(4, 8, seed);
        let consumer = ids[grid::center_index(4, 4)];
        run_discovery(&mut world, consumer, QueryFilter::match_all(), 30.0);
        let entries = world
            .app::<PdsNode>(consumer)
            .and_then(PdsNode::discovery_report)
            .expect("ran")
            .entries;
        (entries, world.stats().bytes_sent)
    };
    assert_eq!(run(77), run(77), "same seed, same bytes on the air");
}

#[test]
fn no_decode_errors_anywhere() {
    let (mut world, ids) = grid_world(4, 10, 7);
    let consumer = ids[5];
    run_discovery(&mut world, consumer, QueryFilter::match_all(), 30.0);
    for &id in &ids {
        let n = world.app::<PdsNode>(id).expect("alive");
        assert_eq!(n.decode_errors(), 0, "codec must be clean at {id}");
    }
}
