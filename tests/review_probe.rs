//! Temporary review probe (not part of the PR).

use bytes::Bytes;
use pds_core::{DataDescriptor, PdsConfig, PdsNode, QueryFilter};
use pds_obs::{sessions, Phase, RingSink, TraceKind, TraceSink};
use pds_sim::{Position, SimConfig, SimTime, World};

fn entry(n: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "no2")
        .attr("seq", i64::from(n))
        .build()
}

fn video(total: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "video")
        .attr("name", "clip")
        .attr("total_chunks", i64::from(total))
        .build()
}

#[test]
fn probe_order_and_joins() {
    let mut world = World::new(SimConfig::default(), 42);
    world.set_trace_sink(Box::new(RingSink::new(0)));
    let chunk = |c: u32| Bytes::from(vec![c as u8; 4 * 1024]);
    let mut provider = PdsNode::new(PdsConfig::default(), 1)
        .with_chunk(video(3), pds_core::ChunkId(0), chunk(0))
        .with_chunk(video(3), pds_core::ChunkId(1), chunk(1))
        .with_chunk(video(3), pds_core::ChunkId(2), chunk(2));
    for k in 0..4u32 {
        provider = provider.with_metadata(entry(k), None);
    }
    world.add_node(Position::new(0.0, 0.0), Box::new(provider));
    world.add_node(
        Position::new(60.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 2).with_metadata(entry(10), None)),
    );
    let consumer = world.add_node(
        Position::new(120.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 3)),
    );
    world.run_until(SimTime::from_secs_f64(0.5));
    world.with_app::<PdsNode, _>(consumer, |node, ctx| {
        node.start_discovery(ctx, QueryFilter::match_all());
    });
    world.schedule(SimTime::from_secs_f64(8.0), move |w| {
        w.with_app::<PdsNode, _>(consumer, |node, ctx| {
            node.start_retrieval(ctx, video(3));
        });
    });
    world.run_until(SimTime::from_secs_f64(30.0));
    let sink = world.take_trace_sink().expect("sink");
    let events = sink
        .as_any()
        .downcast_ref::<RingSink>()
        .expect("ring")
        .events();

    // 1) For each (node, seq): does MessageSent precede QuerySent/ResponseSent?
    let mut msg_sent_before = 0usize;
    let mut msg_sent_after = 0usize;
    let mut proto_seen: std::collections::HashSet<(u32, u64)> = Default::default();
    let mut total_msg_sent = 0usize;
    for ev in &events {
        match &ev.kind {
            TraceKind::QuerySent { seq, .. } | TraceKind::ResponseSent { seq, .. } => {
                proto_seen.insert((ev.node, *seq));
            }
            TraceKind::MessageSent { seq, .. } => {
                total_msg_sent += 1;
                if proto_seen.contains(&(ev.node, *seq)) {
                    msg_sent_after += 1;
                } else {
                    msg_sent_before += 1;
                }
            }
            _ => {}
        }
    }
    eprintln!(
        "MessageSent total={total_msg_sent} before-proto={msg_sent_before} after-proto={msg_sent_after}"
    );

    // 2) Do session spans contain any MessageSent events?
    let spans = sessions(&events);
    let mut joined_msg_sent = 0usize;
    let mut joined_txstart = 0usize;
    let mut joined_total = 0usize;
    for s in &spans {
        for ev in &s.events {
            joined_total += 1;
            match ev.kind {
                TraceKind::MessageSent { .. } => joined_msg_sent += 1,
                TraceKind::TxStart { .. } => joined_txstart += 1,
                _ => {}
            }
        }
    }
    eprintln!(
        "spans={} joined_total={joined_total} joined MessageSent={joined_msg_sent} joined TxStart={joined_txstart}",
        spans.len()
    );

    // 3) TxStart relative order vs QuerySent for same (origin, seq).
    let mut tx_before = 0usize;
    let mut tx_after = 0usize;
    let mut proto_seen2: std::collections::HashSet<(u64, u64)> = Default::default();
    for ev in &events {
        match &ev.kind {
            TraceKind::QuerySent { seq, .. } | TraceKind::ResponseSent { seq, .. } => {
                proto_seen2.insert((u64::from(ev.node), *seq));
            }
            TraceKind::TxStart { origin, seq, .. } => {
                if proto_seen2.contains(&(*origin, *seq)) {
                    tx_after += 1;
                } else {
                    tx_before += 1;
                }
            }
            _ => {}
        }
    }
    eprintln!("TxStart before-proto={tx_before} after-proto={tx_after}");
    // Count Phase::Pdd QuerySent with session field != 0
    let mut own = 0;
    let mut relay = 0;
    for ev in &events {
        if let TraceKind::QuerySent { session, .. } = ev.kind {
            if session != 0 {
                own += 1;
            } else {
                relay += 1;
            }
        }
    }
    eprintln!("QuerySent own-session={own} relay={relay}");
    let _ = Phase::Pdd;
}
