//! End-to-end Peer Data Retrieval: two-phase PDR with scattered chunk
//! copies, load balancing, the MDR baseline, small-data retrieval and
//! sequential-consumer caching.

use bytes::Bytes;
use pds_core::{ChunkId, DataDescriptor, ItemName, PdsConfig, PdsNode, QueryFilter};
use pds_mobility::grid;
use pds_sim::{NodeId, SimConfig, SimDuration, SimRng, SimTime, World};

const CHUNK: usize = 64 * 1024; // smaller chunks keep the tests fast

fn item(total: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("ns", "e")
        .attr("type", "video")
        .attr("name", "clip")
        .attr("total_chunks", i64::from(total))
        .build()
}

fn chunk_bytes(c: u32) -> Bytes {
    Bytes::from(vec![(c % 251) as u8; CHUNK])
}

/// n×n grid; chunk copies scattered on everyone except the center.
fn pdr_world(n: usize, total: u32, redundancy: usize, seed: u64) -> (World, Vec<NodeId>) {
    let mut world = World::new(SimConfig::paper_multi_hop(), seed);
    let mut rng = SimRng::new(seed ^ 0xabc);
    let center = grid::center_index(n, n);
    let mut holders: Vec<Vec<u32>> = vec![Vec::new(); n * n];
    for c in 0..total {
        let mut owners: Vec<usize> = (0..n * n).filter(|&i| i != center).collect();
        rng.shuffle(&mut owners);
        for &o in owners.iter().take(redundancy) {
            holders[o].push(c);
        }
    }
    let mut ids = Vec::new();
    for (i, pos) in grid::positions(n, n, grid::SPACING_M).iter().enumerate() {
        let mut node = PdsNode::new(PdsConfig::default(), 3000 + i as u64);
        for &c in &holders[i] {
            node = node.with_chunk(item(total), ChunkId(c), chunk_bytes(c));
        }
        ids.push(world.add_node(*pos, Box::new(node)));
    }
    world.run_until(SimTime::from_secs_f64(0.2));
    (world, ids)
}

fn run_retrieval(world: &mut World, consumer: NodeId, total: u32, mdr: bool, horizon: f64) {
    world.with_app::<PdsNode, _>(consumer, move |node, ctx| {
        if mdr {
            node.start_mdr_retrieval(ctx, item(total));
        } else {
            node.start_retrieval(ctx, item(total));
        }
    });
    let deadline = SimTime::from_secs_f64(horizon);
    loop {
        let done = world
            .app::<PdsNode>(consumer)
            .and_then(PdsNode::retrieval_report)
            .is_some_and(|r| r.finished_at.is_some());
        if done || world.now() >= deadline {
            return;
        }
        let next = world.now() + SimDuration::from_millis(250);
        world.run_until(next.min(deadline));
    }
}

#[test]
fn pdr_collects_scattered_chunks() {
    let total = 12;
    let (mut world, ids) = pdr_world(5, total, 1, 1);
    let consumer = ids[grid::center_index(5, 5)];
    run_retrieval(&mut world, consumer, total, false, 120.0);
    let node = world.app::<PdsNode>(consumer).expect("alive");
    let report = node.retrieval_report().expect("ran");
    assert!(
        (report.recall - 1.0).abs() < 1e-9,
        "recall = {}",
        report.recall
    );
    // The payload bytes are exactly what the producers held.
    let engine = node.engine().expect("started");
    for c in 0..total {
        let data = engine
            .store()
            .chunk(&ItemName::new("clip"), ChunkId(c))
            .expect("chunk present");
        assert_eq!(data, chunk_bytes(c), "chunk {c} content intact");
    }
}

#[test]
fn pdr_content_survives_redundant_copies() {
    let total = 10;
    let (mut world, ids) = pdr_world(5, total, 3, 2);
    let consumer = ids[grid::center_index(5, 5)];
    run_retrieval(&mut world, consumer, total, false, 120.0);
    let report = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::retrieval_report)
        .expect("ran");
    assert!((report.recall - 1.0).abs() < 1e-9);
}

#[test]
fn mdr_baseline_also_completes() {
    let total = 8;
    let (mut world, ids) = pdr_world(4, total, 1, 3);
    let consumer = ids[grid::center_index(4, 4)];
    run_retrieval(&mut world, consumer, total, true, 180.0);
    let report = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::retrieval_report)
        .expect("ran");
    assert!(
        (report.recall - 1.0).abs() < 1e-9,
        "recall = {}",
        report.recall
    );
}

#[test]
fn pdr_beats_mdr_with_redundant_copies() {
    // The core claim of Figs. 13/14, at test scale: with several copies of
    // every chunk, PDR moves fewer bytes than MDR.
    let total = 8;
    let overhead = |mdr: bool| -> u64 {
        let (mut world, ids) = pdr_world(5, total, 3, 4);
        let consumer = ids[grid::center_index(5, 5)];
        run_retrieval(&mut world, consumer, total, mdr, 240.0);
        let report = world
            .app::<PdsNode>(consumer)
            .and_then(PdsNode::retrieval_report)
            .expect("ran");
        assert!((report.recall - 1.0).abs() < 1e-9, "mdr={mdr} incomplete");
        world.stats().bytes_sent
    };
    let pdr = overhead(false);
    let mdr = overhead(true);
    assert!(
        pdr < mdr,
        "PDR ({pdr} B) should move fewer bytes than MDR ({mdr} B) at redundancy 3"
    );
}

#[test]
fn sequential_consumer_is_cheaper_after_caching() {
    let total = 8;
    let (mut world, ids) = pdr_world(5, total, 1, 5);
    let first = ids[grid::center_index(5, 5)];
    run_retrieval(&mut world, first, total, false, 120.0);
    let after_first = world.stats().bytes_sent;

    let second = ids[6]; // another central node
    run_retrieval(&mut world, second, total, false, 240.0);
    let second_cost = world.stats().bytes_sent - after_first;

    let r1 = world
        .app::<PdsNode>(first)
        .and_then(PdsNode::retrieval_report)
        .expect("ran");
    let r2 = world
        .app::<PdsNode>(second)
        .and_then(PdsNode::retrieval_report)
        .expect("ran");
    assert!((r1.recall - 1.0).abs() < 1e-9);
    assert!((r2.recall - 1.0).abs() < 1e-9);
    assert!(
        second_cost < after_first,
        "cached copies must cut the second retrieval's traffic ({second_cost} vs {after_first})"
    );
}

#[test]
fn small_data_retrieval_brings_payloads() {
    let mut world = World::new(SimConfig::paper_multi_hop(), 6);
    let mut ids = Vec::new();
    for (i, pos) in grid::positions(3, 3, grid::SPACING_M).iter().enumerate() {
        let mut node = PdsNode::new(PdsConfig::default(), 4000 + i as u64);
        for k in 0..3u32 {
            let d = DataDescriptor::builder()
                .attr("type", "sample")
                .attr("owner", i as i64)
                .attr("k", i64::from(k))
                .build();
            node = node.with_metadata(d, Some(Bytes::from(vec![i as u8; 128])));
        }
        ids.push(world.add_node(*pos, Box::new(node)));
    }
    let consumer = ids[grid::center_index(3, 3)];
    world.run_until(SimTime::from_secs_f64(0.2));
    world.with_app::<PdsNode, _>(consumer, |node, ctx| {
        node.start_small_data_retrieval(ctx, QueryFilter::match_all());
    });
    world.run_until(SimTime::from_secs_f64(20.0));
    let node = world.app::<PdsNode>(consumer).expect("alive");
    let engine = node.engine().expect("started");
    let session = engine.discovery().expect("ran");
    assert_eq!(session.entries().len(), 27);
    let with_payload = session
        .entries()
        .iter()
        .filter(|d| engine.store().small_payload(d).is_some())
        .count();
    assert_eq!(with_payload, 27, "every item arrived with its payload");
}

#[test]
fn one_consumer_retrieves_two_items_sequentially() {
    // §IV: retrieving many large items = applying PDR per item. The same
    // consumer fetches item A, then item B.
    let named_item = |name: &str, total: u32| {
        DataDescriptor::builder()
            .attr("type", "video")
            .attr("name", name)
            .attr("total_chunks", i64::from(total))
            .build()
    };
    let mut world = World::new(SimConfig::paper_multi_hop(), 8);
    let mut provider = PdsNode::new(PdsConfig::default(), 1);
    for c in 0..4u32 {
        provider = provider
            .with_chunk(
                named_item("alpha", 4),
                ChunkId(c),
                Bytes::from(vec![1u8; 32 * 1024]),
            )
            .with_chunk(
                named_item("beta", 4),
                ChunkId(c),
                Bytes::from(vec![2u8; 32 * 1024]),
            );
    }
    world.add_node(pds_sim::Position::new(0.0, 0.0), Box::new(provider));
    let consumer = world.add_node(
        pds_sim::Position::new(60.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 2)),
    );
    world.run_until(SimTime::from_secs_f64(0.2));
    for (name, fill) in [("alpha", 1u8), ("beta", 2u8)] {
        let descriptor = named_item(name, 4);
        world.with_app::<PdsNode, _>(consumer, move |n, ctx| {
            n.start_retrieval(ctx, descriptor);
        });
        let deadline = world.now() + SimDuration::from_secs(60);
        loop {
            let done = world
                .app::<PdsNode>(consumer)
                .and_then(PdsNode::retrieval_report)
                .is_some_and(|r| r.finished_at.is_some());
            if done || world.now() >= deadline {
                break;
            }
            let next = world.now() + SimDuration::from_millis(250);
            world.run_until(next);
        }
        let report = world
            .app::<PdsNode>(consumer)
            .and_then(PdsNode::retrieval_report)
            .expect("ran");
        assert!(
            (report.recall - 1.0).abs() < 1e-9,
            "{name}: recall {}",
            report.recall
        );
        // Content of the right item arrived.
        let engine = world
            .app::<PdsNode>(consumer)
            .and_then(|n| n.engine())
            .expect("alive");
        let data = engine
            .store()
            .chunk(&ItemName::new(name), ChunkId(0))
            .expect("chunk present");
        assert!(
            data.iter().all(|&b| b == fill),
            "{name}: wrong payload bytes"
        );
    }
}

#[test]
fn different_consumers_retrieve_different_items_concurrently() {
    let named_item = |name: &str, total: u32| {
        DataDescriptor::builder()
            .attr("type", "video")
            .attr("name", name)
            .attr("total_chunks", i64::from(total))
            .build()
    };
    let mut world = World::new(SimConfig::paper_multi_hop(), 9);
    let mut provider = PdsNode::new(PdsConfig::default(), 1);
    for c in 0..3u32 {
        provider = provider
            .with_chunk(
                named_item("left", 3),
                ChunkId(c),
                Bytes::from(vec![3u8; 32 * 1024]),
            )
            .with_chunk(
                named_item("right", 3),
                ChunkId(c),
                Bytes::from(vec![4u8; 32 * 1024]),
            );
    }
    world.add_node(pds_sim::Position::new(60.0, 0.0), Box::new(provider));
    let a = world.add_node(
        pds_sim::Position::new(0.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 2)),
    );
    let b = world.add_node(
        pds_sim::Position::new(120.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 3)),
    );
    world.run_until(SimTime::from_secs_f64(0.2));
    let left = named_item("left", 3);
    let right = named_item("right", 3);
    world.with_app::<PdsNode, _>(a, move |n, ctx| n.start_retrieval(ctx, left));
    world.with_app::<PdsNode, _>(b, move |n, ctx| n.start_retrieval(ctx, right));
    world.run_until(SimTime::from_secs_f64(90.0));
    for (id, label) in [(a, "left"), (b, "right")] {
        let report = world
            .app::<PdsNode>(id)
            .and_then(PdsNode::retrieval_report)
            .expect("ran");
        assert!(
            (report.recall - 1.0).abs() < 1e-9,
            "{label}: recall {}",
            report.recall
        );
    }
}

#[test]
fn retrieval_of_missing_item_terminates_gracefully() {
    let (mut world, ids) = pdr_world(3, 0, 1, 7); // zero chunks seeded
    let consumer = ids[grid::center_index(3, 3)];
    // Ask for an item nobody has (default recovery budget).
    world.with_app::<PdsNode, _>(consumer, |node, ctx| {
        node.start_retrieval(ctx, item(4));
    });
    world.run_until(SimTime::from_secs_f64(120.0));
    let report = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::retrieval_report)
        .expect("ran");
    assert!(report.finished_at.is_some(), "gives up instead of spinning");
    assert_eq!(report.received_chunks, 0);
}
