//! Failure injection: heavy frame loss, node churn mid-operation, producer
//! departure with cached survival, and hostile radio regimes.

use bytes::Bytes;
use pds_core::{ChunkId, DataDescriptor, PdsConfig, PdsNode, QueryFilter};
use pds_mobility::grid;
use pds_sim::{NodeId, Position, SimConfig, SimDuration, SimTime, World};

fn entry(owner: usize, k: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "s")
        .attr("o", owner as i64)
        .attr("k", i64::from(k))
        .build()
}

fn item(total: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "video")
        .attr("name", "clip")
        .attr("total_chunks", i64::from(total))
        .build()
}

fn drive(world: &mut World, consumer: NodeId, horizon: f64) {
    let deadline = SimTime::from_secs_f64(horizon);
    loop {
        let done = world
            .app::<PdsNode>(consumer)
            .map(|n| {
                n.discovery_report()
                    .map(|r| r.finished_at.is_some())
                    .or_else(|| n.retrieval_report().map(|r| r.finished_at.is_some()))
                    .unwrap_or(false)
            })
            .unwrap_or(true);
        if done || world.now() >= deadline {
            return;
        }
        let next = world.now() + SimDuration::from_millis(250);
        world.run_until(next.min(deadline));
    }
}

#[test]
fn discovery_survives_twenty_percent_frame_loss() {
    let mut sim = SimConfig::paper_multi_hop();
    sim.radio.baseline_loss = 0.2;
    let mut world = World::new(sim, 1);
    let mut ids = Vec::new();
    for (i, pos) in grid::positions(4, 4, grid::SPACING_M).iter().enumerate() {
        let mut node = PdsNode::new(PdsConfig::default(), 100 + i as u64);
        for k in 0..6 {
            node = node.with_metadata(entry(i, k), None);
        }
        ids.push(world.add_node(*pos, Box::new(node)));
    }
    let consumer = ids[grid::center_index(4, 4)];
    world.run_until(SimTime::from_secs_f64(0.2));
    world.with_app::<PdsNode, _>(consumer, |n, ctx| {
        n.start_discovery(ctx, QueryFilter::match_all());
    });
    drive(&mut world, consumer, 60.0);
    let report = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::discovery_report)
        .expect("ran");
    assert!(
        report.entries as f64 >= 16.0 * 6.0 * 0.95,
        "multi-round + retransmission should beat 20% loss ({} / 96)",
        report.entries
    );
}

#[test]
fn cached_copies_survive_producer_departure() {
    // A producer answers one consumer, then leaves. A second consumer must
    // still find the data — from caches (the content-centric availability
    // claim of §I).
    let mut world = World::new(SimConfig::paper_multi_hop(), 2);
    let producer = {
        let mut n = PdsNode::new(PdsConfig::default(), 1);
        for k in 0..10 {
            n = n.with_metadata(entry(0, k), None);
        }
        world.add_node(Position::new(0.0, 0.0), Box::new(n))
    };
    let relay = world.add_node(
        Position::new(50.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 2)),
    );
    let consumer1 = world.add_node(
        Position::new(100.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 3)),
    );
    let consumer2 = world.add_node(
        Position::new(100.0, 50.0),
        Box::new(PdsNode::new(PdsConfig::default(), 4)),
    );
    let _ = relay;
    world.run_until(SimTime::from_secs_f64(0.2));
    world.with_app::<PdsNode, _>(consumer1, |n, ctx| {
        n.start_discovery(ctx, QueryFilter::match_all());
    });
    drive(&mut world, consumer1, 30.0);
    assert_eq!(
        world
            .app::<PdsNode>(consumer1)
            .and_then(PdsNode::discovery_report)
            .expect("ran")
            .entries,
        10
    );
    // Producer walks away with the originals.
    world.remove_node(producer);
    world.run_until(world.now() + SimDuration::from_secs(1));
    world.with_app::<PdsNode, _>(consumer2, |n, ctx| {
        n.start_discovery(ctx, QueryFilter::match_all());
    });
    drive(&mut world, consumer2, 60.0);
    let entries = world
        .app::<PdsNode>(consumer2)
        .and_then(PdsNode::discovery_report)
        .expect("ran")
        .entries;
    assert_eq!(entries, 10, "caches preserve availability after departure");
}

#[test]
fn retrieval_survives_relay_churn() {
    // Chunks sit 2 hops away; a relay on the path dies mid-transfer. The
    // grid offers alternate relays, so the retrieval must still complete.
    let total = 6u32;
    let mut world = World::new(SimConfig::paper_multi_hop(), 3);
    let mut ids = Vec::new();
    for (i, pos) in grid::positions(3, 5, grid::SPACING_M).iter().enumerate() {
        let mut node = PdsNode::new(PdsConfig::default(), 300 + i as u64);
        if i == 0 || i == 10 {
            // Two far-left holders (top and bottom rows).
            for c in 0..total {
                node = node.with_chunk(item(total), ChunkId(c), Bytes::from(vec![1u8; 64 * 1024]));
            }
        }
        ids.push(world.add_node(*pos, Box::new(node)));
    }
    let consumer = ids[4]; // right end of the middle row
    world.run_until(SimTime::from_secs_f64(0.2));
    world.with_app::<PdsNode, _>(consumer, |n, ctx| {
        n.start_retrieval(ctx, item(6));
    });
    // Kill the middle-row relay after a second.
    let relay = ids[2];
    world.schedule(SimTime::from_secs_f64(1.0), move |w| w.remove_node(relay));
    drive(&mut world, consumer, 240.0);
    let report = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::retrieval_report)
        .expect("ran");
    assert!(
        (report.recall - 1.0).abs() < 1e-9,
        "alternate paths must carry the transfer (recall {})",
        report.recall
    );
}

#[test]
fn hidden_terminal_regime_still_converges() {
    // Short carrier sense (factor 1) brings back hidden terminals; the
    // reliability stack must still deliver a small discovery, just slower.
    let mut sim = SimConfig::paper_multi_hop();
    sim.radio.cs_range_factor = 1.0;
    let mut world = World::new(sim, 4);
    let mut ids = Vec::new();
    for (i, pos) in grid::positions(3, 3, grid::SPACING_M).iter().enumerate() {
        let mut node = PdsNode::new(PdsConfig::default(), 500 + i as u64);
        for k in 0..4 {
            node = node.with_metadata(entry(i, k), None);
        }
        ids.push(world.add_node(*pos, Box::new(node)));
    }
    let consumer = ids[grid::center_index(3, 3)];
    world.run_until(SimTime::from_secs_f64(0.2));
    world.with_app::<PdsNode, _>(consumer, |n, ctx| {
        n.start_discovery(ctx, QueryFilter::match_all());
    });
    drive(&mut world, consumer, 90.0);
    let entries = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::discovery_report)
        .expect("ran")
        .entries;
    assert!(
        entries >= 30,
        "even with hidden terminals most data arrives ({entries} / 36)"
    );
}

#[test]
fn consumer_departure_leaves_network_healthy() {
    let mut world = World::new(SimConfig::paper_multi_hop(), 5);
    let mut ids = Vec::new();
    for (i, pos) in grid::positions(3, 3, grid::SPACING_M).iter().enumerate() {
        let mut node = PdsNode::new(PdsConfig::default(), 600 + i as u64);
        for k in 0..4 {
            node = node.with_metadata(entry(i, k), None);
        }
        ids.push(world.add_node(*pos, Box::new(node)));
    }
    let doomed = ids[grid::center_index(3, 3)];
    world.run_until(SimTime::from_secs_f64(0.2));
    world.with_app::<PdsNode, _>(doomed, |n, ctx| {
        n.start_discovery(ctx, QueryFilter::match_all());
    });
    // The consumer leaves mid-discovery.
    world.schedule(SimTime::from_secs_f64(0.5), move |w| w.remove_node(doomed));
    world.run_until(SimTime::from_secs_f64(30.0));
    assert!(!world.is_alive(doomed));
    // A survivor can still discover everything that remains.
    let survivor = ids[0];
    world.with_app::<PdsNode, _>(survivor, |n, ctx| {
        n.start_discovery(ctx, QueryFilter::match_all());
    });
    drive(&mut world, survivor, 60.0);
    let entries = world
        .app::<PdsNode>(survivor)
        .and_then(PdsNode::discovery_report)
        .expect("ran")
        .entries;
    assert!(
        entries >= 32,
        "8 remaining producers × 4 entries ({entries})"
    );
}
