//! Property-based tests (proptest) over the core data structures and
//! invariants: Bloom filters, predicates, codecs, the GAP heuristic, the
//! event queue and the round controller.

use pds_bloom::{BloomFilter, BloomParams};
use pds_core::{
    min_max_assign, AssignStrategy, AttrValue, ChunkId, DataDescriptor, NodeId, PdsMessage,
    Predicate, QueryFilter, QueryId, QueryKind, QueryMessage, Relation, ResponseId, ResponseKind,
    ResponseMessage,
};
use proptest::prelude::*;

// ---- generators -----------------------------------------------------------

fn attr_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        "[a-z]{0,12}".prop_map(AttrValue::Str),
        any::<i64>().prop_map(AttrValue::Int),
        (-1.0e9f64..1.0e9).prop_map(AttrValue::Float),
        any::<i32>().prop_map(|t| AttrValue::Time(i64::from(t))),
    ]
}

fn descriptor() -> impl Strategy<Value = DataDescriptor> {
    proptest::collection::btree_map("[a-z]{1,8}", attr_value(), 1..6).prop_map(|attrs| {
        let mut b = DataDescriptor::builder();
        for (k, v) in attrs {
            b = b.attr(k, v);
        }
        b.build()
    })
}

fn filter() -> impl Strategy<Value = QueryFilter> {
    proptest::collection::vec(
        ("[a-z]{1,8}", attr_value(), 0u8..6).prop_map(|(attr, value, rel)| match rel {
            0 => Predicate::new(attr, Relation::Eq, value),
            1 => Predicate::new(attr, Relation::Ne, value),
            2 => Predicate::new(attr, Relation::Lt, value),
            3 => Predicate::new(attr, Relation::Le, value),
            4 => Predicate::new(attr, Relation::Gt, value),
            _ => Predicate::new(attr, Relation::Ge, value),
        }),
        0..4,
    )
    .prop_map(QueryFilter::new)
}

// ---- bloom ------------------------------------------------------------------

proptest! {
    #[test]
    fn bloom_never_forgets(elements in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..32), 1..200)) {
        let mut f = BloomFilter::new(BloomParams::optimal(elements.len().max(8), 0.01));
        for e in &elements {
            f.insert(e);
        }
        for e in &elements {
            prop_assert!(f.contains(e), "no false negatives allowed");
        }
    }

    #[test]
    fn bloom_roundtrip_preserves_membership(
        elements in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16), 1..64),
        round in 0u32..8,
    ) {
        let mut f = BloomFilter::with_round(BloomParams::optimal(64, 0.02), round);
        for e in &elements {
            f.insert(e);
        }
        let g = BloomFilter::decode(&f.encode()).expect("roundtrip");
        prop_assert_eq!(&f, &g);
        for e in &elements {
            prop_assert!(g.contains(e));
        }
    }
}

// ---- descriptors & filters ---------------------------------------------------

proptest! {
    #[test]
    fn descriptor_codec_roundtrips(d in descriptor()) {
        let bytes = d.encode();
        prop_assert_eq!(bytes.len(), d.encoded_len());
        let mut slice = &bytes[..];
        let back = DataDescriptor::decode(&mut slice).expect("decodes");
        prop_assert_eq!(back, d);
    }

    #[test]
    fn entry_key_equality_matches_descriptor_equality(a in descriptor(), b in descriptor()) {
        prop_assert_eq!(a == b, a.entry_key() == b.entry_key());
    }

    #[test]
    fn match_all_matches_everything(d in descriptor()) {
        prop_assert!(QueryFilter::match_all().matches(&d));
    }

    #[test]
    fn eq_and_ne_partition_when_attr_exists(d in descriptor(), v in attr_value()) {
        // For any attribute present with the same type, Eq and Ne disagree.
        if let Some((name, actual)) = d.iter().next() {
            if actual.partial_cmp_same_type(&v).is_some() {
                let eq = Predicate::new(name, Relation::Eq, v.clone()).matches(&d);
                let ne = Predicate::new(name, Relation::Ne, v).matches(&d);
                prop_assert!(eq != ne, "Eq and Ne must partition");
            }
        }
    }

    #[test]
    fn filter_codec_roundtrips(f in filter()) {
        let mut buf = Vec::new();
        f.encode(&mut buf);
        prop_assert_eq!(buf.len(), f.encoded_len());
        let mut slice = &buf[..];
        let back = QueryFilter::decode(&mut slice).expect("decodes");
        prop_assert_eq!(back, f);
    }
}

// ---- messages -----------------------------------------------------------------

proptest! {
    #[test]
    fn query_message_roundtrips(
        id in any::<u64>(),
        sender in any::<u32>(),
        expires in any::<u32>(),
        round in 0u32..16,
        f in filter(),
        bloom in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..64)),
        chunks in proptest::collection::vec(any::<u32>(), 0..16),
        kind_sel in 0u8..5,
    ) {
        let kind = match kind_sel {
            0 => QueryKind::Metadata,
            1 => QueryKind::SmallData,
            2 => QueryKind::Cdi {
                descriptor: DataDescriptor::builder().attr("name", "x").build(),
            },
            3 => QueryKind::Chunks {
                item: "item-x".into(),
                chunks: chunks.into_iter().map(ChunkId).collect(),
            },
            _ => QueryKind::MdrChunks { item: "item-x".into(), total_chunks: 99 },
        };
        let q = QueryMessage {
            id: QueryId(id),
            kind,
            sender: NodeId(sender),
            expires_at: pds_sim::SimTime::from_micros(u64::from(expires)),
            filter: f,
            bloom,
            round,
            ttl_hops: 0,
        };
        let m = PdsMessage::Query(q);
        let back = PdsMessage::decode(&m.encode()).expect("decodes");
        prop_assert_eq!(back, m);
    }

    #[test]
    fn response_message_roundtrips(
        id in any::<u64>(),
        sender in any::<u32>(),
        entries in proptest::collection::vec(descriptor(), 0..8),
        pairs in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..8),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        kind_sel in 0u8..4,
    ) {
        let kind = match kind_sel {
            0 => ResponseKind::Metadata { entries },
            1 => ResponseKind::SmallData {
                items: entries.into_iter().map(|d| (d, bytes::Bytes::from(payload.clone()))).collect(),
            },
            2 => ResponseKind::Cdi {
                item: "item-x".into(),
                pairs: pairs.into_iter().map(|(c, h)| (ChunkId(c), h)).collect(),
            },
            _ => ResponseKind::Chunk {
                descriptor: DataDescriptor::builder().attr("name", "item-x").build(),
                chunk: ChunkId(3),
                data: bytes::Bytes::from(payload.clone()),
            },
        };
        let m = PdsMessage::Response(ResponseMessage {
            id: ResponseId(id),
            sender: NodeId(sender),
            kind,
        });
        let back = PdsMessage::decode(&m.encode()).expect("decodes");
        prop_assert_eq!(back, m);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = PdsMessage::decode(&bytes); // must not panic
    }
}

// ---- GAP assignment -------------------------------------------------------------

proptest! {
    #[test]
    fn assignment_satisfies_constraints(
        instance in proptest::collection::vec(
            proptest::collection::vec((0u32..6, 1u32..5), 0..4), 0..14),
        strategy in prop_oneof![Just(AssignStrategy::MinMax), Just(AssignStrategy::Greedy)],
    ) {
        let chunks: Vec<(ChunkId, Vec<(NodeId, u32)>)> = instance
            .into_iter()
            .enumerate()
            .map(|(i, cands)| {
                let mut seen = std::collections::BTreeMap::new();
                for (n, h) in cands {
                    seen.entry(NodeId(n)).or_insert(h);
                }
                (ChunkId(i as u32), seen.into_iter().collect())
            })
            .collect();
        let plan = min_max_assign(&chunks, strategy);
        let mut assigned = pds_det::DetSet::default();
        for (node, cs) in &plan {
            for c in cs {
                prop_assert!(assigned.insert(*c), "chunk assigned twice");
                let cands = &chunks.iter().find(|(id, _)| id == c).expect("exists").1;
                prop_assert!(cands.iter().any(|(n, _)| n == node), "incapable neighbor");
            }
        }
        let routable = chunks.iter().filter(|(_, v)| !v.is_empty()).count();
        prop_assert_eq!(assigned.len(), routable, "every routable chunk assigned");
    }

    #[test]
    fn minmax_no_worse_than_greedy(
        instance in proptest::collection::vec(
            proptest::collection::vec((0u32..5, 1u32..4), 1..4), 1..12),
    ) {
        let chunks: Vec<(ChunkId, Vec<(NodeId, u32)>)> = instance
            .into_iter()
            .enumerate()
            .map(|(i, cands)| {
                let mut seen = std::collections::BTreeMap::new();
                for (n, h) in cands {
                    seen.entry(NodeId(n)).or_insert(h);
                }
                (ChunkId(i as u32), seen.into_iter().collect())
            })
            .collect();
        let max_load = |plan: &std::collections::BTreeMap<NodeId, Vec<ChunkId>>| -> u64 {
            plan.iter()
                .map(|(node, cs)| {
                    cs.iter()
                        .map(|c| {
                            u64::from(
                                chunks
                                    .iter()
                                    .find(|(id, _)| id == c)
                                    .expect("exists")
                                    .1
                                    .iter()
                                    .find(|(n, _)| n == node)
                                    .expect("capable")
                                    .1
                                    .max(1),
                            )
                        })
                        .sum::<u64>()
                })
                .max()
                .unwrap_or(0)
        };
        let greedy = max_load(&min_max_assign(&chunks, AssignStrategy::Greedy));
        let minmax = max_load(&min_max_assign(&chunks, AssignStrategy::MinMax));
        prop_assert!(minmax <= greedy, "repair must not increase the max load");
    }
}

// ---- misc invariants ----------------------------------------------------------

proptest! {
    #[test]
    fn sim_rng_is_deterministic(seed in any::<u64>()) {
        let mut a = pds_sim::SimRng::new(seed);
        let mut b = pds_sim::SimRng::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn chunk_key_is_prefix_free(a in 0u32..10_000, b in 0u32..10_000) {
        let item: pds_core::ItemName = "vid".into();
        if a != b {
            prop_assert_ne!(
                pds_core::chunk_key(&item, ChunkId(a)),
                pds_core::chunk_key(&item, ChunkId(b))
            );
        }
    }
}

// ---- spatial index equivalence -------------------------------------------
//
// The simulator's uniform hash grid is an *index*, not an approximation:
// for every scenario it must produce bit-identical behavior to the
// exhaustive scans it replaces. These properties drive random node
// counts, placements, motions and churn through both modes and demand
// exact agreement.

use pds_sim::{
    Application, Context, MessageMeta, Position, SimConfig, SimDuration, SimTime, SpatialIndex,
    World,
};

struct SimChatter {
    period_ms: u64,
}

impl Application for SimChatter {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer(SimDuration::from_millis(self.period_ms), 0);
    }
    fn on_message(&mut self, _: &mut Context, _: MessageMeta, _: bytes::Bytes) {}
    fn on_timer(&mut self, ctx: &mut Context, _tag: u64) {
        ctx.broadcast(bytes::Bytes::from_static(&[7u8; 64]), &[]);
        ctx.set_timer(SimDuration::from_millis(self.period_ms), 0);
    }
}

/// Per-node plan: start position, walk destination, walk speed, flag bits
/// (bit 0 = walks, bit 1 = churns out mid-run), chatter period.
type NodePlan = ((f64, f64), (f64, f64), f64, u8, u64);

fn node_plans(max: usize) -> impl proptest::strategy::Strategy<Value = Vec<NodePlan>> {
    proptest::collection::vec(
        (
            (0.0f64..600.0, 0.0f64..600.0),
            (0.0f64..600.0, 0.0f64..600.0),
            0.3f64..3.0,
            any::<u8>(),
            20u64..90,
        ),
        2..max,
    )
}

fn spatial_world(
    plans: &[NodePlan],
    index: SpatialIndex,
    seed: u64,
    rebucket_ms: u64,
    finite_interference: bool,
) -> (World, Vec<pds_sim::NodeId>) {
    let mut config = SimConfig::default();
    config.spatial.index = index;
    config.spatial.rebucket_interval = SimDuration::from_millis(rebucket_ms);
    if finite_interference {
        config.radio.interference_range_factor = 4.0;
    }
    config.radio.baseline_loss = 0.05;
    let mut w = World::new(config, seed);
    let ids: Vec<_> = plans
        .iter()
        .map(|&((x, y), _, _, _, period)| {
            w.add_node(
                Position::new(x, y),
                Box::new(SimChatter { period_ms: period }),
            )
        })
        .collect();
    for (&(_, (dx, dy), speed, flags, _), &id) in plans.iter().zip(&ids) {
        if flags & 1 != 0 {
            w.move_node(id, Position::new(dx, dy), speed);
        }
    }
    (w, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `neighbors()` (a range query over the node index) must agree
    /// between the grid and the brute-force scan at every observation
    /// point of a run with walkers, lazy re-bucketing and mid-run churn —
    /// and the full runs must produce identical statistics, which pins
    /// the carrier-sense and interference query paths too.
    #[test]
    fn spatial_grid_matches_brute_force_under_motion_and_churn(
        seed in any::<u64>(),
        plans in node_plans(20),
        rebucket_ms in 0u64..400,
        finite_interference in any::<bool>(),
    ) {
        let (mut wg, ids) =
            spatial_world(&plans, SpatialIndex::Grid, seed, rebucket_ms, finite_interference);
        let (mut wb, ids_b) =
            spatial_world(&plans, SpatialIndex::BruteForce, seed, rebucket_ms, finite_interference);
        prop_assert_eq!(&ids, &ids_b);
        for (phase, horizon_s) in [0.4f64, 0.9, 1.6].into_iter().enumerate() {
            wg.run_until(SimTime::from_secs_f64(horizon_s));
            wb.run_until(SimTime::from_secs_f64(horizon_s));
            for &id in &ids {
                prop_assert_eq!(
                    wg.neighbors(id),
                    wb.neighbors(id),
                    "neighbor sets diverged for {} at phase {}",
                    id,
                    phase
                );
            }
            if phase == 0 {
                // Churn the flagged nodes out of both worlds identically.
                for (&(_, _, _, flags, _), &id) in plans.iter().zip(&ids) {
                    if flags & 2 != 0 {
                        wg.remove_node(id);
                        wb.remove_node(id);
                    }
                }
            }
        }
        prop_assert_eq!(wg.stats(), wb.stats());
        for &id in &ids {
            prop_assert_eq!(wg.node_stats(id), wb.node_stats(id));
        }
    }

    /// The parallel sweep executor must be invisible in the results: the
    /// same randomly-generated scenario swept at 1 worker and at 4 workers
    /// must return identical per-seed statistics, in seed order. (Each job
    /// owns a whole `World`; parallelism only reorders wall-clock
    /// completion, which `SweepRunner` hides by slotting results by job
    /// index.)
    #[test]
    fn sweep_runner_job_count_never_changes_results(
        base_seed in any::<u32>(),
        plans in node_plans(8),
    ) {
        let seeds: Vec<u64> = (0..4).map(|k| u64::from(base_seed) + k * 7919).collect();
        let sweep = |jobs: usize| {
            pds_bench::SweepRunner::new(jobs).run(seeds.len(), |i| {
                let (mut w, _) = spatial_world(&plans, SpatialIndex::Grid, seeds[i], 0, false);
                w.run_until(SimTime::from_secs_f64(1.0));
                w.stats().clone()
            })
        };
        prop_assert_eq!(sweep(1), sweep(4));
    }

    /// A dense clique (everyone in carrier-sense range of everyone) is the
    /// adversarial case for the transmission index: collisions, deferrals
    /// and capture decisions all hinge on the carrier-sense and
    /// interference candidate sets. Replay must still be bit-identical.
    #[test]
    fn spatial_grid_replays_dense_contention_identically(
        seed in any::<u64>(),
        coords in proptest::collection::vec((0.0f64..120.0, 0.0f64..120.0), 3..14),
        period_ms in 5u64..25,
    ) {
        let run = |index: SpatialIndex| {
            let mut config = SimConfig::default();
            config.spatial.index = index;
            let mut w = World::new(config, seed);
            for &(x, y) in &coords {
                w.add_node(Position::new(x, y), Box::new(SimChatter { period_ms }));
            }
            w.run_until(SimTime::from_secs_f64(1.5));
            w.stats().clone()
        };
        prop_assert_eq!(run(SpatialIndex::Grid), run(SpatialIndex::BruteForce));
    }
}

// ---- event-scheduler equivalence ------------------------------------------
//
// The timer wheel (DESIGN.md §11) is, like the spatial grid, an *index*,
// not an approximation: it must pop the exact `(time, seq, value)` stream
// a `(time, insertion-seq)`-keyed binary heap pops, under any interleaving
// of pushes and horizon-bounded pop phases.

use pds_sim::{Scheduler, TimerWheel};

/// One step of interleaved queue traffic: push offsets (µs past the
/// current pop frontier — the kernel never schedules into the past) and a
/// pop-phase horizon delta. Small offsets dominate so same-tick ties are
/// heavy; the large band lands in the wheel's far-future overflow tier.
type QueueStep = (Vec<u64>, u64);

fn queue_steps() -> impl Strategy<Value = Vec<QueueStep>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(
                // Repeated arms stand in for weights (the vendored
                // prop_oneof! is unweighted): ~40% same-tick ties, ~30%
                // near, ~20% mid, ~10% far-future overflow.
                prop_oneof![
                    0u64..4,
                    0u64..4,
                    0u64..4,
                    0u64..4,
                    0u64..5_000,
                    0u64..5_000,
                    0u64..5_000,
                    0u64..2_000_000,
                    0u64..2_000_000,
                    0u64..(1u64 << 37),
                ],
                0..12,
            ),
            0u64..3_000_000,
        ),
        1..40,
    )
}

proptest! {
    /// Wheel vs reference heap: identical `(time, seq, value)` pop streams.
    /// The value doubles as the event "kind"; seq agreement is implied by
    /// demanding the exact heap order among same-tick ties.
    #[test]
    fn timer_wheel_pops_exactly_like_a_heap(steps in queue_steps()) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut wheel: TimerWheel<u32> = TimerWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let pop_matched = |wheel: &mut TimerWheel<u32>,
                           heap: &mut BinaryHeap<Reverse<(u64, u64, u32)>>,
                           horizon: u64| loop {
            let w = wheel.pop_until(SimTime::from_micros(horizon));
            let h = match heap.peek() {
                Some(&Reverse((at, _, v))) if at <= horizon => {
                    heap.pop();
                    Some((SimTime::from_micros(at), v))
                }
                _ => None,
            };
            prop_assert_eq!(w, h, "streams diverged at horizon {}", horizon);
            if w.is_none() {
                break;
            }
        };
        let mut frontier = 0u64;
        let mut seq = 0u64;
        for (id, (pushes, pop_delta)) in steps.into_iter().enumerate() {
            for (k, off) in pushes.into_iter().enumerate() {
                let at = frontier.saturating_add(off);
                let value = (id * 16 + k) as u32;
                wheel.push(SimTime::from_micros(at), value);
                heap.push(Reverse((at, seq, value)));
                seq += 1;
            }
            let horizon = frontier.saturating_add(pop_delta);
            pop_matched(&mut wheel, &mut heap, horizon);
            frontier = horizon;
        }
        pop_matched(&mut wheel, &mut heap, u64::MAX);
        prop_assert!(wheel.is_empty() && heap.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end: random dense-contention scenarios must produce
    /// identical statistics whichever scheduler backs the kernel queue —
    /// the whole-simulator analogue of the pop-stream property above.
    #[test]
    fn scheduler_choice_never_changes_simulation_results(
        seed in any::<u64>(),
        coords in proptest::collection::vec((0.0f64..150.0, 0.0f64..150.0), 3..10),
        period_ms in 8u64..30,
    ) {
        let run = |scheduler: Scheduler| {
            let config = SimConfig {
                scheduler,
                ..Default::default()
            };
            let mut w = World::new(config, seed);
            for &(x, y) in &coords {
                w.add_node(Position::new(x, y), Box::new(SimChatter { period_ms }));
            }
            w.run_until(SimTime::from_secs_f64(1.2));
            w.stats().clone()
        };
        prop_assert_eq!(run(Scheduler::Wheel), run(Scheduler::BinaryHeap));
    }
}

// ---- sharded stepping equivalence -----------------------------------------
//
// `SimConfig::shards` partitions the arena into grid-column stripes whose
// physical verdicts are precomputed concurrently within a conservative
// lookahead window (DESIGN.md §15). Like the spatial grid and the timer
// wheel, the shard executor is an *index*, not an approximation: for any
// shard count the statistics (and, under the `replay-digest` feature, the
// event-stream digest) must be bit-identical to the sequential path —
// including under motion, churn, and an installed fault plan.

/// Runs a random scenario at a given shard count and returns everything
/// observable: aggregate stats, per-node stats in id order, and the replay
/// digest when the feature is on (`None` otherwise, so comparisons stay
/// vacuously true rather than silently weaker).
fn sharded_run(
    plans: &[NodePlan],
    seed: u64,
    shards: u32,
    plan: Option<pds_sim::FaultPlan>,
) -> (pds_sim::Stats, Vec<pds_sim::NodeStats>, Option<u64>) {
    let mut config = SimConfig::default();
    config.radio.baseline_loss = 0.05;
    config.radio.interference_range_factor = 4.0;
    config.shards = shards;
    let mut w = World::new(config, seed);
    if let Some(plan) = plan {
        w.install_faults(plan);
    }
    let ids: Vec<_> = plans
        .iter()
        .map(|&((x, y), _, _, _, period)| {
            w.add_node(
                Position::new(x, y),
                Box::new(SimChatter { period_ms: period }),
            )
        })
        .collect();
    for (&(_, (dx, dy), speed, flags, _), &id) in plans.iter().zip(&ids) {
        if flags & 1 != 0 {
            w.move_node(id, Position::new(dx, dy), speed);
        }
    }
    w.run_until(SimTime::from_secs_f64(0.8));
    // Churn the flagged nodes out mid-run: cache invalidation must track
    // the epoch bump, not just positions.
    for (&(_, _, _, flags, _), &id) in plans.iter().zip(&ids) {
        if flags & 2 != 0 {
            w.remove_node(id);
        }
    }
    w.run_until(SimTime::from_secs_f64(1.6));
    let per_node = ids
        .iter()
        .filter_map(|&id| w.node_stats(id))
        .collect::<Vec<_>>();
    #[cfg(feature = "replay-digest")]
    let digest = Some(w.replay_digest());
    #[cfg(not(feature = "replay-digest"))]
    let digest = None;
    (w.stats().clone(), per_node, digest)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any random scenario stepped at shards ∈ {2, 4, 8} must be
    /// observationally identical to the sequential path (shards = 1).
    #[test]
    fn shard_count_never_changes_simulation_results(
        seed in any::<u64>(),
        plans in node_plans(14),
    ) {
        let base = sharded_run(&plans, seed, 1, None);
        for shards in [2u32, 4, 8] {
            let run = sharded_run(&plans, seed, shards, None);
            prop_assert_eq!(&run, &base, "shards={} diverged", shards);
        }
    }

    /// Same property with a biting fault plan installed: probabilistic
    /// drops/dups/delays draw from the plan's own rng stream, and a
    /// partition plus a silence window cut deliveries mid-flight. The
    /// shard executor must not perturb any of those draws' order.
    #[test]
    fn shard_count_never_changes_faulty_runs(
        seed in any::<u64>(),
        plan_seed in any::<u64>(),
        plans in node_plans(10),
        drop_ppm in 0u32..150_001,
        dup_ppm in 0u32..80_001,
        delay_ppm in 0u32..80_001,
        boundary in 1u32..6,
    ) {
        let plan = pds_sim::FaultPlan {
            seed: plan_seed,
            drop_prob: f64::from(drop_ppm) / 1e6,
            dup_prob: f64::from(dup_ppm) / 1e6,
            delay_prob: f64::from(delay_ppm) / 1e6,
            delay_max: SimDuration::from_millis(120),
            partitions: vec![pds_sim::PartitionWindow {
                from: SimTime::from_micros(200_000),
                until: SimTime::from_micros(700_000),
                boundary,
            }],
            silences: vec![pds_sim::SilenceWindow {
                node: 0,
                from: SimTime::from_micros(900_000),
                until: SimTime::from_micros(1_200_000),
            }],
            storms: Vec::new(),
        };
        let base = sharded_run(&plans, seed, 1, Some(plan.clone()));
        for shards in [2u32, 4, 8] {
            let run = sharded_run(&plans, seed, shards, Some(plan.clone()));
            prop_assert_eq!(&run, &base, "shards={} diverged under faults", shards);
        }
    }
}

// ---- city-scale slab digest pin ---------------------------------------------
//
// PR 10 replaces the kernel's `BTreeMap<NodeId, NodeState>` world storage
// with a dense slab + SoA split and puts the transport's reassembly state
// on a memory diet. The digest below was captured from the *pre-diet*
// kernel on the scenario in `slab_world_replays_pre_diet_digest_at_n1000`;
// the slab-backed world must reproduce it bit-for-bit, sequentially and
// sharded, or the refactor changed observable behavior.

/// Pre-diet replay digest of the n=1000 cluster-pair scenario, captured
/// before the slab/SoA world refactor.
#[cfg(feature = "replay-digest")]
const PRE_DIET_N1000_DIGEST: u64 = 0x6597_973c_eb0f_b20d;

#[cfg(feature = "replay-digest")]
#[test]
fn slab_world_replays_pre_diet_digest_at_n1000() {
    let run = |shards: u32| {
        let mut config = SimConfig::default();
        config.radio.baseline_loss = 0.02;
        config.shards = shards;
        let mut w = World::new(config, 42);
        // 500 cluster pairs strung along x, far enough apart that clusters
        // never interfere: throughput scales linearly, contention stays
        // local, and the event stream still exercises MAC, acks and
        // carrier sense inside every pair.
        for i in 0..500u32 {
            let x = f64::from(i) * 400.0;
            w.add_node(
                Position::new(x, 0.0),
                Box::new(SimChatter { period_ms: 50 }),
            );
            w.add_node(
                Position::new(x + 25.0, 0.0),
                Box::new(SimChatter { period_ms: 50 }),
            );
        }
        w.run_until(SimTime::from_secs_f64(0.3));
        (w.replay_digest(), w.stats().clone())
    };
    let (digest, stats) = run(1);
    assert!(stats.frames_delivered > 0, "scenario must carry traffic");
    assert_eq!(
        digest, PRE_DIET_N1000_DIGEST,
        "sequential digest drifted: got 0x{digest:016x}"
    );
    let (sharded_digest, sharded_stats) = run(4);
    assert_eq!(
        sharded_digest, PRE_DIET_N1000_DIGEST,
        "sharded digest drifted: got 0x{sharded_digest:016x}"
    );
    assert_eq!(sharded_stats, stats, "shards=4 changed outcomes");
}

// ---- dst fault plans --------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any (seed, fault-plan) pair replays to identical statistics across
    /// two runs and across event-scheduler implementations: the fault
    /// layer draws all its randomness from the plan's own seeded stream,
    /// so it is part of the deterministic contract, not an exception to
    /// it.
    #[test]
    fn fault_plans_replay_identically_across_runs_and_schedulers(
        world_seed in any::<u64>(),
        plan_seed in any::<u64>(),
        nodes in 2u32..6,
        messages in 4u32..16,
        loss_ppm in 0u32..150_001,
        drop_ppm in 0u32..120_001,
        dup_ppm in 0u32..80_001,
        delay_ppm in 0u32..80_001,
        delay_max_ms in 1u32..401,
        partitions in 0u32..3,
        silences in 0u32..3,
        max_retr in 0u32..6,
    ) {
        let spec = pds_dst::CaseSpec {
            family: pds_dst::Family::Transport,
            world_seed,
            plan_seed,
            nodes,
            messages,
            msg_bytes: 64,
            entries: 0,
            loss_ppm,
            drop_ppm,
            dup_ppm,
            delay_ppm,
            delay_max_ms,
            partitions,
            silences,
            storms: 0,
            max_retr,
            horizon_ds: messages + 100,
        };
        let a = pds_dst::scenario::run_case_with_scheduler(&spec, Scheduler::Wheel);
        let b = pds_dst::scenario::run_case_with_scheduler(&spec, Scheduler::Wheel);
        prop_assert_eq!(&a.stats, &b.stats, "same scheduler, same spec: stats diverged");
        prop_assert_eq!(&a, &b, "same scheduler, same spec: outcome diverged");
        let h = pds_dst::scenario::run_case_with_scheduler(&spec, Scheduler::BinaryHeap);
        prop_assert_eq!(&a.stats, &h.stats, "wheel vs heap: stats diverged");
        prop_assert!(a.violations.is_empty(), "invariants must hold in-envelope: {:?}", a.violations);
    }
}

// ---- streaming mobility -----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The streaming mobility generator emits exactly the sequence the
    /// materializing generator records, for any seed, venue, multiplier
    /// and duration: `MobilityTrace::generate` is defined as collecting a
    /// `TraceStream`, and this pins that contract against the stream's
    /// internal state machine drifting (rng draw order, skipped empty-
    /// present arrivals, person numbering).
    #[test]
    fn streaming_mobility_matches_materialized_trace(
        seed in any::<u64>(),
        venue in 0u8..2,
        multiplier in 0.0f64..3.0,
        secs in 1u32..1800,
    ) {
        let params = if venue == 0 {
            pds_mobility::presets::student_center()
        } else {
            pds_mobility::presets::classroom()
        };
        let dur = pds_sim::SimDuration::from_secs(u64::from(secs));
        let trace = pds_mobility::MobilityTrace::generate(&params, dur, multiplier, seed);
        let mut stream = pds_mobility::TraceStream::new(&params, dur, multiplier, seed);
        prop_assert_eq!(stream.initial_people(), trace.initial_people());
        let streamed: Vec<pds_mobility::TraceEvent> = stream.by_ref().collect();
        prop_assert_eq!(streamed.as_slice(), trace.events());
        prop_assert_eq!(stream.next(), None, "exhausted stream must stay exhausted");
    }
}
