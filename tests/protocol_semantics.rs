//! Protocol-semantics tests over the radio: receiver-list gating, lingering
//! expiry, hop limits, probabilistic flooding, bounded caches and energy —
//! the paper's §III rules and the §VII extensions, observed end to end.

use bytes::Bytes;
use pds_core::{
    AttrValue, ChunkCacheConfig, ChunkId, DataDescriptor, EvictionPolicy, ItemName, PdsConfig,
    PdsNode, QueryFilter,
};
use pds_mobility::grid;
use pds_sim::{EnergyModel, NodeId, SimConfig, SimDuration, SimTime, World};

fn entry(owner: usize, k: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "s")
        .attr("o", owner as i64)
        .attr("t", AttrValue::Time(i64::from(k)))
        .build()
}

fn item(total: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "video")
        .attr("name", "clip")
        .attr("total_chunks", i64::from(total))
        .build()
}

fn line_world(n: usize, per_node: u32, pds: PdsConfig, seed: u64) -> (World, Vec<NodeId>) {
    let mut world = World::new(SimConfig::paper_multi_hop(), seed);
    let mut ids = Vec::new();
    for i in 0..n {
        let mut node = PdsNode::new(pds.clone(), 2000 + i as u64);
        for k in 0..per_node {
            node = node.with_metadata(entry(i, k), None);
        }
        ids.push(world.add_node(pds_sim::Position::new(i as f64 * 60.0, 0.0), Box::new(node)));
    }
    world.run_until(SimTime::from_secs_f64(0.2));
    (world, ids)
}

fn drive_discovery(world: &mut World, consumer: NodeId, horizon: f64) -> usize {
    world.with_app::<PdsNode, _>(consumer, |n, ctx| {
        n.start_discovery(ctx, QueryFilter::match_all());
    });
    let deadline = SimTime::from_secs_f64(horizon);
    loop {
        let done = world
            .app::<PdsNode>(consumer)
            .and_then(PdsNode::discovery_report)
            .is_some_and(|r| r.finished_at.is_some());
        if done || world.now() >= deadline {
            break;
        }
        let next = world.now() + SimDuration::from_millis(250);
        world.run_until(next.min(deadline));
    }
    world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::discovery_report)
        .map(|r| r.entries)
        .unwrap_or(0)
}

#[test]
fn hop_limit_bounds_discovery_over_radio() {
    let pds = PdsConfig {
        query_hop_limit: Some(2),
        ..PdsConfig::default()
    };
    let (mut world, ids) = line_world(6, 2, pds, 1);
    let entries = drive_discovery(&mut world, ids[0], 30.0);
    // Own entries + neighbors within 2 hops (nodes 1 and 2): 3 × 2 = 6.
    assert_eq!(entries, 6, "2-hop budget reaches exactly nodes 0..=2");
}

#[test]
fn probabilistic_flooding_trades_recall_for_traffic() {
    let run = |p: f64, seed: u64| -> (usize, u64) {
        let pds = PdsConfig {
            forward_probability: p,
            ..PdsConfig::default()
        };
        let (mut world, ids) = line_world(6, 2, pds, seed);
        let entries = drive_discovery(&mut world, ids[0], 30.0);
        (entries, world.stats().bytes_sent)
    };
    let (full_entries, _) = run(1.0, 2);
    assert_eq!(full_entries, 12, "p = 1 reaches everything");
    let (none_entries, none_bytes) = run(0.0, 2);
    assert_eq!(none_entries, 4, "p = 0 stops at one hop (own + node 1)");
    let (_, full_bytes) = run(1.0, 2);
    assert!(
        none_bytes < full_bytes,
        "forwarding less must cost less ({none_bytes} vs {full_bytes})"
    );
}

#[test]
fn lingering_expiry_stops_response_routing() {
    // A provider comes alive *after* the consumer's query has expired from
    // every LQT: a single round then cannot find it, so the multi-round
    // machinery has to ask again (which is exactly the design).
    let mut pds = PdsConfig {
        query_lifetime: SimDuration::from_millis(500),
        ..PdsConfig::default()
    };
    pds.rounds.max_rounds = 1;
    let mut world = World::new(SimConfig::paper_multi_hop(), 3);
    let consumer = world.add_node(
        pds_sim::Position::new(0.0, 0.0),
        Box::new(PdsNode::new(pds.clone(), 1)),
    );
    let relay = world.add_node(
        pds_sim::Position::new(60.0, 0.0),
        Box::new(PdsNode::new(pds.clone(), 2)),
    );
    let _ = relay;
    world.run_until(SimTime::from_secs_f64(0.2));
    world.with_app::<PdsNode, _>(consumer, |n, ctx| {
        n.start_discovery(ctx, QueryFilter::match_all());
    });
    world.run_until(SimTime::from_secs_f64(2.0));
    // Provider joins at 120 m (2 hops), after the 0.5 s lingering horizon.
    let late = PdsNode::new(pds, 3).with_metadata(entry(9, 0), None);
    world.add_node(pds_sim::Position::new(120.0, 0.0), Box::new(late));
    world.run_until(SimTime::from_secs_f64(10.0));
    let report = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::discovery_report)
        .expect("ran");
    assert_eq!(
        report.entries, 0,
        "expired lingering queries route nothing (single round)"
    );
}

#[test]
fn bounded_relay_cache_still_allows_full_retrieval() {
    let total = 8u32;
    let pds = PdsConfig {
        chunk_cache: ChunkCacheConfig {
            capacity_bytes: Some(128 * 1024), // two 64 KB chunks
            policy: EvictionPolicy::Lru,
        },
        ..PdsConfig::default()
    };
    let mut world = World::new(SimConfig::paper_multi_hop(), 4);
    let mut provider = PdsNode::new(pds.clone(), 1);
    for c in 0..total {
        provider = provider.with_chunk(
            item(total),
            ChunkId(c),
            Bytes::from(vec![c as u8; 64 * 1024]),
        );
    }
    world.add_node(pds_sim::Position::new(0.0, 0.0), Box::new(provider));
    let relay = world.add_node(
        pds_sim::Position::new(60.0, 0.0),
        Box::new(PdsNode::new(pds.clone(), 2)),
    );
    let consumer = world.add_node(
        pds_sim::Position::new(120.0, 0.0),
        Box::new(PdsNode::new(pds, 3)),
    );
    world.run_until(SimTime::from_secs_f64(0.2));
    world.with_app::<PdsNode, _>(consumer, |n, ctx| {
        n.start_retrieval(ctx, item(8));
    });
    let deadline = SimTime::from_secs_f64(120.0);
    loop {
        let done = world
            .app::<PdsNode>(consumer)
            .and_then(PdsNode::retrieval_report)
            .is_some_and(|r| r.finished_at.is_some());
        if done || world.now() >= deadline {
            break;
        }
        let next = world.now() + SimDuration::from_millis(250);
        world.run_until(next.min(deadline));
    }
    let report = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::retrieval_report)
        .expect("ran");
    assert!(
        (report.recall - 1.0).abs() < 1e-9,
        "recall = {}",
        report.recall
    );
    // The relay respected its budget; the consumer's own copies are its own
    // session data (cached, not pinned — also budgeted, so it holds ≤ 2).
    let relay_cached = world
        .app::<PdsNode>(relay)
        .and_then(|n| n.engine())
        .map(|e| e.store().cached_chunk_bytes())
        .expect("relay alive");
    assert!(
        relay_cached <= 128 * 1024,
        "relay over budget: {relay_cached}"
    );
}

#[test]
fn overhearers_cache_but_do_not_forward() {
    // Classic §III-A-2 receiver check: an off-path node overhears responses
    // and caches entries, but its transmissions stay at zero extra relays —
    // we verify it ends up holding data despite never being asked.
    let mut world = World::new(SimConfig::paper_multi_hop(), 5);
    let producer = PdsNode::new(PdsConfig::default(), 1)
        .with_metadata(entry(0, 0), None)
        .with_metadata(entry(0, 1), None);
    world.add_node(pds_sim::Position::new(0.0, 0.0), Box::new(producer));
    let consumer = world.add_node(
        pds_sim::Position::new(60.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 2)),
    );
    // Eavesdropper in range of the producer but not on any return path.
    let eavesdropper = world.add_node(
        pds_sim::Position::new(0.0, 60.0),
        Box::new(PdsNode::new(PdsConfig::default(), 3)),
    );
    world.run_until(SimTime::from_secs_f64(0.2));
    let got = drive_discovery(&mut world, consumer, 15.0);
    assert_eq!(got, 2);
    let overheard = world
        .app::<PdsNode>(eavesdropper)
        .and_then(|n| n.engine())
        .map(|e| e.store().metadata_len())
        .expect("alive");
    assert_eq!(overheard, 2, "eavesdropper cached the overheard entries");
    let overheard_msgs = world
        .node_stats(eavesdropper)
        .expect("alive")
        .messages_overheard;
    assert!(overheard_msgs > 0, "deliveries were flagged as overheard");
}

#[test]
fn energy_of_discovery_is_dominated_by_idle_listening() {
    // §VII's point: overhearing keeps radios on, so idle listening — not
    // traffic — dominates energy at small data volumes.
    let mut world = World::new(SimConfig::paper_multi_hop(), 6);
    let mut ids = Vec::new();
    for (i, pos) in grid::positions(3, 3, grid::SPACING_M).iter().enumerate() {
        let mut node = PdsNode::new(PdsConfig::default(), 100 + i as u64);
        for k in 0..4 {
            node = node.with_metadata(entry(i, k), None);
        }
        ids.push(world.add_node(*pos, Box::new(node)));
    }
    let consumer = ids[grid::center_index(3, 3)];
    world.run_until(SimTime::from_secs_f64(0.2));
    drive_discovery(&mut world, consumer, 30.0);
    let model = EnergyModel::default();
    let total = world.energy_j(&model);
    let idle = model.idle_mw / 1e3 * world.now().as_secs_f64() * ids.len() as f64;
    assert!(total > idle, "traffic adds on top of idle");
    assert!(
        idle / total > 0.9,
        "idle listening dominates at metadata volumes ({:.1}%)",
        idle / total * 100.0
    );
}

#[test]
fn reassembled_item_bytes_are_exact() {
    // End-to-end payload integrity across fragmentation, relaying, caching
    // and reassembly for every chunk of an item.
    let total = 5u32;
    let mut world = World::new(SimConfig::paper_multi_hop(), 7);
    let mut provider = PdsNode::new(PdsConfig::default(), 1);
    let body = |c: u32| -> Vec<u8> {
        (0..40_000u32)
            .map(|i| ((i * 31 + c * 7) % 251) as u8)
            .collect()
    };
    for c in 0..total {
        provider = provider.with_chunk(item(total), ChunkId(c), Bytes::from(body(c)));
    }
    world.add_node(pds_sim::Position::new(0.0, 0.0), Box::new(provider));
    world.add_node(
        pds_sim::Position::new(60.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 2)),
    );
    let consumer = world.add_node(
        pds_sim::Position::new(120.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 3)),
    );
    world.run_until(SimTime::from_secs_f64(0.2));
    world.with_app::<PdsNode, _>(consumer, |n, ctx| {
        n.start_retrieval(ctx, item(5));
    });
    world.run_until(SimTime::from_secs_f64(60.0));
    let engine = world
        .app::<PdsNode>(consumer)
        .and_then(|n| n.engine())
        .expect("alive");
    for c in 0..total {
        let data = engine
            .store()
            .chunk(&ItemName::new("clip"), ChunkId(c))
            .expect("chunk held");
        assert_eq!(data.as_ref(), body(c).as_slice(), "chunk {c} bytes exact");
    }
}
