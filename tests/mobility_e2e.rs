//! Discovery and retrieval under generated mobility traces — the §VI-B-2
//! regime: people join, leave and wander while the protocols run.

use pds_core::{AttrValue, DataDescriptor, PdsConfig, PdsNode, QueryFilter};
use pds_mobility::{presets, MobilityTrace, PersonId, TraceAction, TraceInstaller};
use pds_sim::{SimConfig, SimDuration, SimTime, World};

fn entry(owner: u32, k: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "s")
        .attr("o", i64::from(owner))
        .attr("k", i64::from(k))
        .attr("t", AttrValue::Time(i64::from(owner * 100 + k)))
        .build()
}

/// A trace with the consumer's departures stripped, so recall is measurable.
fn consumer_stays(trace: MobilityTrace, consumer: PersonId) -> MobilityTrace {
    MobilityTrace::from_parts(
        trace.initial_people().to_vec(),
        trace
            .events()
            .iter()
            .filter(|e| !(e.person == consumer && e.action == TraceAction::Leave))
            .cloned()
            .collect(),
    )
}

#[test]
fn classroom_discovery_reaches_most_entries() {
    let params = presets::classroom();
    let trace = MobilityTrace::generate(&params, SimDuration::from_secs(120), 1.0, 1);
    let consumer_person = trace.initial_people()[0].0;
    let trace = consumer_stays(trace, consumer_person);
    let initial = trace.initial_people().len() as u32;

    let mut world = World::new(SimConfig::paper_multi_hop(), 1);
    let installer = TraceInstaller::install(&mut world, &trace, move |p| {
        let mut node = PdsNode::new(PdsConfig::default(), 900 + u64::from(p.0));
        if p.0 < initial {
            for k in 0..3 {
                node = node.with_metadata(entry(p.0, k), None);
            }
        }
        Box::new(node)
    });
    let consumer = installer.node_of(consumer_person).expect("present");
    world.run_until(SimTime::from_secs_f64(5.0));
    world.with_app::<PdsNode, _>(consumer, |n, ctx| {
        n.start_discovery(ctx, QueryFilter::match_all());
    });
    world.run_until(SimTime::from_secs_f64(60.0));
    let report = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::discovery_report)
        .expect("ran");
    let total = initial * 3;
    assert!(report.finished_at.is_some(), "terminates under churn");
    assert!(
        report.entries as f64 >= f64::from(total) * 0.9,
        "≥90% recall under classroom churn ({}/{total})",
        report.entries
    );
}

#[test]
fn student_center_high_mobility_still_works() {
    let params = presets::student_center();
    let trace = MobilityTrace::generate(&params, SimDuration::from_secs(180), 2.0, 2);
    let consumer_person = trace.initial_people()[0].0;
    let trace = consumer_stays(trace, consumer_person);
    let initial = trace.initial_people().len() as u32;

    let mut world = World::new(SimConfig::paper_multi_hop(), 2);
    let installer = TraceInstaller::install(&mut world, &trace, move |p| {
        let mut node = PdsNode::new(PdsConfig::default(), 800 + u64::from(p.0));
        if p.0 < initial {
            for k in 0..3 {
                node = node.with_metadata(entry(p.0, k), None);
            }
        }
        Box::new(node)
    });
    let consumer = installer.node_of(consumer_person).expect("present");
    world.run_until(SimTime::from_secs_f64(5.0));
    world.with_app::<PdsNode, _>(consumer, |n, ctx| {
        n.start_discovery(ctx, QueryFilter::match_all());
    });
    world.run_until(SimTime::from_secs_f64(90.0));
    let report = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::discovery_report)
        .expect("ran");
    // At 2× mobility a few sole-copy holders may leave before answering;
    // the paper reports near-100% — we accept a small deficit.
    assert!(
        report.entries as f64 >= f64::from(initial * 3) * 0.8,
        "recall under 2x mobility ({} of {})",
        report.entries,
        initial * 3
    );
}

#[test]
fn joiners_learn_from_caches() {
    // Someone who arrives after a discovery has run can discover from
    // caches even if they are far from the original producers.
    let params = presets::classroom();
    let base = MobilityTrace::generate(&params, SimDuration::from_secs(10), 0.0, 3);
    let consumer_person = base.initial_people()[0].0;
    let initial = base.initial_people().len() as u32;

    let mut world = World::new(SimConfig::paper_multi_hop(), 3);
    let installer = TraceInstaller::install(&mut world, &base, move |p| {
        let mut node = PdsNode::new(PdsConfig::default(), 700 + u64::from(p.0));
        if p.0 < initial {
            node = node.with_metadata(entry(p.0, 0), None);
        }
        Box::new(node)
    });
    let consumer = installer.node_of(consumer_person).expect("present");
    world.run_until(SimTime::from_secs_f64(1.0));
    world.with_app::<PdsNode, _>(consumer, |n, ctx| {
        n.start_discovery(ctx, QueryFilter::match_all());
    });
    world.run_until(SimTime::from_secs_f64(30.0));

    // A latecomer joins in the middle and asks again.
    let late = world.add_node(
        pds_sim::Position::new(10.0, 10.0),
        Box::new(PdsNode::new(PdsConfig::default(), 999)),
    );
    world.run_until(SimTime::from_secs_f64(31.0));
    world.with_app::<PdsNode, _>(late, |n, ctx| {
        n.start_discovery(ctx, QueryFilter::match_all());
    });
    world.run_until(SimTime::from_secs_f64(60.0));
    let report = world
        .app::<PdsNode>(late)
        .and_then(PdsNode::discovery_report)
        .expect("ran");
    assert!(
        report.entries as f64 >= f64::from(initial) * 0.9,
        "latecomer discovers from caches ({} of {})",
        report.entries,
        initial
    );
}
