//! Discovery under churn — the paper's Student Center mobility scenario.
//!
//! People wander in and out of a 120×120 m student center (rates taken from
//! the paper's 8-hour observation study). The ones present at the start
//! carry sensor data; a consumer who stays runs a discovery while the crowd
//! churns around them.
//!
//! Run with: `cargo run --release --example mobile_campus`

use pds::core::{AttrValue, DataDescriptor, PdsConfig, PdsNode, QueryFilter};
use pds::mobility::{presets, MobilityTrace, TraceAction, TraceInstaller};
use pds::sim::{SimConfig, SimDuration, SimTime, World};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let params = presets::student_center();
    let trace = MobilityTrace::generate(&params, SimDuration::from_secs(300), 1.0, 3);

    // The first initial person is our consumer; drop their departures so
    // there is someone to measure.
    let consumer_person = trace.initial_people()[0].0;
    let trace = MobilityTrace::from_parts(
        trace.initial_people().to_vec(),
        trace
            .events()
            .iter()
            .filter(|e| !(e.person == consumer_person && e.action == TraceAction::Leave))
            .cloned()
            .collect(),
    );
    let (joins, leaves, moves) = trace.event_counts();
    println!(
        "Student center: {} people initially; over 5 min: {joins} join, {leaves} leave, {moves} move.",
        trace.initial_people().len()
    );

    let mut world = World::new(SimConfig::default(), 5);
    // The install factory must be `Send` (worlds can move to sweep worker
    // threads), so the seeded-entry counter is an atomic rather than
    // Rc<Cell>.
    let counter = Arc::new(AtomicU64::new(0));
    let initial_count = trace.initial_people().len() as u32;
    let installer = {
        let counter = Arc::clone(&counter);
        TraceInstaller::install(&mut world, &trace, move |person| {
            let mut node = PdsNode::new(PdsConfig::default(), 40 + u64::from(person.0));
            // Only the initial crowd carries data (5 samples each).
            if person.0 < initial_count {
                for k in 0..5u32 {
                    counter.fetch_add(1, Ordering::Relaxed);
                    node = node.with_metadata(
                        DataDescriptor::builder()
                            .attr("ns", "env")
                            .attr("type", "noise")
                            .attr("who", i64::from(person.0))
                            .attr("time", AttrValue::Time(i64::from(person.0 * 100 + k)))
                            .build(),
                        None,
                    );
                }
            }
            Box::new(node)
        })
    };
    let consumer = installer.node_of(consumer_person).expect("stays present");

    // Let the crowd churn for a bit, then ask.
    world.run_until(SimTime::from_secs_f64(10.0));
    world.with_app::<PdsNode, _>(consumer, |node, ctx| {
        node.start_discovery(ctx, QueryFilter::match_all());
    });
    world.run_until(SimTime::from_secs_f64(60.0));

    let report = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::discovery_report)
        .expect("discovery ran");
    let seeded = counter.load(Ordering::Relaxed);
    println!(
        "Consumer discovered {} of {} seeded entries ({:.1}% recall) in {:.2} s over {} rounds.",
        report.entries,
        seeded,
        report.entries as f64 / seeded as f64 * 100.0,
        report.latency.as_secs_f64(),
        report.rounds
    );
    println!(
        "People present at the end: {}; radio traffic: {:.1} KB.",
        installer.present_people().len(),
        world.stats().bytes_sent as f64 / 1e3
    );
    println!("(Entries whose only holder left before answering are legitimately unreachable.)");
}
