//! Tracing walkthrough: record a PDS run as a JSONL trace, then analyze it.
//!
//! A producer two hops from a consumer serves a chunked video item; the
//! consumer first discovers what exists (PDD), then retrieves the item
//! chunk by chunk (PDR). With a [`pds::obs::JsonlSink`] installed, every
//! kernel dispatch, radio frame, transport message and protocol round
//! lands in the trace file — in deterministic order, stamped with virtual
//! time — and the same analysis the `pds-obs` CLI runs offline works
//! in-process:
//!
//! 1. an event census (what kinds of events, how many),
//! 2. the per-phase overhead table (whose bytes were PDD vs PDR),
//! 3. the message-delay CDF,
//! 4. the session reports extracted from `session_finished` events,
//! 5. the causal critical-path decomposition of each session's delay
//!    (queueing / contention / airtime / retransmission / processing).
//!
//! Run with: `cargo run --example trace [-- <trace.jsonl>]`
//! The trace path defaults to `pds-trace.jsonl` in the temp directory;
//! inspect it afterwards with `pds-obs summary <trace.jsonl>`.

use bytes::Bytes;
use pds::core::{ChunkId, DataDescriptor, PdsConfig, PdsNode, QueryFilter};
use pds::obs::{
    cdf, message_delays_us, read_trace_file, render_cdf, render_critical_path, render_overhead,
    JsonlSink, TraceKind,
};
use pds::sim::{Position, SimConfig, SimTime, World};
use std::collections::BTreeMap;

fn main() {
    let trace_path = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("pds-trace.jsonl"));

    // -- 1. Record: the sink observes, it never feeds back -----------------
    let mut world = World::new(SimConfig::default(), 42);
    world.set_trace_sink(Box::new(
        JsonlSink::create(&trace_path).expect("create trace file"),
    ));

    // A producer holding a 4-chunk video and some sensor metadata…
    let chunk = |c: u32| Bytes::from(vec![c as u8; 8 * 1024]);
    let mut producer = PdsNode::new(PdsConfig::default(), 1)
        .with_chunk(video(4), ChunkId(0), chunk(0))
        .with_chunk(video(4), ChunkId(1), chunk(1))
        .with_chunk(video(4), ChunkId(2), chunk(2))
        .with_chunk(video(4), ChunkId(3), chunk(3));
    for i in 0..3 {
        producer = producer.with_metadata(reading(i), None);
    }
    world.add_node(Position::new(0.0, 0.0), Box::new(producer));
    // …a relay in the middle…
    world.add_node(
        Position::new(60.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 2)),
    );
    // …and a consumer two hops out.
    let consumer = world.add_node(
        Position::new(120.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 3)),
    );

    world.run_until(SimTime::from_secs_f64(0.5));
    world.with_app::<PdsNode, _>(consumer, |node, ctx| {
        node.start_discovery(ctx, QueryFilter::match_all());
    });
    world.schedule(SimTime::from_secs_f64(8.0), move |w| {
        w.with_app::<PdsNode, _>(consumer, |node, ctx| {
            node.start_retrieval(ctx, video(4));
        });
    });
    world.run_until(SimTime::from_secs_f64(30.0));
    drop(world.take_trace_sink()); // flush the JSONL file

    // -- 2. Read it back ---------------------------------------------------
    let events = read_trace_file(&trace_path).expect("parse trace");
    println!(
        "recorded {} events over {:.1} virtual seconds into {}\n",
        events.len(),
        events.last().map_or(0.0, |e| e.at_us as f64 / 1e6),
        trace_path.display()
    );

    // -- 3. Event census: what actually happened ---------------------------
    let mut census: BTreeMap<&'static str, usize> = BTreeMap::new();
    for ev in &events {
        *census.entry(ev.kind.name()).or_insert(0) += 1;
    }
    println!("event census:");
    for (kind, count) in &census {
        println!("  {kind:<20} {count:>7}");
    }

    // -- 4. Whose bytes? The per-phase overhead decomposition --------------
    // Discovery traffic (metadata queries and replies) is tiny next to the
    // chunk transfer; this is the paper's overhead argument in one table.
    println!("\n{}", render_overhead(&events));

    // -- 5. Message delays: submit → first complete delivery ---------------
    let delays = message_delays_us(&events);
    println!("{}", render_cdf("message delay CDF", &delays, 8));
    if let Some((p50, _)) = cdf(&delays).iter().find(|&&(_, p)| p >= 0.5) {
        println!("median message delay: {:.1} ms", *p50 as f64 / 1e3);
    }

    // -- 6. Session outcomes straight from the trace ------------------------
    println!("\nconsumer sessions:");
    for ev in &events {
        if let TraceKind::SessionFinished {
            delay_us,
            rounds,
            items,
            ..
        } = ev.kind
        {
            println!(
                "  n{} {:<4} finished: {} items in {:.2} s over {} round(s)",
                ev.node,
                ev.phase.name(),
                items,
                delay_us as f64 / 1e6,
                rounds
            );
        }
    }
    // -- 7. Where did the time go? The causal critical path ----------------
    // Sessions are reconstructed across nodes (the consumer's query, the
    // relay's forward, the producer's response) and every inter-event gap
    // is charged to queueing, contention, airtime, retransmission or
    // processing — the components sum exactly to the session delay.
    println!("\n{}", render_critical_path(&events));
    println!(
        "inspect the full trace with: pds-obs summary {}",
        trace_path.display()
    );
}

fn video(total: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("ns", "events")
        .attr("type", "video")
        .attr("name", "parade-clip")
        .attr("total_chunks", i64::from(total))
        .build()
}

fn reading(i: i64) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("ns", "env")
        .attr("type", "no2")
        .attr("seq", i)
        .build()
}
