//! Air-quality crowdsensing — the paper's motivating small-data scenario.
//!
//! 49 devices in a park have each logged NO₂ and CO₂ samples with GPS
//! coordinates. A consumer in the middle first *discovers* what exists
//! (PDD with an attribute filter), then *retrieves the actual samples* in a
//! spatial window using the small-data flow of §IV ("air pollution samples
//! in a radius").
//!
//! Run with: `cargo run --example air_quality`

use pds::core::{AttrValue, DataDescriptor, PdsConfig, PdsNode, Predicate, QueryFilter, Relation};
use pds::mobility::grid;
use pds::sim::{SimConfig, SimRng, SimTime, World};

fn main() {
    let mut world = World::new(SimConfig::default(), 7);
    let mut rng = SimRng::new(99);

    // A 7×7 grid of phones; each carries a handful of samples tagged with
    // its own position.
    let positions = grid::positions(7, 7, grid::SPACING_M);
    let mut nodes = Vec::new();
    for (i, pos) in positions.iter().enumerate() {
        let mut node = PdsNode::new(PdsConfig::default(), 1000 + i as u64);
        for k in 0..4 {
            let kind = if (i + k) % 2 == 0 { "no2" } else { "co2" };
            let descriptor = DataDescriptor::builder()
                .attr("ns", "env")
                .attr("type", kind)
                .attr("x", pos.x)
                .attr("y", pos.y)
                .attr(
                    "time",
                    AttrValue::Time(1_467_800_000 + (i * 60 + k * 7) as i64),
                )
                .build();
            // The payload is the actual reading (a tiny blob).
            let reading = format!("{kind}={:.1}ppb", rng.range_f64(5.0, 40.0));
            node = node.with_metadata(descriptor, Some(reading.into_bytes().into()));
        }
        nodes.push(world.add_node(*pos, Box::new(node)));
    }
    let consumer = nodes[grid::center_index(7, 7)];
    world.run_until(SimTime::from_secs_f64(0.2));

    // Step 1: what's on the menu? Only NO₂ interests us.
    let no2 = QueryFilter::new(vec![Predicate::new("type", Relation::Eq, "no2")]);
    world.with_app::<PdsNode, _>(consumer, {
        let no2 = no2.clone();
        move |node, ctx| node.start_discovery(ctx, no2)
    });
    world.run_until(SimTime::from_secs_f64(20.0));
    let discovered = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::discovery_report)
        .expect("discovery ran");
    println!(
        "Discovered {} NO2 sample descriptors in {:.2} s ({} rounds).",
        discovered.entries,
        discovered.latency.as_secs_f64(),
        discovered.rounds
    );

    // Step 2: fetch the actual NO₂ readings within 100 m of the consumer
    // (the paper's "samples in a radius", approximated by a bounding box).
    let center = grid::positions(7, 7, grid::SPACING_M)[grid::center_index(7, 7)];
    let nearby_no2 = QueryFilter::new(vec![
        Predicate::new("type", Relation::Eq, "no2"),
        Predicate::range("x", center.x - 100.0, center.x + 100.0),
        Predicate::range("y", center.y - 100.0, center.y + 100.0),
    ]);
    world.with_app::<PdsNode, _>(consumer, move |node, ctx| {
        node.start_small_data_retrieval(ctx, nearby_no2);
    });
    world.run_until(SimTime::from_secs_f64(40.0));

    let node = world.app::<PdsNode>(consumer).expect("alive");
    let engine = node.engine().expect("started");
    let session = engine.discovery().expect("retrieval session");
    println!(
        "Retrieved {} nearby NO2 samples with payloads:",
        session.entries().len()
    );
    let mut shown = 0;
    for d in session.entries() {
        if let Some(payload) = engine.store().small_payload(d) {
            if shown < 5 {
                println!(
                    "  ({:>5.0} m, {:>5.0} m): {}",
                    d.get("x")
                        .map(ToString::to_string)
                        .unwrap_or_default()
                        .parse::<f64>()
                        .unwrap_or(0.0),
                    d.get("y")
                        .map(ToString::to_string)
                        .unwrap_or_default()
                        .parse::<f64>()
                        .unwrap_or(0.0),
                    String::from_utf8_lossy(&payload)
                );
                shown += 1;
            }
        }
    }
    if session.entries().len() > shown {
        println!("  ... and {} more", session.entries().len() - shown);
    }
    println!(
        "Total radio traffic: {:.1} KB",
        world.stats().bytes_sent as f64 / 1e3
    );
}
