//! Quickstart: the smallest possible PDS session.
//!
//! Three phones sit within radio range of each other. Two of them carry
//! sensor readings; the third discovers what exists nearby and prints the
//! "menu" of available data — the restaurant-menu metaphor of §II of the
//! paper.
//!
//! Run with: `cargo run --example quickstart`

use pds::core::{AttrValue, DataDescriptor, PdsConfig, PdsNode, QueryFilter};
use pds::sim::{Position, SimConfig, SimTime, World};

fn main() {
    // A quiet little world: default radio (75 m range), calibrated leaky
    // bucket + ack/retransmission.
    let mut world = World::new(SimConfig::default(), 42);

    // Alice's phone has been logging air quality.
    let alice = PdsNode::new(PdsConfig::default(), 1)
        .with_metadata(sample("no2", 14.2, 1_467_800_000), None)
        .with_metadata(sample("no2", 16.8, 1_467_800_600), None);
    world.add_node(Position::new(0.0, 0.0), Box::new(alice));

    // Bob's phone photographed the food stands.
    let bob = PdsNode::new(PdsConfig::default(), 2).with_metadata(
        DataDescriptor::builder()
            .attr("ns", "events")
            .attr("type", "photo")
            .attr("name", "food-stand-queue")
            .build(),
        None,
    );
    world.add_node(Position::new(50.0, 0.0), Box::new(bob));

    // Carol wants to know what's available around her.
    let carol = world.add_node(
        Position::new(25.0, 40.0),
        Box::new(PdsNode::new(PdsConfig::default(), 3)),
    );
    world.with_app::<PdsNode, _>(carol, |node, ctx| {
        node.start_discovery(ctx, QueryFilter::match_all());
    });

    world.run_until(SimTime::from_secs_f64(15.0));

    let node = world.app::<PdsNode>(carol).expect("carol is still here");
    let report = node.discovery_report().expect("discovery ran");
    println!(
        "Carol discovered {} data items in {:.2} s over {} round(s):",
        report.entries,
        report.latency.as_secs_f64(),
        report.rounds
    );
    for entry in node
        .engine()
        .expect("node started")
        .discovery()
        .expect("session exists")
        .entries()
    {
        println!("  - {entry}");
    }
    let overhead = world.stats().bytes_sent as f64 / 1e3;
    println!("Total radio traffic: {overhead:.1} KB");
}

fn sample(kind: &str, value: f64, time: i64) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("ns", "env")
        .attr("type", kind)
        .attr("value", value)
        .attr("time", AttrValue::Time(time))
        .build()
}
