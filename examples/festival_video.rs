//! Festival video sharing — the paper's large-item scenario.
//!
//! Someone filmed the parade finale (a 6 MB clip = 24 chunks of 256 KB) and
//! chunks of it have spread across a crowd of 36 devices. A consumer at the
//! center retrieves the whole clip with two-phase PDR: CDI discovery, then
//! recursive chunk queries balanced across the nearest copies. The same
//! retrieval is then repeated with the multi-round MDR baseline for
//! comparison (Figs. 13/14 of the paper).
//!
//! Run with: `cargo run --release --example festival_video`

use bytes::Bytes;
use pds::core::{ChunkId, DataDescriptor, ItemName, PdsConfig, PdsNode};
use pds::mobility::grid;
use pds::sim::{SimConfig, SimRng, SimTime, World};

const CHUNK: usize = 256 * 1024;
const SIZE: usize = 6 * 1_000_000;

fn clip_descriptor() -> DataDescriptor {
    DataDescriptor::builder()
        .attr("ns", "events")
        .attr("type", "video")
        .attr("name", "parade-finale")
        .attr("total_chunks", (SIZE.div_ceil(CHUNK)) as i64)
        .build()
}

/// Builds the crowd with chunk copies scattered on everyone but the
/// consumer; returns (world, consumer id).
fn build_crowd(seed: u64, redundancy: usize) -> (World, pds::sim::NodeId) {
    let mut world = World::new(SimConfig::default(), seed);
    let mut rng = SimRng::new(seed ^ 0xfe57);
    let positions = grid::positions(6, 6, grid::SPACING_M);
    let center = grid::center_index(6, 6);
    let total_chunks = SIZE.div_ceil(CHUNK);

    // Decide who holds which chunk before creating nodes.
    let mut holders: Vec<Vec<u32>> = vec![Vec::new(); positions.len()];
    for c in 0..total_chunks as u32 {
        let mut owners: Vec<usize> = (0..positions.len()).filter(|&i| i != center).collect();
        rng.shuffle(&mut owners);
        for &o in owners.iter().take(redundancy) {
            holders[o].push(c);
        }
    }
    let mut consumer = None;
    for (i, pos) in positions.iter().enumerate() {
        let mut node = PdsNode::new(PdsConfig::default(), 500 + i as u64);
        for &c in &holders[i] {
            let size = if (c as usize + 1) * CHUNK <= SIZE {
                CHUNK
            } else {
                SIZE - c as usize * CHUNK
            };
            node = node.with_chunk(
                clip_descriptor(),
                ChunkId(c),
                Bytes::from(vec![c as u8; size]),
            );
        }
        let id = world.add_node(*pos, Box::new(node));
        if i == center {
            consumer = Some(id);
        }
    }
    (world, consumer.expect("center exists"))
}

fn run(label: &str, mdr: bool, redundancy: usize) {
    let (mut world, consumer) = build_crowd(11, redundancy);
    world.run_until(SimTime::from_secs_f64(0.2));
    let descriptor = clip_descriptor();
    world.with_app::<PdsNode, _>(consumer, move |node, ctx| {
        if mdr {
            node.start_mdr_retrieval(ctx, descriptor);
        } else {
            node.start_retrieval(ctx, descriptor);
        }
    });
    // Step until the retrieval finishes (or a generous deadline passes).
    loop {
        let done = world
            .app::<PdsNode>(consumer)
            .and_then(PdsNode::retrieval_report)
            .is_some_and(|r| r.finished_at.is_some());
        if done || world.now() > SimTime::from_secs_f64(400.0) {
            break;
        }
        let next = world.now() + pds::sim::SimDuration::from_millis(500);
        world.run_until(next);
    }
    let node = world.app::<PdsNode>(consumer).expect("alive");
    let report = node.retrieval_report().expect("retrieval ran");
    println!(
        "{label:10} redundancy={redundancy}: {}/{} chunks ({:.0}% recall) in {:>6.1} s, {:>6.1} MB on air",
        report.received_chunks,
        report.total_chunks,
        report.recall * 100.0,
        report.latency.as_secs_f64(),
        world.stats().bytes_sent as f64 / 1e6,
    );
    // The clip is fully reassembled in the consumer's store.
    let engine = node.engine().expect("started");
    let have = engine
        .store()
        .chunk_ids(&ItemName::new("parade-finale"))
        .len();
    assert_eq!(have as u32, report.received_chunks);
}

fn main() {
    println!(
        "Retrieving a {} MB clip ({} chunks):",
        SIZE / 1_000_000,
        SIZE.div_ceil(CHUNK)
    );
    for redundancy in [1, 3] {
        run("PDR", false, redundancy);
        run("MDR (base)", true, redundancy);
    }
    println!("\nPDR stays flat as copies multiply; MDR pays for duplicate replies.");
}
