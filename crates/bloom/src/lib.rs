//! Bloom filters for PDS redundancy detection.
//!
//! The Peer Data Discovery protocol ([PDS paper], §III-B-2 and §V-3) appends
//! a Bloom filter of already-received metadata entries to each discovery
//! query so that en-route nodes can *rewrite* responses and queries, pruning
//! entries the consumer already holds. Two properties of that usage shape
//! this crate:
//!
//! * **Sizing from targets** — the consumer knows how many entries it has
//!   received and picks the smallest filter achieving a target false-positive
//!   probability ([`BloomParams::optimal`]).
//! * **Per-round hash families** — each discovery round uses an independent
//!   hash family (a different seed), so an entry that is a false positive in
//!   one round is unlikely to remain one in the next; the residual
//!   false-positive probability decays geometrically with rounds
//!   ([`BloomFilter::with_round`]).
//!
//! # Examples
//!
//! ```
//! use pds_bloom::{BloomFilter, BloomParams};
//!
//! let params = BloomParams::optimal(1_000, 0.01);
//! let mut filter = BloomFilter::new(params);
//! filter.insert(b"no2-sample-42");
//! assert!(filter.contains(b"no2-sample-42"));
//! ```
//!
//! [PDS paper]: https://doi.org/10.1109/ICDCS.2017.26

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod filter;
mod hash;
mod params;

pub use filter::{BloomFilter, DecodeBloomError};
pub use hash::double_hash_indices;
pub use params::BloomParams;
