//! Hashing primitives for Bloom filters.
//!
//! Index derivation uses the classic Kirsch–Mitzenmacher double-hashing
//! scheme: two independent 64-bit digests `h1`, `h2` of the element generate
//! the family `g_i(x) = h1 + i * h2 (mod m)`, which preserves the asymptotic
//! false-positive behaviour of `k` independent hash functions.

/// A fast, seedable, non-cryptographic 64-bit hash (FNV-1a core with a
/// splitmix64 finalizer).
///
/// The `seed` selects an independent hash family; PDS rotates the seed every
/// discovery round so false positives do not persist across rounds.
#[must_use]
pub(crate) fn hash64(data: &[u8], seed: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut h = FNV_OFFSET ^ splitmix64(seed);
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix64(h)
}

/// The splitmix64 finalizer: a cheap bijective mixer with good avalanche.
#[must_use]
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Yields the `k` bit indices (in `0..m`) probed for `data` under the hash
/// family selected by `seed`.
///
/// Exposed publicly so tests and downstream diagnostics can reason about
/// probe positions without reimplementing the scheme.
///
/// # Panics
///
/// Panics if `m == 0`.
#[must_use]
pub fn double_hash_indices(data: &[u8], seed: u64, k: u32, m: u64) -> Vec<u64> {
    assert!(m > 0, "bloom filter must have at least one bit");
    let h1 = hash64(data, seed);
    // A distinct second digest; offsetting the seed keeps h2 independent of h1.
    let h2 = hash64(data, seed ^ 0x517c_c1b7_2722_0a95) | 1; // odd => full period
    (0..u64::from(k))
        .map(|i| h1.wrapping_add(i.wrapping_mul(h2)) % m)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_depends_on_seed() {
        let a = hash64(b"entry", 1);
        let b = hash64(b"entry", 2);
        assert_ne!(a, b);
    }

    #[test]
    fn hash64_depends_on_data() {
        assert_ne!(hash64(b"a", 7), hash64(b"b", 7));
    }

    #[test]
    fn hash64_is_deterministic() {
        assert_eq!(hash64(b"same", 42), hash64(b"same", 42));
    }

    #[test]
    fn splitmix_is_bijective_on_samples() {
        // Not a proof, but distinct inputs should stay distinct.
        let outs: Vec<u64> = (0u64..1000).map(splitmix64).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len());
    }

    #[test]
    fn indices_in_range_and_count() {
        let idx = double_hash_indices(b"x", 3, 7, 100);
        assert_eq!(idx.len(), 7);
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn indices_zero_bits_panics() {
        let _ = double_hash_indices(b"x", 0, 1, 0);
    }

    #[test]
    fn indices_change_with_seed() {
        let a = double_hash_indices(b"x", 1, 4, 1 << 20);
        let b = double_hash_indices(b"x", 2, 4, 1 << 20);
        assert_ne!(a, b);
    }
}
