//! The Bloom filter proper, including the wire encoding used to embed
//! filters in PDS query messages.

use crate::hash::double_hash_indices;
use crate::params::BloomParams;
use std::fmt;

/// A seedable Bloom filter over byte-string elements.
///
/// Guarantees **no false negatives**: after `insert(x)`, `contains(x)` is
/// always `true` for the same hash family (same seed). False positives occur
/// with the probability predicted by [`BloomParams::expected_fpp`].
///
/// # Examples
///
/// ```
/// use pds_bloom::{BloomFilter, BloomParams};
///
/// let mut seen = BloomFilter::with_round(BloomParams::optimal(100, 0.01), 3);
/// seen.insert(b"entry-1");
/// assert!(seen.contains(b"entry-1"));
/// assert!(!seen.contains(b"entry-2") || true); // may rarely be a false positive
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BloomFilter {
    params: BloomParams,
    seed: u64,
    bits: Vec<u8>,
    items: u64,
}

impl BloomFilter {
    /// Creates an empty filter with the round-0 hash family.
    #[must_use]
    pub fn new(params: BloomParams) -> Self {
        Self::with_round(params, 0)
    }

    /// Creates an empty filter whose hash family is derived from `round`.
    ///
    /// PDS builds a fresh filter per discovery round; distinct rounds use
    /// distinct hash families so a false positive in round *r* is independent
    /// of round *r+1* (§V-3 of the paper).
    #[must_use]
    pub fn with_round(params: BloomParams, round: u32) -> Self {
        Self {
            params,
            seed: 0x5eed_0000_0000_0000 ^ u64::from(round),
            bits: vec![0; params.byte_len()],
            items: 0,
        }
    }

    /// The sizing parameters this filter was built with.
    #[must_use]
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// The hash-family seed (derived from the discovery round).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of `insert` calls so far (counts duplicates).
    #[must_use]
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Whether no element has ever been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Inserts an element. Returns `true` if the element was *not* already
    /// reported present (i.e. at least one probed bit was newly set).
    pub fn insert(&mut self, element: &[u8]) -> bool {
        let mut newly_set = false;
        for idx in double_hash_indices(element, self.seed, self.params.hashes(), self.params.bits())
        {
            let (byte, mask) = Self::locate(idx);
            if self.bits[byte] & mask == 0 {
                self.bits[byte] |= mask;
                newly_set = true;
            }
        }
        self.items += 1;
        newly_set
    }

    /// Tests membership. Never returns `false` for an inserted element.
    #[must_use]
    pub fn contains(&self, element: &[u8]) -> bool {
        double_hash_indices(element, self.seed, self.params.hashes(), self.params.bits())
            .into_iter()
            .all(|idx| {
                let (byte, mask) = Self::locate(idx);
                self.bits[byte] & mask != 0
            })
    }

    /// Fraction of bits set — a saturation diagnostic. A healthy filter sits
    /// near 0.5 at design load.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|b| b.count_ones()).sum();
        f64::from(set) / self.params.bits() as f64
    }

    /// Serializes the filter for embedding in a query message.
    ///
    /// Layout: `bits:u64 | hashes:u32 | seed:u64 | items:u64 | bitarray`.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28 + self.bits.len());
        out.extend_from_slice(&self.params.bits().to_le_bytes());
        out.extend_from_slice(&self.params.hashes().to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.items.to_le_bytes());
        out.extend_from_slice(&self.bits);
        out
    }

    /// Deserializes a filter previously produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeBloomError`] if the buffer is truncated or the header
    /// is inconsistent with the payload length.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeBloomError> {
        if buf.len() < 28 {
            return Err(DecodeBloomError::Truncated);
        }
        let bits = u64::from_le_bytes(buf[0..8].try_into().expect("slice len 8"));
        let hashes = u32::from_le_bytes(buf[8..12].try_into().expect("slice len 4"));
        let seed = u64::from_le_bytes(buf[12..20].try_into().expect("slice len 8"));
        let items = u64::from_le_bytes(buf[20..28].try_into().expect("slice len 8"));
        if bits == 0 || hashes == 0 {
            return Err(DecodeBloomError::BadHeader);
        }
        let params = BloomParams::new(bits, hashes);
        let body = &buf[28..];
        if body.len() != params.byte_len() {
            return Err(DecodeBloomError::LengthMismatch {
                expected: params.byte_len(),
                actual: body.len(),
            });
        }
        Ok(Self {
            params,
            seed,
            bits: body.to_vec(),
            items,
        })
    }

    /// Size of the encoded form in bytes, for message-overhead accounting.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        28 + self.bits.len()
    }

    fn locate(idx: u64) -> (usize, u8) {
        (
            usize::try_from(idx / 8).expect("index fits"),
            1u8 << (idx % 8),
        )
    }
}

impl fmt::Debug for BloomFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BloomFilter")
            .field("bits", &self.params.bits())
            .field("hashes", &self.params.hashes())
            .field("seed", &self.seed)
            .field("items", &self.items)
            .field("fill_ratio", &self.fill_ratio())
            .finish()
    }
}

/// Error decoding a serialized [`BloomFilter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeBloomError {
    /// The buffer was shorter than the fixed header.
    Truncated,
    /// The header contained a zero bit or hash count.
    BadHeader,
    /// The payload length disagreed with the header's bit count.
    LengthMismatch {
        /// Byte length implied by the header.
        expected: usize,
        /// Byte length actually present.
        actual: usize,
    },
}

impl fmt::Display for DecodeBloomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "bloom filter buffer shorter than header"),
            Self::BadHeader => write!(f, "bloom filter header has zero bits or hashes"),
            Self::LengthMismatch { expected, actual } => write!(
                f,
                "bloom filter payload length {actual} does not match header ({expected})"
            ),
        }
    }
}

impl std::error::Error for DecodeBloomError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter(n: usize) -> BloomFilter {
        BloomFilter::new(BloomParams::optimal(n, 0.01))
    }

    #[test]
    fn no_false_negatives_small() {
        let mut f = filter(100);
        for i in 0..100u32 {
            f.insert(&i.to_le_bytes());
        }
        for i in 0..100u32 {
            assert!(f.contains(&i.to_le_bytes()), "lost element {i}");
        }
    }

    #[test]
    fn false_positive_rate_near_design() {
        let mut f = filter(2000);
        for i in 0..2000u32 {
            f.insert(format!("in-{i}").as_bytes());
        }
        let fp = (0..20_000u32)
            .filter(|i| f.contains(format!("out-{i}").as_bytes()))
            .count();
        let rate = fp as f64 / 20_000.0;
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    #[test]
    fn empty_filter_matches_nothing_mostly() {
        let f = filter(100);
        assert!(f.is_empty());
        assert!(!f.contains(b"anything"));
    }

    #[test]
    fn insert_reports_novelty() {
        let mut f = filter(100);
        assert!(f.insert(b"x"));
        assert!(!f.insert(b"x"), "re-inserting must not set new bits");
        assert_eq!(f.items(), 2);
    }

    #[test]
    fn rounds_use_distinct_hash_families() {
        let params = BloomParams::optimal(100, 0.01);
        let a = BloomFilter::with_round(params, 0);
        let b = BloomFilter::with_round(params, 1);
        assert_ne!(a.seed(), b.seed());
    }

    #[test]
    fn cross_round_false_positives_decay() {
        // An element that happens to be a false positive in round r should
        // (almost always) not be one in round r+1.
        let params = BloomParams::new(256, 4); // deliberately small => many FPs
        let mut r0 = BloomFilter::with_round(params, 0);
        let mut r1 = BloomFilter::with_round(params, 1);
        for i in 0..80u32 {
            r0.insert(&i.to_le_bytes());
            r1.insert(&i.to_le_bytes());
        }
        let fp_both = (1000..6000u32)
            .filter(|i| r0.contains(&i.to_le_bytes()) && r1.contains(&i.to_le_bytes()))
            .count() as f64
            / 5000.0;
        let fp_r0 = (1000..6000u32)
            .filter(|i| r0.contains(&i.to_le_bytes()))
            .count() as f64
            / 5000.0;
        assert!(
            fp_both < fp_r0,
            "joint FP rate {fp_both} should be below single-round {fp_r0}"
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut f = BloomFilter::with_round(BloomParams::optimal(50, 0.02), 7);
        for i in 0..50u32 {
            f.insert(&i.to_le_bytes());
        }
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        let g = BloomFilter::decode(&bytes).expect("roundtrip");
        assert_eq!(f, g);
        for i in 0..50u32 {
            assert!(g.contains(&i.to_le_bytes()));
        }
    }

    #[test]
    fn decode_rejects_truncated() {
        assert_eq!(
            BloomFilter::decode(&[0u8; 10]),
            Err(DecodeBloomError::Truncated)
        );
    }

    #[test]
    fn decode_rejects_zero_header() {
        let buf = [0u8; 28];
        assert_eq!(BloomFilter::decode(&buf), Err(DecodeBloomError::BadHeader));
    }

    #[test]
    fn decode_rejects_length_mismatch() {
        let f = filter(10);
        let mut bytes = f.encode();
        bytes.pop();
        assert!(matches!(
            BloomFilter::decode(&bytes),
            Err(DecodeBloomError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn fill_ratio_grows() {
        let mut f = filter(500);
        let before = f.fill_ratio();
        for i in 0..500u32 {
            f.insert(&i.to_le_bytes());
        }
        assert!(f.fill_ratio() > before);
        assert!(f.fill_ratio() < 0.75, "overfull at design load");
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", filter(10));
        assert!(s.contains("BloomFilter"));
    }
}
