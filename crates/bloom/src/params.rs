//! Bloom filter sizing.

/// Sizing parameters for a [`BloomFilter`](crate::BloomFilter).
///
/// The PDS consumer computes these from the number of metadata entries it has
/// already received and a target false-positive probability (the paper uses
/// `p < 0.01`, §V-3).
///
/// # Examples
///
/// ```
/// use pds_bloom::BloomParams;
///
/// let p = BloomParams::optimal(10_000, 0.01);
/// assert!(p.bits() >= 10_000); // ~9.6 bits per element at 1 % FPR
/// assert_eq!(p.hashes(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BloomParams {
    bits: u64,
    hashes: u32,
}

impl BloomParams {
    /// Creates parameters from an explicit bit count and hash count.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `hashes == 0`.
    #[must_use]
    pub fn new(bits: u64, hashes: u32) -> Self {
        assert!(bits > 0, "bloom filter must have at least one bit");
        assert!(hashes > 0, "bloom filter must use at least one hash");
        Self { bits, hashes }
    }

    /// Computes the smallest parameters achieving false-positive probability
    /// `fpp` for an expected `items` insertions, using the standard formulas
    /// `m = -n ln p / (ln 2)^2` and `k = (m/n) ln 2`.
    ///
    /// `items == 0` yields a minimal 64-bit filter (a consumer that has
    /// received nothing sends an empty filter that matches nothing).
    ///
    /// # Panics
    ///
    /// Panics if `fpp` is not strictly between 0 and 1.
    #[must_use]
    pub fn optimal(items: usize, fpp: f64) -> Self {
        assert!(
            fpp > 0.0 && fpp < 1.0,
            "false positive rate must be in (0, 1)"
        );
        if items == 0 {
            return Self::new(64, 1);
        }
        let n = items as f64;
        let ln2 = core::f64::consts::LN_2;
        let m = (-n * fpp.ln() / (ln2 * ln2)).ceil();
        let bits = (m as u64).max(64);
        let k = ((bits as f64 / n) * ln2).round().max(1.0);
        Self::new(bits, k as u32)
    }

    /// Number of bits in the filter.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Number of hash probes per element.
    #[must_use]
    pub fn hashes(&self) -> u32 {
        self.hashes
    }

    /// Number of bytes the bit array occupies.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        usize::try_from(self.bits.div_ceil(8)).expect("filter fits in memory")
    }

    /// Predicted false-positive probability after `items` insertions:
    /// `(1 - e^{-kn/m})^k`.
    #[must_use]
    pub fn expected_fpp(&self, items: usize) -> f64 {
        let k = f64::from(self.hashes);
        let n = items as f64;
        let m = self.bits as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }
}

impl Default for BloomParams {
    /// Defaults sized for ~1000 elements at 1 % false positives — a typical
    /// single-round metadata haul in the paper's normal-load scenarios.
    fn default() -> Self {
        Self::optimal(1000, 0.01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_matches_textbook_values() {
        // 10 000 items at 1 % → ~95 851 bits, 7 hashes.
        let p = BloomParams::optimal(10_000, 0.01);
        assert!((95_000..97_000).contains(&p.bits()), "bits = {}", p.bits());
        assert_eq!(p.hashes(), 7);
    }

    #[test]
    fn optimal_zero_items_is_minimal() {
        let p = BloomParams::optimal(0, 0.01);
        assert_eq!(p.bits(), 64);
        assert_eq!(p.hashes(), 1);
    }

    #[test]
    fn expected_fpp_close_to_target() {
        let p = BloomParams::optimal(5_000, 0.01);
        let fpp = p.expected_fpp(5_000);
        assert!(fpp <= 0.012, "fpp = {fpp}");
    }

    #[test]
    fn byte_len_rounds_up() {
        assert_eq!(BloomParams::new(9, 1).byte_len(), 2);
        assert_eq!(BloomParams::new(8, 1).byte_len(), 1);
    }

    #[test]
    #[should_panic(expected = "false positive rate")]
    fn optimal_rejects_bad_fpp() {
        let _ = BloomParams::optimal(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one hash")]
    fn new_rejects_zero_hashes() {
        let _ = BloomParams::new(10, 0);
    }

    #[test]
    fn default_is_reasonable() {
        let p = BloomParams::default();
        assert!(p.bits() > 0 && p.hashes() > 0);
    }
}
