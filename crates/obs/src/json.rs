//! Hand-rolled JSONL codec for trace events.
//!
//! The workspace is offline (no serde); the schema is deliberately flat —
//! one JSON object per line, values restricted to unsigned integers,
//! booleans and bare identifier strings — so a ~150-line parser covers it
//! exactly. Field order in serialized output is fixed (`t`, `node`,
//! `phase`, `kind`, then payload fields in declaration order), which makes
//! traces byte-comparable with `diff(1)` as well as with
//! [`crate::analysis::first_divergence`].

use crate::event::{Phase, TraceEvent, TraceKind};
use std::io::BufRead;
use std::path::Path;

/// A parse failure, with the offending line number when known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 = unknown).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(message: impl Into<String>) -> ParseError {
    ParseError {
        line: 0,
        message: message.into(),
    }
}

/// Serializes one event as a single-line JSON object (no trailing newline).
#[must_use]
pub fn to_json(ev: &TraceEvent) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"t\":");
    push_u64(&mut s, ev.at_us);
    s.push_str(",\"node\":");
    push_u64(&mut s, u64::from(ev.node));
    s.push_str(",\"phase\":\"");
    s.push_str(ev.phase.name());
    s.push_str("\",\"kind\":\"");
    s.push_str(ev.kind.name());
    s.push('"');
    let mut field = |name: &str, v: u64| {
        s.push_str(",\"");
        s.push_str(name);
        s.push_str("\":");
        push_u64(&mut s, v);
    };
    match &ev.kind {
        TraceKind::NodeStart | TraceKind::BucketDrain | TraceKind::Sweep => {}
        TraceKind::MacTry { deferred } => {
            s.push_str(",\"deferred\":");
            s.push_str(if *deferred { "true" } else { "false" });
        }
        TraceKind::TxEnd { tx }
        | TraceKind::FrameCollided { tx }
        | TraceKind::FrameLostRandom { tx }
        | TraceKind::FrameHalfDuplex { tx }
        | TraceKind::FaultCut { tx }
        | TraceKind::FaultDropped { tx }
        | TraceKind::FaultDelayed { tx }
        | TraceKind::FaultDuplicated { tx } => field("tx", *tx),
        TraceKind::FaultDeliver { fault } => field("fault", *fault),
        TraceKind::TimerFired { timer } => field("timer", *timer),
        TraceKind::Control { ctrl } => field("ctrl", *ctrl),
        TraceKind::TxStart {
            tx,
            origin,
            seq,
            bytes,
            class,
        } => {
            field("tx", *tx);
            field("origin", *origin);
            field("seq", *seq);
            field("bytes", *bytes);
            field("class", *class);
        }
        TraceKind::FrameDelivered { tx, bytes } => {
            field("tx", *tx);
            field("bytes", *bytes);
        }
        TraceKind::FrameDroppedOs { bytes } | TraceKind::QueueDepth { bytes } => {
            field("bytes", *bytes);
        }
        TraceKind::MessageSent { seq, bytes, class } => {
            field("seq", *seq);
            field("bytes", *bytes);
            field("class", *class);
        }
        TraceKind::MessageDelivered {
            origin,
            seq,
            bytes,
            overheard,
        } => {
            field("origin", *origin);
            field("seq", *seq);
            field("bytes", *bytes);
            s.push_str(",\"overheard\":");
            s.push_str(if *overheard { "true" } else { "false" });
        }
        TraceKind::MessageAcked { seq } | TraceKind::MessageFailed { seq } => field("seq", *seq),
        TraceKind::Retransmit { seq, frames } => {
            field("seq", *seq);
            field("frames", *frames);
        }
        TraceKind::AckSent { origin, seq, bytes } => {
            field("origin", *origin);
            field("seq", *seq);
            field("bytes", *bytes);
        }
        TraceKind::QuerySent {
            query,
            session,
            seq,
        } => {
            field("query", *query);
            field("session", *session);
            field("seq", *seq);
        }
        TraceKind::QueryReceived { query, from } => {
            field("query", *query);
            field("from", *from);
        }
        TraceKind::ResponseSent {
            response,
            query,
            seq,
        } => {
            field("response", *response);
            field("query", *query);
            field("seq", *seq);
        }
        TraceKind::ResponseReceived { response, from } => {
            field("response", *response);
            field("from", *from);
        }
        TraceKind::SessionStarted { session } => field("session", *session),
        TraceKind::SessionFinished {
            session,
            delay_us,
            rounds,
            items,
        } => {
            field("session", *session);
            field("delay_us", *delay_us);
            field("rounds", *rounds);
            field("items", *items);
        }
    }
    s.push('}');
    s
}

fn push_u64(s: &mut String, v: u64) {
    // itoa without allocation churn: u64::MAX is 20 digits.
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    s.push_str(std::str::from_utf8(&buf[i..]).expect("digits"));
}

/// A parsed scalar value from a flat trace object.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Num(u64),
    Bool(bool),
    Str(String),
}

/// Parses one flat JSON object into key/value pairs. Order-preserving is
/// unnecessary; keys are looked up by name afterwards.
fn parse_object(s: &str) -> Result<Vec<(String, Value)>, ParseError> {
    let bytes = s.trim().as_bytes();
    let mut pos = 0usize;
    let mut fields = Vec::new();
    let eat = |pos: &mut usize, b: u8| -> Result<(), ParseError> {
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(err(format!("expected '{}' at byte {}", b as char, *pos)))
        }
    };
    let skip_ws = |pos: &mut usize| {
        while matches!(bytes.get(*pos), Some(b' ' | b'\t')) {
            *pos += 1;
        }
    };
    let parse_string = |pos: &mut usize| -> Result<String, ParseError> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(format!("expected string at byte {}", *pos)));
        }
        *pos += 1;
        let start = *pos;
        while let Some(&b) = bytes.get(*pos) {
            match b {
                b'"' => {
                    let out = std::str::from_utf8(&bytes[start..*pos])
                        .map_err(|_| err("invalid utf-8 in string"))?
                        .to_string();
                    *pos += 1;
                    return Ok(out);
                }
                // The schema only emits bare identifiers; escapes mean a
                // foreign or corrupted file.
                b'\\' => return Err(err("escape sequences are not part of the trace schema")),
                _ => *pos += 1,
            }
        }
        Err(err("unterminated string"))
    };
    eat(&mut pos, b'{')?;
    skip_ws(&mut pos);
    if bytes.get(pos) == Some(&b'}') {
        return Ok(fields);
    }
    loop {
        skip_ws(&mut pos);
        let key = parse_string(&mut pos)?;
        skip_ws(&mut pos);
        eat(&mut pos, b':')?;
        skip_ws(&mut pos);
        let value = match bytes.get(pos) {
            Some(b'"') => Value::Str(parse_string(&mut pos)?),
            Some(b't') => {
                if bytes[pos..].starts_with(b"true") {
                    pos += 4;
                    Value::Bool(true)
                } else {
                    return Err(err(format!("bad literal at byte {pos}")));
                }
            }
            Some(b'f') => {
                if bytes[pos..].starts_with(b"false") {
                    pos += 5;
                    Value::Bool(false)
                } else {
                    return Err(err(format!("bad literal at byte {pos}")));
                }
            }
            Some(b'0'..=b'9') => {
                let start = pos;
                while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
                    pos += 1;
                }
                let digits = std::str::from_utf8(&bytes[start..pos]).expect("digits");
                Value::Num(
                    digits
                        .parse::<u64>()
                        .map_err(|_| err(format!("integer out of range: {digits}")))?,
                )
            }
            _ => {
                return Err(err(format!(
                    "unsupported value at byte {pos} (schema allows unsigned ints, bools, strings)"
                )))
            }
        };
        fields.push((key, value));
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {
                pos += 1;
                skip_ws(&mut pos);
                if pos != bytes.len() {
                    return Err(err("trailing garbage after object"));
                }
                return Ok(fields);
            }
            _ => return Err(err(format!("expected ',' or '}}' at byte {pos}"))),
        }
    }
}

struct Fields(Vec<(String, Value)>);

impl Fields {
    fn num(&self, key: &str) -> Result<u64, ParseError> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, Value::Num(n))) => Ok(*n),
            Some(_) => Err(err(format!("field '{key}' is not an integer"))),
            None => Err(err(format!("missing field '{key}'"))),
        }
    }

    fn boolean(&self, key: &str) -> Result<bool, ParseError> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, Value::Bool(b))) => Ok(*b),
            Some(_) => Err(err(format!("field '{key}' is not a bool"))),
            None => Err(err(format!("missing field '{key}'"))),
        }
    }

    fn str(&self, key: &str) -> Result<&str, ParseError> {
        match self.0.iter().find(|(k, _)| k == key) {
            Some((_, Value::Str(s))) => Ok(s),
            Some(_) => Err(err(format!("field '{key}' is not a string"))),
            None => Err(err(format!("missing field '{key}'"))),
        }
    }
}

/// Parses one JSONL line back into a [`TraceEvent`].
///
/// # Errors
///
/// Returns a [`ParseError`] when the line is not a flat object of the trace
/// schema or required fields are missing/mistyped.
pub fn parse_line(line: &str) -> Result<TraceEvent, ParseError> {
    let f = Fields(parse_object(line)?);
    let at_us = f.num("t")?;
    let node_raw = f.num("node")?;
    let node = u32::try_from(node_raw).map_err(|_| err("node id exceeds u32"))?;
    let phase = Phase::parse(f.str("phase")?)
        .ok_or_else(|| err(format!("unknown phase '{}'", f.str("phase").unwrap_or(""))))?;
    let kind = match f.str("kind")? {
        "node_start" => TraceKind::NodeStart,
        "mac_try" => TraceKind::MacTry {
            deferred: f.boolean("deferred")?,
        },
        "tx_end" => TraceKind::TxEnd { tx: f.num("tx")? },
        "bucket_drain" => TraceKind::BucketDrain,
        "timer_fired" => TraceKind::TimerFired {
            timer: f.num("timer")?,
        },
        "control" => TraceKind::Control {
            ctrl: f.num("ctrl")?,
        },
        "sweep" => TraceKind::Sweep,
        "fault_deliver" => TraceKind::FaultDeliver {
            fault: f.num("fault")?,
        },
        "fault_cut" => TraceKind::FaultCut { tx: f.num("tx")? },
        "fault_dropped" => TraceKind::FaultDropped { tx: f.num("tx")? },
        "fault_delayed" => TraceKind::FaultDelayed { tx: f.num("tx")? },
        "fault_duplicated" => TraceKind::FaultDuplicated { tx: f.num("tx")? },
        "tx_start" => TraceKind::TxStart {
            tx: f.num("tx")?,
            origin: f.num("origin")?,
            seq: f.num("seq")?,
            bytes: f.num("bytes")?,
            class: f.num("class")?,
        },
        "frame_delivered" => TraceKind::FrameDelivered {
            tx: f.num("tx")?,
            bytes: f.num("bytes")?,
        },
        "frame_collided" => TraceKind::FrameCollided { tx: f.num("tx")? },
        "frame_lost_random" => TraceKind::FrameLostRandom { tx: f.num("tx")? },
        "frame_half_duplex" => TraceKind::FrameHalfDuplex { tx: f.num("tx")? },
        "frame_dropped_os" => TraceKind::FrameDroppedOs {
            bytes: f.num("bytes")?,
        },
        "queue_depth" => TraceKind::QueueDepth {
            bytes: f.num("bytes")?,
        },
        "message_sent" => TraceKind::MessageSent {
            seq: f.num("seq")?,
            bytes: f.num("bytes")?,
            class: f.num("class")?,
        },
        "message_delivered" => TraceKind::MessageDelivered {
            origin: f.num("origin")?,
            seq: f.num("seq")?,
            bytes: f.num("bytes")?,
            overheard: f.boolean("overheard")?,
        },
        "message_acked" => TraceKind::MessageAcked { seq: f.num("seq")? },
        "message_failed" => TraceKind::MessageFailed { seq: f.num("seq")? },
        "retransmit" => TraceKind::Retransmit {
            seq: f.num("seq")?,
            frames: f.num("frames")?,
        },
        "ack_sent" => TraceKind::AckSent {
            origin: f.num("origin")?,
            seq: f.num("seq")?,
            bytes: f.num("bytes")?,
        },
        "query_sent" => TraceKind::QuerySent {
            query: f.num("query")?,
            session: f.num("session")?,
            seq: f.num("seq")?,
        },
        "query_received" => TraceKind::QueryReceived {
            query: f.num("query")?,
            from: f.num("from")?,
        },
        "response_sent" => TraceKind::ResponseSent {
            response: f.num("response")?,
            query: f.num("query")?,
            seq: f.num("seq")?,
        },
        "response_received" => TraceKind::ResponseReceived {
            response: f.num("response")?,
            from: f.num("from")?,
        },
        "session_started" => TraceKind::SessionStarted {
            session: f.num("session")?,
        },
        "session_finished" => TraceKind::SessionFinished {
            session: f.num("session")?,
            delay_us: f.num("delay_us")?,
            rounds: f.num("rounds")?,
            items: f.num("items")?,
        },
        other => return Err(err(format!("unknown event kind '{other}'"))),
    };
    Ok(TraceEvent {
        at_us,
        node,
        phase,
        kind,
    })
}

/// Reads a whole JSONL trace from a reader. Blank lines are skipped.
///
/// # Errors
///
/// Returns the first I/O or parse error, annotated with its line number.
pub fn read_trace<R: BufRead>(reader: R) -> Result<Vec<TraceEvent>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| ParseError {
            line: i + 1,
            message: format!("read error: {e}"),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_line(&line).map_err(|mut e| {
            e.line = i + 1;
            e
        })?);
    }
    Ok(out)
}

/// Reads a JSONL trace file.
///
/// # Errors
///
/// Returns a [`ParseError`] if the file cannot be opened or any line fails
/// to parse.
pub fn read_trace_file(path: impl AsRef<Path>) -> Result<Vec<TraceEvent>, ParseError> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| err(format!("cannot open {}: {e}", path.as_ref().display())))?;
    read_trace(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One instance of every kind, exercising every payload field.
    pub(crate) fn one_of_each() -> Vec<TraceEvent> {
        let kinds = vec![
            TraceKind::NodeStart,
            TraceKind::MacTry { deferred: true },
            TraceKind::MacTry { deferred: false },
            TraceKind::TxEnd { tx: 7 },
            TraceKind::BucketDrain,
            TraceKind::TimerFired { timer: 11 },
            TraceKind::Control { ctrl: 2 },
            TraceKind::Sweep,
            TraceKind::TxStart {
                tx: 3,
                origin: 9,
                seq: 4,
                bytes: 1466,
                class: 1,
            },
            TraceKind::FrameDelivered { tx: 3, bytes: 1466 },
            TraceKind::FrameCollided { tx: 4 },
            TraceKind::FrameLostRandom { tx: 5 },
            TraceKind::FrameHalfDuplex { tx: 6 },
            TraceKind::FrameDroppedOs { bytes: 999 },
            TraceKind::QueueDepth { bytes: 4096 },
            TraceKind::FaultDeliver { fault: 14 },
            TraceKind::FaultCut { tx: 15 },
            TraceKind::FaultDropped { tx: 16 },
            TraceKind::FaultDelayed { tx: 17 },
            TraceKind::FaultDuplicated { tx: 18 },
            TraceKind::MessageSent {
                seq: 1,
                bytes: 540,
                class: 2,
            },
            TraceKind::MessageDelivered {
                origin: 9,
                seq: 1,
                bytes: 540,
                overheard: true,
            },
            TraceKind::MessageAcked { seq: 1 },
            TraceKind::MessageFailed { seq: 2 },
            TraceKind::Retransmit { seq: 2, frames: 3 },
            TraceKind::AckSent {
                origin: 9,
                seq: 1,
                bytes: 40,
            },
            TraceKind::QuerySent {
                query: u64::MAX,
                session: 7,
                seq: 21,
            },
            TraceKind::QuerySent {
                query: 51,
                session: 0,
                seq: 22,
            },
            TraceKind::QueryReceived {
                query: 88,
                from: 12,
            },
            TraceKind::ResponseSent {
                response: 0,
                query: 88,
                seq: 23,
            },
            TraceKind::ResponseReceived {
                response: 77,
                from: 3,
            },
            TraceKind::SessionStarted { session: 7 },
            TraceKind::SessionFinished {
                session: 7,
                delay_us: 1_250_000,
                rounds: 3,
                items: 45,
            },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| TraceEvent {
                at_us: i as u64 * 1000,
                node: if i % 5 == 0 { u32::MAX } else { i as u32 },
                phase: Phase::ALL[i % Phase::ALL.len()],
                kind,
            })
            .collect()
    }

    #[test]
    fn every_kind_round_trips() {
        for ev in one_of_each() {
            let line = to_json(&ev);
            let back = parse_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, ev, "round trip of {line}");
        }
    }

    #[test]
    fn whole_trace_round_trips_through_reader() {
        let events = one_of_each();
        let mut buf = String::new();
        for ev in &events {
            buf.push_str(&to_json(ev));
            buf.push('\n');
        }
        buf.push('\n'); // trailing blank line is tolerated
        let back = read_trace(buf.as_bytes()).expect("parse");
        assert_eq!(back, events);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"t\":1}").is_err(), "missing fields");
        assert!(
            parse_line("{\"t\":1,\"node\":0,\"phase\":\"kernel\",\"kind\":\"nope\"}").is_err(),
            "unknown kind"
        );
        assert!(
            parse_line("{\"t\":-5,\"node\":0,\"phase\":\"kernel\",\"kind\":\"sweep\"}").is_err(),
            "negative numbers are outside the schema"
        );
        assert!(
            parse_line("{\"t\":1,\"node\":0,\"phase\":\"kernel\",\"kind\":\"sweep\"}x").is_err(),
            "trailing garbage"
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "{\"t\":1,\"node\":0,\"phase\":\"kernel\",\"kind\":\"sweep\"}\nbroken\n";
        let e = read_trace(text.as_bytes()).expect_err("second line is broken");
        assert_eq!(e.line, 2);
    }

    /// Pinned wire format for the session/flight-recorder event kinds.
    /// Any change to these lines is a deliberate schema migration: update
    /// the fixture AND bump DESIGN.md §14's schema note in the same PR.
    #[test]
    fn session_kind_wire_format_is_pinned() {
        let cases: [(TraceEvent, &str); 5] = [
            (
                TraceEvent {
                    at_us: 500_000,
                    node: 2,
                    phase: Phase::Pdr,
                    kind: TraceKind::SessionStarted { session: 9 },
                },
                "{\"t\":500000,\"node\":2,\"phase\":\"pdr\",\"kind\":\"session_started\",\"session\":9}",
            ),
            (
                TraceEvent {
                    at_us: 740_250,
                    node: 2,
                    phase: Phase::Pdr,
                    kind: TraceKind::SessionFinished {
                        session: 9,
                        delay_us: 240_250,
                        rounds: 2,
                        items: 3,
                    },
                },
                "{\"t\":740250,\"node\":2,\"phase\":\"pdr\",\"kind\":\"session_finished\",\"session\":9,\"delay_us\":240250,\"rounds\":2,\"items\":3}",
            ),
            (
                TraceEvent {
                    at_us: 501_000,
                    node: 2,
                    phase: Phase::Pdr,
                    kind: TraceKind::QuerySent {
                        query: 18_446_744_073_709_551_615,
                        session: 9,
                        seq: 12,
                    },
                },
                "{\"t\":501000,\"node\":2,\"phase\":\"pdr\",\"kind\":\"query_sent\",\"query\":18446744073709551615,\"session\":9,\"seq\":12}",
            ),
            (
                TraceEvent {
                    at_us: 502_000,
                    node: 5,
                    phase: Phase::Pdr,
                    kind: TraceKind::ResponseSent {
                        response: 77,
                        query: 88,
                        seq: 13,
                    },
                },
                "{\"t\":502000,\"node\":5,\"phase\":\"pdr\",\"kind\":\"response_sent\",\"response\":77,\"query\":88,\"seq\":13}",
            ),
            (
                TraceEvent {
                    at_us: 502_100,
                    node: 5,
                    phase: Phase::Radio,
                    kind: TraceKind::TxStart {
                        tx: 41,
                        origin: 5,
                        seq: 13,
                        bytes: 1466,
                        class: 2,
                    },
                },
                "{\"t\":502100,\"node\":5,\"phase\":\"radio\",\"kind\":\"tx_start\",\"tx\":41,\"origin\":5,\"seq\":13,\"bytes\":1466,\"class\":2}",
            ),
        ];
        for (ev, want) in &cases {
            assert_eq!(&to_json(ev), want);
            assert_eq!(&parse_line(want).expect("fixture parses"), ev);
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_phase() -> impl Strategy<Value = Phase> {
            any::<u64>().prop_map(|i| Phase::ALL[(i % Phase::ALL.len() as u64) as usize])
        }

        /// Every kind, with payload fields drawn over the full u64/bool
        /// range, so the codec's integer and bool paths are exhaustively
        /// fuzzed — not just the hand-picked values in `one_of_each`.
        fn arb_kind() -> impl Strategy<Value = TraceKind> {
            let n = any::<u64>;
            prop_oneof![
                Just(TraceKind::NodeStart),
                any::<bool>().prop_map(|deferred| TraceKind::MacTry { deferred }),
                n().prop_map(|tx| TraceKind::TxEnd { tx }),
                Just(TraceKind::BucketDrain),
                n().prop_map(|timer| TraceKind::TimerFired { timer }),
                n().prop_map(|ctrl| TraceKind::Control { ctrl }),
                Just(TraceKind::Sweep),
                n().prop_map(|fault| TraceKind::FaultDeliver { fault }),
                n().prop_map(|tx| TraceKind::FaultCut { tx }),
                n().prop_map(|tx| TraceKind::FaultDropped { tx }),
                n().prop_map(|tx| TraceKind::FaultDelayed { tx }),
                n().prop_map(|tx| TraceKind::FaultDuplicated { tx }),
                (n(), n(), n(), n(), n()).prop_map(|(tx, origin, seq, bytes, class)| {
                    TraceKind::TxStart {
                        tx,
                        origin,
                        seq,
                        bytes,
                        class,
                    }
                }),
                (n(), n()).prop_map(|(tx, bytes)| TraceKind::FrameDelivered { tx, bytes }),
                n().prop_map(|tx| TraceKind::FrameCollided { tx }),
                n().prop_map(|tx| TraceKind::FrameLostRandom { tx }),
                n().prop_map(|tx| TraceKind::FrameHalfDuplex { tx }),
                n().prop_map(|bytes| TraceKind::FrameDroppedOs { bytes }),
                n().prop_map(|bytes| TraceKind::QueueDepth { bytes }),
                (n(), n(), n()).prop_map(|(seq, bytes, class)| TraceKind::MessageSent {
                    seq,
                    bytes,
                    class
                }),
                (n(), n(), n(), any::<bool>()).prop_map(|(origin, seq, bytes, overheard)| {
                    TraceKind::MessageDelivered {
                        origin,
                        seq,
                        bytes,
                        overheard,
                    }
                }),
                n().prop_map(|seq| TraceKind::MessageAcked { seq }),
                n().prop_map(|seq| TraceKind::MessageFailed { seq }),
                (n(), n()).prop_map(|(seq, frames)| TraceKind::Retransmit { seq, frames }),
                (n(), n(), n()).prop_map(|(origin, seq, bytes)| TraceKind::AckSent {
                    origin,
                    seq,
                    bytes
                }),
                (n(), n(), n()).prop_map(|(query, session, seq)| TraceKind::QuerySent {
                    query,
                    session,
                    seq
                }),
                (n(), n()).prop_map(|(query, from)| TraceKind::QueryReceived { query, from }),
                (n(), n(), n()).prop_map(|(response, query, seq)| TraceKind::ResponseSent {
                    response,
                    query,
                    seq
                }),
                (n(), n())
                    .prop_map(|(response, from)| TraceKind::ResponseReceived { response, from }),
                n().prop_map(|session| TraceKind::SessionStarted { session }),
                (n(), n(), n(), n()).prop_map(|(session, delay_us, rounds, items)| {
                    TraceKind::SessionFinished {
                        session,
                        delay_us,
                        rounds,
                        items,
                    }
                }),
            ]
        }

        proptest! {
            #[test]
            fn any_event_round_trips(
                at_us in any::<u64>(),
                node in any::<u32>(),
                phase in arb_phase(),
                kind in arb_kind(),
            ) {
                let ev = TraceEvent { at_us, node, phase, kind };
                let line = to_json(&ev);
                let back = parse_line(&line).expect("round trip parses");
                prop_assert_eq!(back, ev);
            }
        }
    }
}
