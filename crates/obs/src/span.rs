//! Causal session spans and critical-path delay decomposition.
//!
//! A *session* is one consumer-driven protocol exchange — a PDD discovery
//! round set, a PDR retrieval (CDI collection + chunk queries), or an MDR
//! baseline retrieval — bracketed by `SessionStarted` / `SessionFinished`
//! on the consumer node. This module rebuilds each session as a
//! **cross-node span**: starting from the consumer's correlation id
//! `(node, session)`, it follows the causal joins the emission sites
//! provide —
//!
//! - `QuerySent.session` ties a query id to the session (relays forward
//!   the *same* query id, so the flood joins for free);
//! - `ResponseSent.query` ties a response id back to the query it answers
//!   (chunk-response relays preserve the response id);
//! - `QuerySent.seq` / `ResponseSent.seq` tie protocol messages to their
//!   transport sequence numbers, which `TxStart.origin`/`.seq` carry down
//!   to every radio frame, linking `TxEnd`, per-receiver loss events and
//!   fault injections via the transmission id.
//!
//! The result is the full set of events — across every participating node
//! and layer — that belong to one retrieval, ordered by virtual time.
//!
//! # Critical-path decomposition
//!
//! [`critical_path`] walks a session's merged event chain and attributes
//! every inter-event gap to exactly one of five named components, so the
//! components **sum exactly** to the end-to-end session delay (this is
//! asserted by an integration test on a pinned seed):
//!
//! | component      | gap rule                                            |
//! |----------------|-----------------------------------------------------|
//! | retransmission | the *next* event is a retransmit or message failure |
//! |                | (the gap is the ack-timeout wait)                   |
//! | processing     | the *next* event is a protocol-level reception      |
//! |                | (the receiving stack is working)                    |
//! | airtime        | previous event is `TxStart` (frame on the air)      |
//! | contention     | previous event is `MacTry` (CSMA defer/backoff)     |
//! | queueing       | previous event handed data to transport/MAC         |
//! |                | (`*Sent`, `Retransmit`, mid-message `TxEnd`)        |
//! | processing     | everything else (deliveries, receptions, timers —   |
//! |                | a node is thinking or the protocol is waiting)      |
//!
//! `MacTry` carries no correlation id (the MAC doesn't know which message
//! a slot belongs to), so MAC attempts are joined by participant node and
//! session time window — exact for the paper's scenarios where a node
//! serves one session at a time, and a documented approximation when
//! concurrent sessions share a radio.

use crate::event::{Phase, TraceEvent, TraceKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Where a slice of session delay went. Order is render order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DelayComponent {
    /// Node-local protocol work and protocol-level waiting (engine steps,
    /// response assembly, inter-round gaps).
    Processing,
    /// Time between handing a message to transport/MAC and its frames
    /// reaching the air (leaky-bucket pacing, fragment serialization).
    Queueing,
    /// CSMA sense–defer–backoff time.
    Contention,
    /// Frames physically on the air.
    Airtime,
    /// Ack-timeout waits preceding retransmissions or message failure.
    Retransmission,
}

impl DelayComponent {
    /// All components in render order.
    pub const ALL: [DelayComponent; 5] = [
        DelayComponent::Processing,
        DelayComponent::Queueing,
        DelayComponent::Contention,
        DelayComponent::Airtime,
        DelayComponent::Retransmission,
    ];

    /// Stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DelayComponent::Processing => "processing",
            DelayComponent::Queueing => "queueing",
            DelayComponent::Contention => "contention",
            DelayComponent::Airtime => "airtime",
            DelayComponent::Retransmission => "retransmission",
        }
    }
}

/// One reconstructed cross-node session span.
#[derive(Debug, Clone)]
pub struct SessionSpan {
    /// Consumer node that started the session.
    pub node: u32,
    /// Per-node session sequence number (`(node, session)` is unique).
    pub session: u64,
    /// Protocol phase (`Pdd`, `Pdr` or `Mdr`).
    pub phase: Phase,
    /// `SessionStarted` timestamp (virtual µs).
    pub start_us: u64,
    /// `SessionFinished` timestamp; `None` if the session never finished
    /// (the shape a recall violation dump has).
    pub finish_us: Option<u64>,
    /// Reported end-to-end delay from `SessionFinished` (0 if unfinished).
    pub delay_us: u64,
    /// Rounds / query waves issued.
    pub rounds: u64,
    /// Entries discovered or chunks received.
    pub items: u64,
    /// Every event joined to this session, across all nodes and layers,
    /// in trace (= virtual-time) order.
    pub events: Vec<TraceEvent>,
    /// Nodes that emitted at least one joined event, sorted.
    pub participants: Vec<u32>,
}

impl SessionSpan {
    /// End of the decomposition window: finish time, or the last joined
    /// event for an unfinished session.
    #[must_use]
    pub fn end_us(&self) -> u64 {
        self.finish_us
            .or_else(|| self.events.last().map(|e| e.at_us))
            .unwrap_or(self.start_us)
    }

    /// Total decomposed delay (`end - start`).
    #[must_use]
    pub fn span_us(&self) -> u64 {
        self.end_us().saturating_sub(self.start_us)
    }
}

/// A session's delay split into the five [`DelayComponent`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DelayBreakdown {
    /// µs attributed to each component, indexed by [`DelayComponent::ALL`]
    /// order.
    pub us: [u64; 5],
}

impl DelayBreakdown {
    /// µs attributed to one component.
    #[must_use]
    pub fn get(&self, c: DelayComponent) -> u64 {
        self.us[DelayComponent::ALL
            .iter()
            .position(|&x| x == c)
            .expect("component in ALL")]
    }

    /// Sum of all components — equals the session's `span_us` exactly.
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.us.iter().sum()
    }
}

/// Which component the gap *ending* at `next` belongs to, given the event
/// that opened the gap.
fn classify_gap(prev: &TraceKind, next: &TraceKind) -> DelayComponent {
    // The wait before a retransmission (or terminal failure) is the ack
    // timeout, whatever event happened to precede it.
    if matches!(
        next,
        TraceKind::Retransmit { .. } | TraceKind::MessageFailed { .. }
    ) {
        return DelayComponent::Retransmission;
    }
    // A gap ending in a protocol-level reception is the receiving stack
    // working (reassembly, engine step scheduling) — processing even when
    // the sender's last event (e.g. a final `TxEnd`) would read as
    // queueing.
    if matches!(
        next,
        TraceKind::QueryReceived { .. }
            | TraceKind::ResponseReceived { .. }
            | TraceKind::MessageDelivered { .. }
    ) {
        return DelayComponent::Processing;
    }
    match prev {
        TraceKind::TxStart { .. } => DelayComponent::Airtime,
        TraceKind::MacTry { .. } => DelayComponent::Contention,
        TraceKind::QuerySent { .. }
        | TraceKind::ResponseSent { .. }
        | TraceKind::MessageSent { .. }
        | TraceKind::AckSent { .. }
        | TraceKind::Retransmit { .. }
        | TraceKind::TxEnd { .. }
        | TraceKind::QueueDepth { .. } => DelayComponent::Queueing,
        _ => DelayComponent::Processing,
    }
}

/// Decomposes one session's delay into the five components (module docs).
/// The components sum exactly to [`SessionSpan::span_us`].
#[must_use]
pub fn critical_path(span: &SessionSpan) -> DelayBreakdown {
    let mut out = DelayBreakdown::default();
    let mut add = |c: DelayComponent, us: u64| {
        out.us[DelayComponent::ALL
            .iter()
            .position(|&x| x == c)
            .expect("component in ALL")] += us;
    };
    let end = span.end_us();
    let mut prev_at = span.start_us;
    let mut prev_kind: &TraceKind = &TraceKind::SessionStarted {
        session: span.session,
    };
    for ev in &span.events {
        let at = ev.at_us.clamp(span.start_us, end);
        let gap = at.saturating_sub(prev_at);
        if gap > 0 {
            add(classify_gap(prev_kind, &ev.kind), gap);
        }
        prev_at = prev_at.max(at);
        prev_kind = &ev.kind;
    }
    // Tail: from the last joined event to the session end (e.g. the
    // finishing timer check on the consumer).
    let tail = end.saturating_sub(prev_at);
    if tail > 0 {
        add(
            classify_gap(
                prev_kind,
                &TraceKind::SessionFinished {
                    session: span.session,
                    delay_us: 0,
                    rounds: 0,
                    items: 0,
                },
            ),
            tail,
        );
    }
    out
}

/// Reconstructs every session span in a trace (module docs). Sessions are
/// returned in start order.
#[must_use]
pub fn sessions(events: &[TraceEvent]) -> Vec<SessionSpan> {
    type Key = (u32, u64); // (consumer node, session seq)

    let mut spans: BTreeMap<Key, SessionSpan> = BTreeMap::new();
    // Join indexes, built up in the single forward (= causal) pass:
    let mut by_query: BTreeMap<u64, Key> = BTreeMap::new();
    let mut by_response: BTreeMap<u64, Key> = BTreeMap::new();
    let mut by_message: BTreeMap<(u64, u64), Key> = BTreeMap::new(); // (origin, seq)
    let mut by_tx: BTreeMap<u64, Key> = BTreeMap::new();

    let push = |spans: &mut BTreeMap<Key, SessionSpan>, key: Key, ev: &TraceEvent| {
        if let Some(span) = spans.get_mut(&key) {
            span.events.push(ev.clone());
            if ev.node != u32::MAX && !span.participants.contains(&ev.node) {
                span.participants.push(ev.node);
            }
        }
    };

    for ev in events {
        match &ev.kind {
            TraceKind::SessionStarted { session } => {
                let key = (ev.node, *session);
                spans.insert(
                    key,
                    SessionSpan {
                        node: ev.node,
                        session: *session,
                        phase: ev.phase,
                        start_us: ev.at_us,
                        finish_us: None,
                        delay_us: 0,
                        rounds: 0,
                        items: 0,
                        events: Vec::new(),
                        participants: vec![ev.node],
                    },
                );
            }
            TraceKind::SessionFinished {
                session,
                delay_us,
                rounds,
                items,
            } => {
                if let Some(span) = spans.get_mut(&(ev.node, *session)) {
                    span.finish_us = Some(ev.at_us);
                    span.delay_us = *delay_us;
                    span.rounds = *rounds;
                    span.items = *items;
                }
            }
            TraceKind::QuerySent {
                query,
                session,
                seq,
            } => {
                // Consumer origination names its session; relays forward
                // the same query id with session = 0 and join through the
                // index the origination created.
                let key = if *session != 0 {
                    let key = (ev.node, *session);
                    by_query.insert(*query, key);
                    Some(key)
                } else {
                    by_query.get(query).copied()
                };
                if let Some(key) = key {
                    by_message.insert((u64::from(ev.node), *seq), key);
                    push(&mut spans, key, ev);
                }
            }
            TraceKind::QueryReceived { query, .. } => {
                if let Some(&key) = by_query.get(query) {
                    push(&mut spans, key, ev);
                }
            }
            TraceKind::ResponseSent {
                response,
                query,
                seq,
            } => {
                // Answering a known query names the session; relays carry
                // the preserved response id (query = 0) and join through
                // the index the original answer created.
                let key = by_query
                    .get(query)
                    .or_else(|| by_response.get(response))
                    .copied();
                if let Some(key) = key {
                    by_response.insert(*response, key);
                    by_message.insert((u64::from(ev.node), *seq), key);
                    push(&mut spans, key, ev);
                }
            }
            TraceKind::ResponseReceived { response, .. } => {
                if let Some(&key) = by_response.get(response) {
                    push(&mut spans, key, ev);
                }
            }
            TraceKind::MessageSent { seq, .. }
            | TraceKind::MessageAcked { seq }
            | TraceKind::MessageFailed { seq }
            | TraceKind::Retransmit { seq, .. } => {
                if let Some(&key) = by_message.get(&(u64::from(ev.node), *seq)) {
                    push(&mut spans, key, ev);
                }
            }
            TraceKind::MessageDelivered { origin, seq, .. }
            | TraceKind::AckSent { origin, seq, .. } => {
                if let Some(&key) = by_message.get(&(*origin, *seq)) {
                    push(&mut spans, key, ev);
                }
            }
            TraceKind::TxStart {
                tx, origin, seq, ..
            } => {
                if let Some(&key) = by_message.get(&(*origin, *seq)) {
                    by_tx.insert(*tx, key);
                    push(&mut spans, key, ev);
                }
            }
            TraceKind::TxEnd { tx }
            | TraceKind::FrameDelivered { tx, .. }
            | TraceKind::FrameCollided { tx }
            | TraceKind::FrameLostRandom { tx }
            | TraceKind::FrameHalfDuplex { tx }
            | TraceKind::FaultCut { tx }
            | TraceKind::FaultDropped { tx }
            | TraceKind::FaultDelayed { tx }
            | TraceKind::FaultDuplicated { tx } => {
                if let Some(&key) = by_tx.get(tx) {
                    push(&mut spans, key, ev);
                }
            }
            _ => {}
        }
    }

    let mut out: Vec<SessionSpan> = spans.into_values().collect();

    // Second pass: MacTry carries no correlation id — join by participant
    // node within the session window (module docs).
    for ev in events {
        if let TraceKind::MacTry { .. } = ev.kind {
            for span in &mut out {
                if span.participants.contains(&ev.node)
                    && ev.at_us >= span.start_us
                    && ev.at_us <= span.end_us()
                {
                    span.events.push(ev.clone());
                }
            }
        }
    }
    for span in &mut out {
        span.events.sort_by_key(|e| e.at_us);
        span.participants.sort_unstable();
    }
    out.sort_by_key(|s| (s.start_us, s.node, s.session));
    out
}

fn fmt_ms(us: u64) -> String {
    format!("{:.1}", us as f64 / 1000.0)
}

/// Renders the session table (`pds-obs sessions`).
#[must_use]
pub fn render_sessions(events: &[TraceEvent]) -> String {
    let spans = sessions(events);
    let mut out = format!("sessions: {}\n", spans.len());
    let _ = writeln!(
        out,
        "  {:<14} {:<5} {:>10} {:>10} {:>7} {:>6} {:>6} {:>7} {:>6}",
        "session", "phase", "start_ms", "delay_ms", "rounds", "items", "nodes", "events", "done"
    );
    for s in &spans {
        let _ = writeln!(
            out,
            "  n{:<4}#{:<8} {:<5} {:>10} {:>10} {:>7} {:>6} {:>6} {:>7} {:>6}",
            s.node,
            s.session,
            s.phase.name(),
            fmt_ms(s.start_us),
            fmt_ms(s.span_us()),
            s.rounds,
            s.items,
            s.participants.len(),
            s.events.len(),
            if s.finish_us.is_some() { "yes" } else { "NO" }
        );
    }
    out
}

/// Renders the critical-path decomposition (`pds-obs critical-path`):
/// per-session component table, per-phase aggregate shares, and per-phase
/// session-delay CDFs.
#[must_use]
pub fn render_critical_path(events: &[TraceEvent]) -> String {
    let spans = sessions(events);
    let mut out = String::from("critical-path delay decomposition (ms):\n");
    let _ = writeln!(
        out,
        "  {:<14} {:<5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "session", "phase", "total", "proc", "queue", "cont", "air", "retx"
    );
    let mut by_phase: BTreeMap<Phase, (DelayBreakdown, Vec<u64>)> = BTreeMap::new();
    for s in &spans {
        let bd = critical_path(s);
        debug_assert_eq!(bd.total_us(), s.span_us(), "components must sum exactly");
        let _ = writeln!(
            out,
            "  n{:<4}#{:<8} {:<5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            s.node,
            s.session,
            s.phase.name(),
            fmt_ms(s.span_us()),
            fmt_ms(bd.get(DelayComponent::Processing)),
            fmt_ms(bd.get(DelayComponent::Queueing)),
            fmt_ms(bd.get(DelayComponent::Contention)),
            fmt_ms(bd.get(DelayComponent::Airtime)),
            fmt_ms(bd.get(DelayComponent::Retransmission)),
        );
        let e = by_phase.entry(s.phase).or_default();
        for (i, us) in bd.us.iter().enumerate() {
            e.0.us[i] += us;
        }
        e.1.push(s.span_us());
    }
    out.push('\n');
    out.push_str("aggregate share by phase:\n");
    for (phase, (bd, _)) in &by_phase {
        let total = bd.total_us().max(1);
        let _ = write!(out, "  {:<5}", phase.name());
        for (i, c) in DelayComponent::ALL.iter().enumerate() {
            let _ = write!(
                out,
                "  {} {:>5.1}%",
                c.name(),
                100.0 * bd.us[i] as f64 / total as f64
            );
        }
        out.push('\n');
    }
    for (phase, (_, delays)) in &by_phase {
        out.push('\n');
        out.push_str(&crate::analysis::render_cdf(
            &format!("{} session delay CDF", phase.name()),
            delays,
            10,
        ));
    }
    out
}

/// Renders the causal narrative of a flight-recorder dump
/// (`pds-obs explain <dump>`): the most suspicious session — unfinished
/// if any, else the last to finish — as an annotated per-event story with
/// gap attributions, plus its delay breakdown.
#[must_use]
pub fn explain(events: &[TraceEvent]) -> String {
    let spans = sessions(events);
    let Some(span) = spans
        .iter()
        .find(|s| s.finish_us.is_none())
        .or_else(|| spans.last())
    else {
        let mut out = String::from("no sessions in dump; last events:\n");
        for ev in events.iter().rev().take(30).rev() {
            let _ = writeln!(out, "  {ev}");
        }
        return out;
    };
    let mut out = String::new();
    let status = match span.finish_us {
        Some(f) => format!("finished at {} ms", fmt_ms(f)),
        None => "NEVER FINISHED".to_string(),
    };
    let _ = writeln!(
        out,
        "session n{}#{} ({}): started {} ms, {status}, {} rounds, {} items, {} nodes involved",
        span.node,
        span.session,
        span.phase.name(),
        fmt_ms(span.start_us),
        span.rounds,
        span.items,
        span.participants.len()
    );
    let bd = critical_path(span);
    let _ = write!(out, "delay {} ms =", fmt_ms(span.span_us()));
    for (i, c) in DelayComponent::ALL.iter().enumerate() {
        let _ = write!(out, " {} {}", c.name(), fmt_ms(bd.us[i]));
    }
    out.push_str(" (ms)\n\nnarrative:\n");
    let mut prev_at = span.start_us;
    let mut prev_kind: Option<&TraceKind> = None;
    for ev in &span.events {
        let gap = ev.at_us.saturating_sub(prev_at);
        if gap > 0 {
            let c = classify_gap(
                prev_kind.unwrap_or(&TraceKind::SessionStarted {
                    session: span.session,
                }),
                &ev.kind,
            );
            let _ = writeln!(out, "       … {:>8} µs of {}", gap, c.name());
        }
        let _ = writeln!(out, "  {ev}");
        prev_at = prev_at.max(ev.at_us);
        prev_kind = Some(&ev.kind);
    }
    if span.finish_us.is_none() {
        out.push_str("  <session never finished — the trail above ends at the violation>\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, node: u32, phase: Phase, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at_us: at,
            node,
            phase,
            kind,
        }
    }

    /// A hand-built two-node exchange: consumer 0 starts a PDR session,
    /// sends query 100 (seq 1), provider 1 answers with response 200
    /// (seq 5), consumer finishes.
    fn tiny_session() -> Vec<TraceEvent> {
        use TraceKind as K;
        vec![
            ev(1000, 0, Phase::Pdr, K::SessionStarted { session: 1 }),
            ev(
                1100,
                0,
                Phase::Pdr,
                K::QuerySent {
                    query: 100,
                    session: 1,
                    seq: 1,
                },
            ),
            ev(1150, 0, Phase::Radio, K::MacTry { deferred: false }),
            ev(
                1200,
                0,
                Phase::Radio,
                K::TxStart {
                    tx: 50,
                    origin: 0,
                    seq: 1,
                    bytes: 120,
                    class: 2,
                },
            ),
            ev(2200, 0, Phase::Kernel, K::TxEnd { tx: 50 }),
            ev(
                2200,
                1,
                Phase::Radio,
                K::FrameDelivered { tx: 50, bytes: 120 },
            ),
            ev(
                2300,
                1,
                Phase::Pdr,
                K::QueryReceived {
                    query: 100,
                    from: 0,
                },
            ),
            ev(
                2800,
                1,
                Phase::Pdr,
                K::ResponseSent {
                    response: 200,
                    query: 100,
                    seq: 5,
                },
            ),
            ev(
                3000,
                1,
                Phase::Radio,
                K::TxStart {
                    tx: 51,
                    origin: 1,
                    seq: 5,
                    bytes: 900,
                    class: 2,
                },
            ),
            ev(5000, 1, Phase::Kernel, K::TxEnd { tx: 51 }),
            ev(
                5100,
                0,
                Phase::Pdr,
                K::ResponseReceived {
                    response: 200,
                    from: 1,
                },
            ),
            ev(
                5600,
                0,
                Phase::Pdr,
                K::SessionFinished {
                    session: 1,
                    delay_us: 4600,
                    rounds: 1,
                    items: 1,
                },
            ),
        ]
    }

    #[test]
    fn reconstructs_cross_node_span() {
        let spans = sessions(&tiny_session());
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!((s.node, s.session), (0, 1));
        assert_eq!(s.phase, Phase::Pdr);
        assert_eq!(s.participants, vec![0, 1]);
        assert_eq!(s.start_us, 1000);
        assert_eq!(s.finish_us, Some(5600));
        assert_eq!(s.span_us(), 4600);
        // Every non-bracket event joined (11 listed + MacTry; brackets are
        // not members of `events`... SessionStarted/Finished are not pushed).
        assert_eq!(s.events.len(), 10);
        assert_eq!(s.items, 1);
    }

    #[test]
    fn components_sum_exactly_to_span() {
        let spans = sessions(&tiny_session());
        let bd = critical_path(&spans[0]);
        assert_eq!(bd.total_us(), spans[0].span_us());
        // Airtime = 1000 (tx 50) + 2000 (tx 51).
        assert_eq!(bd.get(DelayComponent::Airtime), 3000);
        // Contention = MacTry→TxStart gap.
        assert_eq!(bd.get(DelayComponent::Contention), 50);
        // Queueing = QuerySent→MacTry (50) + ResponseSent→TxStart (200).
        assert_eq!(bd.get(DelayComponent::Queueing), 250);
        // Processing = the rest.
        assert_eq!(bd.get(DelayComponent::Processing), 1300);
        assert_eq!(bd.get(DelayComponent::Retransmission), 0);
    }

    #[test]
    fn retransmission_wait_is_attributed_to_retx() {
        use TraceKind as K;
        let mut events = tiny_session();
        // A zero-gap transport event joins without shifting any component.
        events.insert(
            5,
            ev(
                2200,
                0,
                Phase::Transport,
                K::MessageSent {
                    seq: 1,
                    bytes: 120,
                    class: 2,
                },
            ),
        );
        let spans = sessions(&events);
        let bd = critical_path(&spans[0]);
        assert_eq!(bd.total_us(), spans[0].span_us());

        let mut events2 = tiny_session();
        events2.insert(
            5,
            ev(
                2400,
                0,
                Phase::Transport,
                K::Retransmit { seq: 1, frames: 1 },
            ),
        );
        let spans2 = sessions(&events2);
        let bd2 = critical_path(&spans2[0]);
        assert_eq!(bd2.total_us(), spans2[0].span_us());
        // Gap 2300→2400 now ends at a Retransmit → retransmission.
        assert_eq!(bd2.get(DelayComponent::Retransmission), 100);
    }

    #[test]
    fn relayed_queries_and_responses_join_by_id() {
        use TraceKind as K;
        let events = vec![
            ev(0, 0, Phase::Pdd, K::SessionStarted { session: 3 }),
            ev(
                10,
                0,
                Phase::Pdd,
                K::QuerySent {
                    query: 7,
                    session: 3,
                    seq: 1,
                },
            ),
            // Relay forwards the same query id, session unknown (0).
            ev(
                50,
                5,
                Phase::Pdd,
                K::QuerySent {
                    query: 7,
                    session: 0,
                    seq: 9,
                },
            ),
            // Provider answers the query.
            ev(
                80,
                6,
                Phase::Pdd,
                K::ResponseSent {
                    response: 40,
                    query: 7,
                    seq: 2,
                },
            ),
            // Relay forwards the response (preserved id, query unknown).
            ev(
                120,
                5,
                Phase::Pdd,
                K::ResponseSent {
                    response: 40,
                    query: 0,
                    seq: 10,
                },
            ),
            ev(
                150,
                0,
                Phase::Pdd,
                K::ResponseReceived {
                    response: 40,
                    from: 5,
                },
            ),
            ev(
                200,
                0,
                Phase::Pdd,
                K::SessionFinished {
                    session: 3,
                    delay_us: 200,
                    rounds: 1,
                    items: 1,
                },
            ),
        ];
        let spans = sessions(&events);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].participants, vec![0, 5, 6]);
        assert_eq!(spans[0].events.len(), 5);
    }

    #[test]
    fn unfinished_sessions_are_flagged_and_explained() {
        let mut events = tiny_session();
        events.pop(); // drop SessionFinished
        let spans = sessions(&events);
        assert_eq!(spans[0].finish_us, None);
        assert_eq!(spans[0].span_us(), 5100 - 1000);
        let table = render_sessions(&events);
        assert!(table.contains("NO"), "{table}");
        let story = explain(&events);
        assert!(story.contains("NEVER FINISHED"), "{story}");
        assert!(story.contains("narrative"), "{story}");
    }

    #[test]
    fn renders_decomposition_tables() {
        let events = tiny_session();
        let s = render_critical_path(&events);
        assert!(s.contains("critical-path delay decomposition"), "{s}");
        assert!(s.contains("aggregate share by phase"), "{s}");
        assert!(s.contains("pdr session delay CDF"), "{s}");
        let story = explain(&events);
        assert!(story.contains("session n0#1 (pdr)"), "{story}");
        assert!(story.contains("airtime"), "{story}");
    }

    #[test]
    fn explain_without_sessions_falls_back_to_tail() {
        let events = vec![ev(5, 1, Phase::Kernel, TraceKind::Sweep)];
        let story = explain(&events);
        assert!(story.contains("no sessions in dump"), "{story}");
    }
}
