//! Trace sinks: where emitted events go.
//!
//! The simulator holds an `Option<Box<dyn TraceSink>>`; with no sink
//! installed, every emission site is a single branch on `Option::is_some`
//! and the hot path stays untouched. Sinks only *observe* events — a sink
//! must never feed anything back into simulation state, which is what keeps
//! tracing replay-digest-neutral (DESIGN.md §8).

use crate::event::TraceEvent;
use crate::json;
use std::any::Any;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::Path;

/// Receives trace events in emission order.
///
/// `Any` is a supertrait so a sink handed to the simulator can be recovered
/// and downcast after a run (e.g. to read a ring buffer's events back).
/// `Send` is a supertrait so a simulated world carrying a sink can move to a
/// sweep worker thread; a sink is only ever driven by the one thread that
/// owns its world.
pub trait TraceSink: Any + Send {
    /// Records one event. Called synchronously from the emission site;
    /// implementations must not block on anything but local I/O.
    fn record(&mut self, ev: &TraceEvent);

    /// Flushes buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}

    /// Upcast for post-run downcasting.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for post-run downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Discards every event. Useful to measure the cost of emission itself.
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: &TraceEvent) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Keeps the last `capacity` events in memory (0 = unbounded).
///
/// The bounded mode is what the CI failure path uses: re-run a failing
/// scenario with a ring large enough for the interesting tail without
/// risking out-of-memory on a long run.
#[derive(Debug, Default)]
pub struct RingSink {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (0 = unbounded).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            events: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.iter().cloned().collect()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        if self.capacity > 0 && self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev.clone());
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Serializes every event as one JSON object per line (JSONL).
///
/// I/O errors are counted, not propagated — an emission site inside the
/// simulation kernel has no useful way to surface a disk error, and
/// aborting a run over its *diagnostics* would be backwards.
pub struct JsonlSink<W: Write + Send + 'static> {
    writer: W,
    lines: u64,
    errors: u64,
}

impl JsonlSink<io::BufWriter<std::fs::File>> {
    /// Creates (truncates) `path` and writes the trace there, buffered.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(io::BufWriter::new(file)))
    }
}

impl<W: Write + Send + 'static> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            lines: 0,
            errors: 0,
        }
    }

    /// Lines successfully written.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Write errors swallowed so far (should stay 0).
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write + Send + 'static> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        let mut line = json::to_json(ev);
        line.push('\n');
        if self.writer.write_all(line.as_bytes()).is_ok() {
            self.lines += 1;
        } else {
            self.errors += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<W: Write + Send + 'static> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("lines", &self.lines)
            .field("errors", &self.errors)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Phase, TraceKind};

    fn ev(at: u64) -> TraceEvent {
        TraceEvent {
            at_us: at,
            node: 1,
            phase: Phase::Kernel,
            kind: TraceKind::Sweep,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut r = RingSink::new(2);
        r.record(&ev(1));
        r.record(&ev(2));
        r.record(&ev(3));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        let got: Vec<u64> = r.events().iter().map(|e| e.at_us).collect();
        assert_eq!(got, vec![2, 3]);
    }

    #[test]
    fn unbounded_ring_keeps_everything() {
        let mut r = RingSink::new(0);
        for i in 0..100 {
            r.record(&ev(i));
        }
        assert_eq!(r.len(), 100);
        assert_eq!(r.dropped(), 0);
        assert!(!r.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let mut s = JsonlSink::new(Vec::new());
        s.record(&ev(5));
        s.record(&ev(6));
        assert_eq!(s.lines(), 2);
        assert_eq!(s.errors(), 0);
        let buf = s.into_inner();
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with('{'));
    }

    #[test]
    fn sinks_downcast_through_as_any() {
        let mut boxed: Box<dyn TraceSink> = Box::new(RingSink::new(0));
        boxed.record(&ev(9));
        let ring = boxed.as_any().downcast_ref::<RingSink>().expect("ring");
        assert_eq!(ring.len(), 1);
    }
}
