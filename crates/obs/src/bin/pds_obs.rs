//! `pds-obs` — trace-analysis CLI for PDS JSONL traces.
//!
//! ```text
//! pds-obs summary <trace.jsonl>            per-phase overhead, delay CDFs,
//!                                          metrics registry
//! pds-obs sessions <trace.jsonl>           cross-node session span table
//! pds-obs critical-path <trace.jsonl>      per-session delay decomposition
//!                                          (processing / queueing /
//!                                          contention / airtime / retx)
//!                                          + per-phase shares and CDFs
//! pds-obs explain <dump.jsonl>             causal narrative of the most
//!                                          suspicious session in a
//!                                          flight-recorder dump
//! pds-obs cdf <trace.jsonl> [--session]    message (default) or session
//!                                          delay CDF
//! pds-obs diff <a.jsonl> <b.jsonl> [--context N]
//!                                          first diverging event between
//!                                          two traces
//! ```
//!
//! Exit codes: `0` success / traces identical, `1` traces diverge,
//! `2` usage or parse error.

use pds_obs::{
    explain, first_divergence, message_delays_us, read_trace_file, render_cdf,
    render_critical_path, render_divergence, render_sessions, render_summary, session_delays_us,
    TraceEvent,
};
use std::process::ExitCode;

const USAGE: &str = "usage:
  pds-obs summary <trace.jsonl>
  pds-obs sessions <trace.jsonl>
  pds-obs critical-path <trace.jsonl>
  pds-obs explain <dump.jsonl>
  pds-obs cdf <trace.jsonl> [--session]
  pds-obs diff <a.jsonl> <b.jsonl> [--context N]";

fn load(path: &str) -> Result<Vec<TraceEvent>, String> {
    read_trace_file(path).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args {
        [cmd, path] if cmd == "summary" => {
            print!("{}", render_summary(&load(path)?));
            Ok(ExitCode::SUCCESS)
        }
        [cmd, path] if cmd == "sessions" => {
            print!("{}", render_sessions(&load(path)?));
            Ok(ExitCode::SUCCESS)
        }
        [cmd, path] if cmd == "critical-path" => {
            print!("{}", render_critical_path(&load(path)?));
            Ok(ExitCode::SUCCESS)
        }
        [cmd, path] if cmd == "explain" => {
            print!("{}", explain(&load(path)?));
            Ok(ExitCode::SUCCESS)
        }
        [cmd, path, rest @ ..] if cmd == "cdf" => {
            let session = match rest {
                [] => false,
                [flag] if flag == "--session" => true,
                _ => return Err(USAGE.to_string()),
            };
            let events = load(path)?;
            if session {
                let delays = session_delays_us(&events);
                if delays.is_empty() {
                    println!("<no finished sessions in trace>");
                }
                for (phase, samples) in delays {
                    print!(
                        "{}",
                        render_cdf(&format!("{} session delay CDF", phase.name()), &samples, 10)
                    );
                }
            } else {
                print!(
                    "{}",
                    render_cdf("message delay CDF", &message_delays_us(&events), 10)
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        [cmd, a, b, rest @ ..] if cmd == "diff" => {
            let context = match rest {
                [] => 3usize,
                [flag, n] if flag == "--context" => {
                    n.parse().map_err(|_| format!("bad --context value: {n}"))?
                }
                _ => return Err(USAGE.to_string()),
            };
            let left = load(a)?;
            let right = load(b)?;
            match first_divergence(&left, &right) {
                None => {
                    println!("traces identical ({} events)", left.len());
                    Ok(ExitCode::SUCCESS)
                }
                Some(d) => {
                    print!("{}", render_divergence(&left, &right, &d, context));
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
