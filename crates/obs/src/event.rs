//! The trace event vocabulary.
//!
//! Events are deliberately flat — virtual timestamp, node, phase, kind plus
//! a handful of integer payload ids — so they serialize to one JSONL object
//! each and can be compared field-wise by the `diff` analysis. All
//! timestamps are *virtual* microseconds; no wall-clock value ever enters a
//! trace (DESIGN.md §8).

use std::fmt;

/// Layer or protocol phase an event is attributed to.
///
/// `Pdd`/`Pdr`/`Mdr` carry the paper's Fig. 9 overhead decomposition;
/// `Kernel`/`Radio`/`Transport` attribute simulator-level events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Simulation-kernel events (the dispatch stream the replay digest
    /// folds).
    Kernel,
    /// Physical/MAC-layer events: transmissions, deliveries, losses.
    Radio,
    /// Reliable-transport events: messages, acks, retransmissions.
    Transport,
    /// Peer Data Discovery (metadata / small-data queries and responses).
    Pdd,
    /// Peer Data Retrieval (CDI collection and chunk retrieval).
    Pdr,
    /// The MDR baseline (multi-round chunk retrieval without CDI).
    Mdr,
    /// Unattributed traffic (e.g. non-PDS test applications).
    Other,
}

/// Traffic class byte carried by data frames so the radio layer can split
/// byte counters by protocol phase without understanding PDS messages.
pub mod class {
    /// Unclassified traffic (also acks and non-PDS applications).
    pub const OTHER: u8 = 0;
    /// PDD control traffic (discovery queries/responses).
    pub const PDD: u8 = 1;
    /// PDR traffic (CDI collection + chunk retrieval).
    pub const PDR: u8 = 2;
    /// MDR baseline traffic.
    pub const MDR: u8 = 3;
}

impl Phase {
    /// All phases, in canonical (sort) order.
    pub const ALL: [Phase; 7] = [
        Phase::Kernel,
        Phase::Radio,
        Phase::Transport,
        Phase::Pdd,
        Phase::Pdr,
        Phase::Mdr,
        Phase::Other,
    ];

    /// Stable lowercase name used in the JSONL schema.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Kernel => "kernel",
            Phase::Radio => "radio",
            Phase::Transport => "transport",
            Phase::Pdd => "pdd",
            Phase::Pdr => "pdr",
            Phase::Mdr => "mdr",
            Phase::Other => "other",
        }
    }

    /// Inverse of [`Phase::name`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == s)
    }

    /// The frame traffic-class byte for this phase (see [`class`]).
    #[must_use]
    pub fn class(self) -> u8 {
        match self {
            Phase::Pdd => class::PDD,
            Phase::Pdr => class::PDR,
            Phase::Mdr => class::MDR,
            _ => class::OTHER,
        }
    }

    /// Maps a frame traffic-class byte back to its protocol phase.
    /// Unknown classes collapse to [`Phase::Other`].
    #[must_use]
    pub fn from_class(c: u8) -> Phase {
        match c {
            class::PDD => Phase::Pdd,
            class::PDR => Phase::Pdr,
            class::MDR => Phase::Mdr,
            _ => Phase::Other,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened. Payload fields are raw integer ids so the crate stays a
/// leaf dependency (no simulator types).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    // ---- kernel: mirrors the dispatched event stream ---------------------
    /// A node's `on_start` fired.
    NodeStart,
    /// A MAC transmission attempt (`deferred` = second phase of
    /// sense–defer–transmit).
    MacTry {
        /// Whether the initial random defer has already been served.
        deferred: bool,
    },
    /// A transmission's end event was dispatched.
    TxEnd {
        /// Transmission id.
        tx: u64,
    },
    /// A leaky-bucket drain event fired.
    BucketDrain,
    /// A timer (application or transport) fired.
    TimerFired {
        /// Timer id within the node's table.
        timer: u64,
    },
    /// A scheduled control closure ran.
    Control {
        /// Control-closure id.
        ctrl: u64,
    },
    /// Periodic transport garbage collection ran.
    Sweep,
    /// A fault-delayed or fault-duplicated reception event was dispatched
    /// (DST layer; only present when a fault plan is installed).
    FaultDeliver {
        /// Pending-delivery id within the fault state.
        fault: u64,
    },

    // ---- radio -----------------------------------------------------------
    /// A frame went on the air. `node` is the sender.
    TxStart {
        /// Transmission id.
        tx: u64,
        /// Originating node of the carried message (fragments are relayed
        /// verbatim, so this can differ from the transmitting `node` for
        /// acks; `origin#seq` keys the message across the whole trace).
        origin: u64,
        /// Per-origin sequence number of the carried message.
        seq: u64,
        /// On-air bytes.
        bytes: u64,
        /// Traffic class (see [`class`]).
        class: u64,
    },
    /// A frame reception succeeded at `node`.
    FrameDelivered {
        /// Transmission id.
        tx: u64,
        /// On-air bytes received.
        bytes: u64,
    },
    /// A frame reception at `node` was lost to a collision.
    FrameCollided {
        /// Transmission id.
        tx: u64,
    },
    /// A frame reception at `node` was lost to baseline (fading) loss.
    FrameLostRandom {
        /// Transmission id.
        tx: u64,
    },
    /// A frame reception at `node` was missed because it was transmitting.
    FrameHalfDuplex {
        /// Transmission id.
        tx: u64,
    },
    /// The OS UDP send buffer at `node` overflowed and dropped a frame.
    FrameDroppedOs {
        /// Dropped frame's on-air bytes.
        bytes: u64,
    },
    /// OS send-buffer occupancy at `node` after an enqueue.
    QueueDepth {
        /// Bytes currently queued in the OS buffer.
        bytes: u64,
    },
    /// A reception at `node` was cut by an injected partition or
    /// byzantine-silence window (DST).
    FaultCut {
        /// Transmission id.
        tx: u64,
    },
    /// A reception at `node` was dropped by the injected extra-loss fault
    /// (DST).
    FaultDropped {
        /// Transmission id.
        tx: u64,
    },
    /// A reception at `node` was diverted to a delayed delivery (DST).
    FaultDelayed {
        /// Transmission id.
        tx: u64,
    },
    /// A reception at `node` was duplicated; a second copy will arrive
    /// later (DST).
    FaultDuplicated {
        /// Transmission id.
        tx: u64,
    },

    // ---- transport -------------------------------------------------------
    /// `node` submitted an application message for transmission.
    MessageSent {
        /// Per-origin sequence number (message id = `node#seq`).
        seq: u64,
        /// Total wire bytes of the initial transmission (all fragments).
        bytes: u64,
        /// Traffic class of the message's frames.
        class: u64,
    },
    /// A complete message was delivered to `node`'s application.
    MessageDelivered {
        /// Originating node.
        origin: u64,
        /// Per-origin sequence number.
        seq: u64,
        /// Total wire bytes of the message.
        bytes: u64,
        /// Whether `node` merely overheard it.
        overheard: bool,
    },
    /// A reliable message from `node` was fully acknowledged.
    MessageAcked {
        /// Per-origin sequence number.
        seq: u64,
    },
    /// A reliable message from `node` was abandoned after exhausting its
    /// retry budget.
    MessageFailed {
        /// Per-origin sequence number.
        seq: u64,
    },
    /// `node` retransmitted the missing fragments of a message.
    Retransmit {
        /// Per-origin sequence number.
        seq: u64,
        /// Fragments retransmitted in this attempt.
        frames: u64,
    },
    /// `node` transmitted a selective ack.
    AckSent {
        /// Origin of the acknowledged message.
        origin: u64,
        /// Per-origin sequence number of the acknowledged message.
        seq: u64,
        /// Ack frame wire bytes.
        bytes: u64,
    },

    // ---- protocol (phase = Pdd / Pdr / Mdr) ------------------------------
    /// `node` transmitted a PDS query.
    QuerySent {
        /// Query id.
        query: u64,
        /// Consumer session this query drives (`(node, session)` keys the
        /// span tree); 0 when the query is a relay / flood forward rather
        /// than part of an own session.
        session: u64,
        /// Transport sequence number of the carrying message
        /// (`node#seq`), linking the query to its radio-level frames.
        seq: u64,
    },
    /// `node` received (and accepted for processing) a PDS query.
    QueryReceived {
        /// Query id.
        query: u64,
        /// Transmitting one-hop neighbor.
        from: u64,
    },
    /// `node` transmitted a PDS response.
    ResponseSent {
        /// Response id.
        response: u64,
        /// Id of the query this response answers (0 = unknown, e.g. a
        /// batched relay serving several lingering queries at once).
        query: u64,
        /// Transport sequence number of the carrying message (`node#seq`).
        seq: u64,
    },
    /// `node` received a PDS response.
    ResponseReceived {
        /// Response id.
        response: u64,
        /// Transmitting one-hop neighbor.
        from: u64,
    },
    /// `node` started a consumer session (discovery or retrieval; the
    /// event's phase says which protocol).
    SessionStarted {
        /// Per-node session sequence number (correlates every
        /// session-scoped event; `(node, session)` is globally unique).
        session: u64,
    },
    /// `node`'s consumer session finished.
    SessionFinished {
        /// Per-node session sequence number (see [`TraceKind::SessionStarted`]).
        session: u64,
        /// The paper's latency metric for the session, in virtual µs.
        delay_us: u64,
        /// Rounds (PDD/MDR) or query waves (PDR) issued.
        rounds: u64,
        /// Entries discovered or chunks received.
        items: u64,
    },
}

impl TraceKind {
    /// Stable snake_case name used in the JSONL schema.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::NodeStart => "node_start",
            TraceKind::MacTry { .. } => "mac_try",
            TraceKind::TxEnd { .. } => "tx_end",
            TraceKind::BucketDrain => "bucket_drain",
            TraceKind::TimerFired { .. } => "timer_fired",
            TraceKind::Control { .. } => "control",
            TraceKind::Sweep => "sweep",
            TraceKind::FaultDeliver { .. } => "fault_deliver",
            TraceKind::TxStart { .. } => "tx_start",
            TraceKind::FrameDelivered { .. } => "frame_delivered",
            TraceKind::FrameCollided { .. } => "frame_collided",
            TraceKind::FrameLostRandom { .. } => "frame_lost_random",
            TraceKind::FrameHalfDuplex { .. } => "frame_half_duplex",
            TraceKind::FrameDroppedOs { .. } => "frame_dropped_os",
            TraceKind::QueueDepth { .. } => "queue_depth",
            TraceKind::FaultCut { .. } => "fault_cut",
            TraceKind::FaultDropped { .. } => "fault_dropped",
            TraceKind::FaultDelayed { .. } => "fault_delayed",
            TraceKind::FaultDuplicated { .. } => "fault_duplicated",
            TraceKind::MessageSent { .. } => "message_sent",
            TraceKind::MessageDelivered { .. } => "message_delivered",
            TraceKind::MessageAcked { .. } => "message_acked",
            TraceKind::MessageFailed { .. } => "message_failed",
            TraceKind::Retransmit { .. } => "retransmit",
            TraceKind::AckSent { .. } => "ack_sent",
            TraceKind::QuerySent { .. } => "query_sent",
            TraceKind::QueryReceived { .. } => "query_received",
            TraceKind::ResponseSent { .. } => "response_sent",
            TraceKind::ResponseReceived { .. } => "response_received",
            TraceKind::SessionStarted { .. } => "session_started",
            TraceKind::SessionFinished { .. } => "session_finished",
        }
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual timestamp in microseconds.
    pub at_us: u64,
    /// Node the event is attributed to (`u32::MAX` = no node, e.g. a
    /// control closure or the periodic sweep).
    pub node: u32,
    /// Layer / protocol phase.
    pub phase: Phase,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.node == u32::MAX {
            write!(
                f,
                "[{:>12} µs]    -  {} {:?}",
                self.at_us, self.phase, self.kind
            )
        } else {
            write!(
                f,
                "[{:>12} µs] n{:<4} {} {:?}",
                self.at_us, self.node, self.phase, self.kind
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::parse(p.name()), Some(p));
        }
        assert_eq!(Phase::parse("bogus"), None);
    }

    #[test]
    fn class_mapping_round_trips_protocol_phases() {
        for p in [Phase::Pdd, Phase::Pdr, Phase::Mdr] {
            assert_eq!(Phase::from_class(p.class()), p);
        }
        assert_eq!(Phase::from_class(class::OTHER), Phase::Other);
        assert_eq!(Phase::from_class(250), Phase::Other);
    }

    #[test]
    fn display_is_compact() {
        let ev = TraceEvent {
            at_us: 1500,
            node: 3,
            phase: Phase::Radio,
            kind: TraceKind::TxStart {
                tx: 9,
                origin: 3,
                seq: 2,
                bytes: 1466,
                class: 1,
            },
        };
        let s = ev.to_string();
        assert!(s.contains("n3"), "{s}");
        assert!(s.contains("radio"), "{s}");
    }
}
