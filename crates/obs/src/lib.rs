//! Deterministic observability for the PDS reproduction: structured trace
//! events, pluggable sinks, a per-node/per-phase metrics registry, and the
//! analyses behind the `pds-obs` CLI.
//!
//! # Design constraints
//!
//! - **Leaf crate.** Only `pds-det` is a dependency; events carry raw
//!   `u32` node ids and `u64` virtual-µs timestamps so both `pds-sim` and
//!   `pds-core` can emit without a dependency cycle.
//! - **Zero-cost when disabled.** The simulator guards every emission site
//!   on `Option<Box<dyn TraceSink>>::is_some`; with no sink installed the
//!   hot path pays one predictable branch.
//! - **Replay-neutral.** Sinks observe, never influence: installing or
//!   removing a sink must not change replay digests, statistics, or rng
//!   consumption (asserted by integration tests).
//! - **Virtual time only.** No wall-clock value appears in any event;
//!   `cargo xtask lint` scans this crate like the simulation
//!   crates.
//!
//! # Quick tour
//!
//! ```
//! use pds_obs::{Phase, RingSink, TraceEvent, TraceKind, TraceSink};
//!
//! let mut sink = RingSink::new(0);
//! sink.record(&TraceEvent {
//!     at_us: 1500,
//!     node: 3,
//!     phase: Phase::Radio,
//!     kind: TraceKind::TxStart { tx: 1, origin: 3, seq: 1, bytes: 1466, class: 1 },
//! });
//! let events = sink.events();
//! assert_eq!(pds_obs::phase_overhead(&events)[&Phase::Pdd].bytes, 1466);
//! assert!(pds_obs::first_divergence(&events, &events.clone()).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod event;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod span;

pub use analysis::{
    cdf, first_divergence, message_delays_us, phase_overhead, render_cdf, render_divergence,
    render_overhead, render_summary, session_delay_quantiles, session_delays_us, Divergence,
    PhaseOverhead,
};
pub use event::{class, Phase, TraceEvent, TraceKind};
pub use flight::FlightRecorder;
pub use json::{parse_line, read_trace, read_trace_file, to_json, ParseError};
pub use metrics::{Histogram, MetricKey, MetricsRegistry};
pub use sink::{JsonlSink, NullSink, RingSink, TraceSink};
pub use span::{
    critical_path, explain, render_critical_path, render_sessions, sessions, DelayBreakdown,
    DelayComponent, SessionSpan,
};
