//! Per-node, per-phase metrics registry.
//!
//! Generalizes the simulator's global `Stats` struct: every counter and
//! histogram is keyed by `(node, phase, name)`, iterates in sorted key
//! order (BTreeMap — deterministic by construction), and measures *virtual*
//! time only. A registry can be populated directly (`inc`/`observe`) or
//! derived from a recorded trace ([`MetricsRegistry::from_trace`]), which
//! is how the bench report snapshots one without threading a registry
//! through the hot path.

use crate::event::{Phase, TraceEvent, TraceKind};
use pds_det::DetMap;
use std::collections::BTreeMap;

/// Key of one metric series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Owning node (`u32::MAX` = global / unattributed).
    pub node: u32,
    /// Protocol phase or layer.
    pub phase: Phase,
    /// Metric name (fixed vocabulary; see the `name_*` constants).
    pub name: &'static str,
}

/// Histogram over virtual-time (or count) samples, with power-of-two
/// buckets. Integer-only: bucket math is exact and replay-stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts samples with `bit_length(v) == i` (bucket 0 is
    /// exactly the value 0).
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(63)
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile: the geometric midpoint of the bucket holding
    /// the `q`-th sample (`q` in [0, 1]). Exact for the min/max ends up to
    /// bucket resolution (a factor of 2).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count), at least 1.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                if i == 0 {
                    return 0;
                }
                let lower = 1u64 << (i - 1);
                let upper = if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
                return lower + (upper - lower) / 2;
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Metric-name vocabulary (counters).
pub mod name {
    /// Frames put on the air.
    pub const FRAMES_SENT: &str = "frames_sent";
    /// On-air bytes transmitted.
    pub const BYTES_SENT: &str = "bytes_sent";
    /// Frame receptions delivered.
    pub const FRAMES_DELIVERED: &str = "frames_delivered";
    /// Frame receptions lost (collision + fading + half-duplex).
    pub const FRAMES_LOST: &str = "frames_lost";
    /// Frames dropped at the OS send buffer.
    pub const FRAMES_DROPPED_OS: &str = "frames_dropped_os";
    /// Application messages submitted.
    pub const MESSAGES_SENT: &str = "messages_sent";
    /// Complete messages delivered.
    pub const MESSAGES_DELIVERED: &str = "messages_delivered";
    /// Reliable messages abandoned.
    pub const MESSAGES_FAILED: &str = "messages_failed";
    /// Retransmission attempts.
    pub const RETRANSMISSIONS: &str = "retransmissions";
    /// PDS queries transmitted.
    pub const QUERIES_SENT: &str = "queries_sent";
    /// PDS responses transmitted.
    pub const RESPONSES_SENT: &str = "responses_sent";
    /// Consumer sessions finished.
    pub const SESSIONS_FINISHED: &str = "sessions_finished";
}

/// Metric-name vocabulary (histograms, all virtual-time µs unless noted).
pub mod hist {
    /// Transport message delay: submit → first complete delivery.
    pub const MESSAGE_DELAY_US: &str = "message_delay_us";
    /// Session delay (the paper's discovery/retrieval latency metric).
    pub const SESSION_DELAY_US: &str = "session_delay_us";
    /// Gap between successive query rounds of one consumer (retrieval
    /// round latency).
    pub const ROUND_GAP_US: &str = "round_gap_us";
    /// Retransmission attempts per reliable message (count, not µs).
    pub const RETRANS_PER_MSG: &str = "retrans_per_msg";
    /// OS send-buffer occupancy after each enqueue (bytes, not µs).
    pub const BUFFER_OCCUPANCY: &str = "buffer_occupancy_bytes";
}

/// The registry: sorted maps of counters and histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to a counter.
    pub fn inc(&mut self, node: u32, phase: Phase, name: &'static str, by: u64) {
        *self
            .counters
            .entry(MetricKey { node, phase, name })
            .or_insert(0) += by;
    }

    /// Records a histogram sample.
    pub fn observe(&mut self, node: u32, phase: Phase, name: &'static str, v: u64) {
        self.histograms
            .entry(MetricKey { node, phase, name })
            .or_default()
            .observe(v);
    }

    /// Reads one counter (0 when absent).
    #[must_use]
    pub fn counter(&self, node: u32, phase: Phase, name: &str) -> u64 {
        self.counters
            .get(&MetricKey {
                node,
                phase,
                // Lookup by value; the key stores 'static names but compares
                // by content, so any equal &str finds it.
                name: lookup_name(name),
            })
            .copied()
            .unwrap_or(0)
    }

    /// Reads one histogram.
    #[must_use]
    pub fn histogram(&self, node: u32, phase: Phase, name: &str) -> Option<&Histogram> {
        self.histograms.get(&MetricKey {
            node,
            phase,
            name: lookup_name(name),
        })
    }

    /// Iterates all counters in sorted key order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// Iterates all histograms in sorted key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &Histogram)> {
        self.histograms.iter()
    }

    /// Sum of a counter over all nodes, per phase (sorted by phase).
    #[must_use]
    pub fn phase_totals(&self, name: &str) -> BTreeMap<Phase, u64> {
        let mut out = BTreeMap::new();
        for (k, v) in &self.counters {
            if k.name == name {
                *out.entry(k.phase).or_insert(0) += v;
            }
        }
        out
    }

    /// Merge of a histogram over all nodes, per phase.
    #[must_use]
    pub fn phase_histograms(&self, name: &str) -> BTreeMap<Phase, Histogram> {
        let mut out: BTreeMap<Phase, Histogram> = BTreeMap::new();
        for (k, h) in &self.histograms {
            if k.name == name {
                out.entry(k.phase).or_default().merge(h);
            }
        }
        out
    }

    /// Builds the standard registry from a recorded trace: per-phase
    /// traffic counters, message/session delay histograms, per-message
    /// retransmission counts, round gaps and buffer occupancy.
    #[must_use]
    pub fn from_trace(events: &[TraceEvent]) -> Self {
        let mut reg = Self::new();
        // Open transport sends awaiting their first delivery, keyed by
        // (origin, seq): value = (submit time, traffic class).
        let mut open_sends: DetMap<(u32, u64), (u64, u8)> = DetMap::default();
        // Retransmission attempts per open message.
        let mut retrans: DetMap<(u32, u64), u64> = DetMap::default();
        // Last query-round timestamp per (consumer, phase).
        let mut last_query: DetMap<(u32, Phase), u64> = DetMap::default();
        for ev in events {
            let n = ev.node;
            match &ev.kind {
                TraceKind::TxStart { bytes, class, .. } => {
                    let phase = Phase::from_class(*class as u8);
                    reg.inc(n, phase, name::FRAMES_SENT, 1);
                    reg.inc(n, phase, name::BYTES_SENT, *bytes);
                }
                TraceKind::FrameDelivered { .. } => {
                    reg.inc(n, Phase::Radio, name::FRAMES_DELIVERED, 1);
                }
                TraceKind::FrameCollided { .. }
                | TraceKind::FrameLostRandom { .. }
                | TraceKind::FrameHalfDuplex { .. } => {
                    reg.inc(n, Phase::Radio, name::FRAMES_LOST, 1);
                }
                TraceKind::FrameDroppedOs { .. } => {
                    reg.inc(n, Phase::Radio, name::FRAMES_DROPPED_OS, 1);
                }
                TraceKind::QueueDepth { bytes } => {
                    reg.observe(n, Phase::Radio, hist::BUFFER_OCCUPANCY, *bytes);
                }
                TraceKind::MessageSent { seq, class, .. } => {
                    let phase = Phase::from_class(*class as u8);
                    reg.inc(n, phase, name::MESSAGES_SENT, 1);
                    open_sends.insert((n, *seq), (ev.at_us, *class as u8));
                }
                TraceKind::MessageDelivered { origin, seq, .. } => {
                    reg.inc(n, Phase::Transport, name::MESSAGES_DELIVERED, 1);
                    let key = (*origin as u32, *seq);
                    if let Some(&(sent_at, class)) = open_sends.get(&key) {
                        reg.observe(
                            *origin as u32,
                            Phase::from_class(class),
                            hist::MESSAGE_DELAY_US,
                            ev.at_us.saturating_sub(sent_at),
                        );
                        // First delivery only: later receivers of the same
                        // message do not re-sample the delay.
                        open_sends.remove(&key);
                    }
                }
                TraceKind::MessageFailed { seq } => {
                    reg.inc(n, Phase::Transport, name::MESSAGES_FAILED, 1);
                    let c = retrans.remove(&(n, *seq)).unwrap_or(0);
                    reg.observe(n, Phase::Transport, hist::RETRANS_PER_MSG, c);
                }
                TraceKind::MessageAcked { seq } => {
                    let c = retrans.remove(&(n, *seq)).unwrap_or(0);
                    reg.observe(n, Phase::Transport, hist::RETRANS_PER_MSG, c);
                }
                TraceKind::Retransmit { seq, frames } => {
                    reg.inc(n, Phase::Transport, name::RETRANSMISSIONS, *frames);
                    *retrans.entry((n, *seq)).or_insert(0) += 1;
                }
                TraceKind::QuerySent { .. } => {
                    reg.inc(n, ev.phase, name::QUERIES_SENT, 1);
                    if let Some(&prev) = last_query.get(&(n, ev.phase)) {
                        reg.observe(
                            n,
                            ev.phase,
                            hist::ROUND_GAP_US,
                            ev.at_us.saturating_sub(prev),
                        );
                    }
                    last_query.insert((n, ev.phase), ev.at_us);
                }
                TraceKind::ResponseSent { .. } => {
                    reg.inc(n, ev.phase, name::RESPONSES_SENT, 1);
                }
                TraceKind::SessionFinished { delay_us, .. } => {
                    reg.inc(n, ev.phase, name::SESSIONS_FINISHED, 1);
                    reg.observe(n, ev.phase, hist::SESSION_DELAY_US, *delay_us);
                }
                _ => {}
            }
        }
        reg
    }

    /// Renders an aggregated (all-nodes) summary table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("counters (all nodes):\n");
        let mut totals: BTreeMap<(&'static str, Phase), u64> = BTreeMap::new();
        for (k, v) in &self.counters {
            *totals.entry((k.name, k.phase)).or_insert(0) += v;
        }
        for ((cname, phase), v) in &totals {
            out.push_str(&format!("  {cname:<22} {:<10} {v}\n", phase.name()));
        }
        out.push_str("histograms (all nodes):\n");
        let mut merged: BTreeMap<(&'static str, Phase), Histogram> = BTreeMap::new();
        for (k, h) in &self.histograms {
            merged.entry((k.name, k.phase)).or_default().merge(h);
        }
        for ((hname, phase), h) in &merged {
            out.push_str(&format!(
                "  {hname:<22} {:<10} n={} min={} p50~{} p95~{} max={} mean={}\n",
                phase.name(),
                h.count(),
                h.min(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.max(),
                h.mean(),
            ));
        }
        out
    }
}

/// Interns a dynamic lookup name onto the fixed vocabulary so `MetricKey`
/// can keep `&'static str`. Unknown names get a sentinel that matches
/// nothing.
fn lookup_name(s: &str) -> &'static str {
    const ALL: [&str; 17] = [
        name::FRAMES_SENT,
        name::BYTES_SENT,
        name::FRAMES_DELIVERED,
        name::FRAMES_LOST,
        name::FRAMES_DROPPED_OS,
        name::MESSAGES_SENT,
        name::MESSAGES_DELIVERED,
        name::MESSAGES_FAILED,
        name::RETRANSMISSIONS,
        name::QUERIES_SENT,
        name::RESPONSES_SENT,
        name::SESSIONS_FINISHED,
        hist::MESSAGE_DELAY_US,
        hist::SESSION_DELAY_US,
        hist::ROUND_GAP_US,
        hist::RETRANS_PER_MSG,
        hist::BUFFER_OCCUPANCY,
    ];
    ALL.iter().find(|&&n| n == s).copied().unwrap_or("\u{0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_moments() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 4, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 107);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 21);
        assert_eq!(h.quantile(0.0), 0);
        assert!(h.quantile(1.0) >= 64, "p100 lands in the 64..128 bucket");
    }

    #[test]
    fn histogram_quantile_is_monotone() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let mut prev = 0;
        for i in 0..=10 {
            let q = h.quantile(f64::from(i) / 10.0);
            assert!(q >= prev, "q({i}/10) = {q} < {prev}");
            prev = q;
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn registry_counts_and_totals() {
        let mut r = MetricsRegistry::new();
        r.inc(0, Phase::Pdd, name::FRAMES_SENT, 2);
        r.inc(1, Phase::Pdd, name::FRAMES_SENT, 3);
        r.inc(1, Phase::Pdr, name::FRAMES_SENT, 5);
        assert_eq!(r.counter(1, Phase::Pdd, name::FRAMES_SENT), 3);
        assert_eq!(r.counter(9, Phase::Pdd, name::FRAMES_SENT), 0);
        let totals = r.phase_totals(name::FRAMES_SENT);
        assert_eq!(totals.get(&Phase::Pdd), Some(&5));
        assert_eq!(totals.get(&Phase::Pdr), Some(&5));
    }

    #[test]
    fn from_trace_builds_message_delay() {
        let events = vec![
            TraceEvent {
                at_us: 1000,
                node: 0,
                phase: Phase::Transport,
                kind: TraceKind::MessageSent {
                    seq: 1,
                    bytes: 500,
                    class: 1,
                },
            },
            TraceEvent {
                at_us: 3500,
                node: 4,
                phase: Phase::Transport,
                kind: TraceKind::MessageDelivered {
                    origin: 0,
                    seq: 1,
                    bytes: 500,
                    overheard: false,
                },
            },
        ];
        let reg = MetricsRegistry::from_trace(&events);
        let h = reg
            .histogram(0, Phase::Pdd, hist::MESSAGE_DELAY_US)
            .expect("delay sampled");
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 2500);
        assert_eq!(reg.counter(0, Phase::Pdd, name::MESSAGES_SENT), 1);
        assert_eq!(
            reg.counter(4, Phase::Transport, name::MESSAGES_DELIVERED),
            1
        );
        assert!(reg.render().contains("message_delay_us"));
    }

    #[test]
    fn registry_iteration_is_sorted() {
        let mut r = MetricsRegistry::new();
        r.inc(5, Phase::Mdr, name::BYTES_SENT, 1);
        r.inc(1, Phase::Pdd, name::BYTES_SENT, 1);
        r.inc(1, Phase::Kernel, name::FRAMES_SENT, 1);
        let keys: Vec<MetricKey> = r.counters().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
