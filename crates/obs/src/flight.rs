//! Always-on flight recorder: bounded per-node event rings.
//!
//! A [`FlightRecorder`] is the sink a long adversarial run can afford to
//! keep installed from the first event: each node gets a fixed-capacity
//! ring, so memory is `O(nodes × capacity)` no matter how long the run,
//! and the steady state allocates nothing — rings fill once, then
//! overwrite in place ([`TraceEvent`] payloads are plain integers, so an
//! overwrite is a memcpy, not an allocation). A global record counter is
//! stored next to every event so [`FlightRecorder::dump`] can merge the
//! rings back into exact emission order even when timestamps tie.
//!
//! Per-node (rather than one global) rings are what make the dump useful
//! at a violation: a chatty relay cannot evict the quiet consumer's last
//! session events, so `pds-obs explain` still sees both ends of the
//! failing exchange. The DST harness dumps the recorder when an invariant
//! trips, and the replay-digest gate does the same at first divergence —
//! turning every minimized seed into a causal narrative.

use crate::event::TraceEvent;
use crate::json;
use crate::sink::TraceSink;
use std::any::Any;
use std::io::{self, Write};
use std::path::Path;

/// Default per-node ring capacity: enough for the last couple of protocol
/// rounds per node while keeping a 1000-node recorder's working set under
/// ~5 MB. Capacity is the recorder's one real cost knob: the steady-state
/// overwrite is a write into the node's ring, so once the rings outgrow
/// the cache every recorded event pays a miss — 1024 slots/node measures
/// ~2.6× the record cost of 256 on a 1000-node run. The default was 256
/// until the slab/SoA kernel diet (DESIGN.md §16) made the bare event
/// loop ~2.4× faster, which turned those misses into the dominant cost of
/// an instrumented run; at 64 the rings are mostly cache-resident and the
/// recorder fits the `--flight-check` 10% overhead budget again.
pub const DEFAULT_NODE_CAPACITY: usize = 64;

/// One node's bounded ring: events tagged with the global record sequence
/// at which they were captured.
#[derive(Debug)]
struct NodeRing {
    /// `(global_seq, event)` pairs; grows to `capacity` once, then is
    /// overwritten in place.
    buf: Vec<(u64, TraceEvent)>,
    /// Next overwrite position once `buf.len() == capacity`.
    head: usize,
}

/// Bounded per-node ring sink (see module docs).
#[derive(Debug)]
pub struct FlightRecorder {
    /// Ring per node id; index `node as usize`, grown lazily. Slot is
    /// `None` until the node's first event.
    nodes: Vec<Option<NodeRing>>,
    /// Ring for node-less events (`node == u32::MAX`: control closures,
    /// sweeps).
    global: Option<NodeRing>,
    capacity: usize,
    /// Global record counter; also the merge key for [`FlightRecorder::dump`].
    seq: u64,
    /// Events overwritten because their node's ring was full.
    dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_NODE_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events per node (clamped to
    /// at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            nodes: Vec::new(),
            global: None,
            capacity: capacity.max(1),
            seq: 0,
            dropped: 0,
        }
    }

    /// Per-node ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events recorded over the run (retained or overwritten).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// Events lost to ring overwrites.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently retained across all rings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rings().map(|r| r.buf.len()).sum()
    }

    /// Whether nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn rings(&self) -> impl Iterator<Item = &NodeRing> {
        self.nodes.iter().flatten().chain(self.global.iter())
    }

    fn ring_for(&mut self, node: u32) -> &mut NodeRing {
        let capacity = self.capacity;
        let slot = if node == u32::MAX {
            &mut self.global
        } else {
            let idx = node as usize;
            if idx >= self.nodes.len() {
                self.nodes.resize_with(idx + 1, || None);
            }
            &mut self.nodes[idx]
        };
        slot.get_or_insert_with(|| NodeRing {
            buf: Vec::with_capacity(capacity),
            head: 0,
        })
    }

    /// The retained events merged back into emission order.
    ///
    /// Dumps are ordinary traces: every analysis (`sessions`,
    /// `critical-path`, `explain`, `diff`) and the JSONL codec apply
    /// unchanged. Within each ring events are already in emission order,
    /// so this is a k-way merge by global sequence, not a sort.
    #[must_use]
    pub fn dump(&self) -> Vec<TraceEvent> {
        let mut runs: Vec<&[(u64, TraceEvent)]> = Vec::new();
        for ring in self.rings() {
            // Ring layout is [head..] ++ [..head] in emission order.
            let (older, newer) = ring.buf.split_at(ring.head);
            if !newer.is_empty() {
                runs.push(newer);
            }
            if !older.is_empty() {
                runs.push(older);
            }
        }
        let total = runs.iter().map(|r| r.len()).sum();
        let mut out = Vec::with_capacity(total);
        let mut cursors = vec![0usize; runs.len()];
        for _ in 0..total {
            let mut best: Option<usize> = None;
            for (i, run) in runs.iter().enumerate() {
                if cursors[i] < run.len() {
                    let candidate = run[cursors[i]].0;
                    if best.is_none_or(|b: usize| candidate < runs[b][cursors[b]].0) {
                        best = Some(i);
                    }
                }
            }
            let Some(b) = best else { break };
            out.push(runs[b][cursors[b]].1.clone());
            cursors[b] += 1;
        }
        out
    }

    /// Writes the merged dump as JSONL.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        for ev in self.dump() {
            let mut line = json::to_json(&ev);
            line.push('\n');
            w.write_all(line.as_bytes())?;
        }
        w.flush()
    }

    /// Writes the merged dump to `path` as a JSONL trace file readable by
    /// `pds-obs explain`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn dump_to_file(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_jsonl(io::BufWriter::new(file))
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, ev: &TraceEvent) {
        let seq = self.seq;
        self.seq += 1;
        let capacity = self.capacity;
        let ring = self.ring_for(ev.node);
        if ring.buf.len() < capacity {
            ring.buf.push((seq, ev.clone()));
        } else {
            // Steady state: overwrite in place, zero allocation. Branchful
            // wrap instead of `% capacity` — the modulo is an integer
            // division on the per-event hot path.
            ring.buf[ring.head] = (seq, ev.clone());
            ring.head += 1;
            if ring.head == capacity {
                ring.head = 0;
            }
            self.dropped += 1;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Phase, TraceKind};

    fn ev(at: u64, node: u32) -> TraceEvent {
        TraceEvent {
            at_us: at,
            node,
            phase: Phase::Kernel,
            kind: TraceKind::TimerFired { timer: at },
        }
    }

    #[test]
    fn dump_preserves_emission_order_across_nodes() {
        let mut fr = FlightRecorder::new(8);
        // Interleave three nodes plus a node-less event.
        let script = [(1u64, 0u32), (1, 1), (2, u32::MAX), (3, 1), (3, 0), (4, 2)];
        for (at, node) in script {
            fr.record(&ev(at, node));
        }
        let got: Vec<(u64, u32)> = fr.dump().iter().map(|e| (e.at_us, e.node)).collect();
        assert_eq!(got, script.to_vec());
        assert_eq!(fr.recorded(), 6);
        assert_eq!(fr.dropped(), 0);
    }

    #[test]
    fn per_node_rings_keep_quiet_nodes_intact() {
        let mut fr = FlightRecorder::new(4);
        // One early event from the quiet node, then a flood from node 0.
        fr.record(&ev(1, 7));
        for at in 2..100 {
            fr.record(&ev(at, 0));
        }
        let dump = fr.dump();
        // The quiet node's lone event survived the flood...
        assert!(dump.iter().any(|e| e.node == 7 && e.at_us == 1));
        // ...while node 0 kept only its last 4 events, in order.
        let node0: Vec<u64> = dump
            .iter()
            .filter(|e| e.node == 0)
            .map(|e| e.at_us)
            .collect();
        assert_eq!(node0, vec![96, 97, 98, 99]);
        assert_eq!(fr.dropped(), 94);
        assert_eq!(fr.len(), 5);
    }

    #[test]
    fn steady_state_capacity_is_fixed() {
        let mut fr = FlightRecorder::new(3);
        for at in 0..50 {
            fr.record(&ev(at, 1));
        }
        let ring = fr.nodes[1].as_ref().expect("ring exists");
        assert_eq!(ring.buf.len(), 3);
        assert_eq!(ring.buf.capacity(), 3, "ring never grows past capacity");
    }

    #[test]
    fn jsonl_dump_round_trips() {
        let mut fr = FlightRecorder::new(16);
        for at in 0..10 {
            fr.record(&ev(at, (at % 3) as u32));
        }
        let mut buf = Vec::new();
        fr.write_jsonl(&mut buf).expect("write");
        let back = crate::json::read_trace(&buf[..]).expect("parse");
        assert_eq!(back, fr.dump());
    }

    #[test]
    fn downcasts_through_trait_object() {
        let mut boxed: Box<dyn TraceSink> = Box::new(FlightRecorder::new(2));
        boxed.record(&ev(1, 0));
        let fr = boxed
            .as_any()
            .downcast_ref::<FlightRecorder>()
            .expect("flight recorder");
        assert_eq!(fr.recorded(), 1);
    }
}
