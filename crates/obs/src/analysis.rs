//! Trace analysis: overhead breakdowns, delay CDFs, and trace diffing.
//!
//! Everything here operates on in-memory `Vec<TraceEvent>` slices as read
//! back by [`crate::json::read_trace_file`]; the `pds-obs` binary is a thin
//! argument parser over these functions so tests can exercise the exact
//! logic the CLI ships.

use crate::event::{Phase, TraceEvent, TraceKind};
use crate::metrics::{hist, MetricsRegistry};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-phase message overhead extracted from a trace: on-air frames and
/// bytes attributed to each traffic class (the paper's Fig. 9 breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseOverhead {
    /// Frames transmitted in this phase.
    pub frames: u64,
    /// On-air bytes transmitted in this phase.
    pub bytes: u64,
}

/// Sums on-air overhead per protocol phase from `TxStart` events.
#[must_use]
pub fn phase_overhead(events: &[TraceEvent]) -> BTreeMap<Phase, PhaseOverhead> {
    let mut out: BTreeMap<Phase, PhaseOverhead> = BTreeMap::new();
    for ev in events {
        if let TraceKind::TxStart { bytes, class, .. } = ev.kind {
            let e = out.entry(Phase::from_class(class as u8)).or_default();
            e.frames += 1;
            e.bytes += bytes;
        }
    }
    out
}

/// Transport-level message delays (submit → first complete delivery) in
/// virtual µs, in trace order.
#[must_use]
pub fn message_delays_us(events: &[TraceEvent]) -> Vec<u64> {
    // The registry's histogram buckets are log2-coarse; walk the trace
    // directly for exact per-message samples.
    let mut out = Vec::new();
    let mut open: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for ev in events {
        match ev.kind {
            TraceKind::MessageSent { seq, .. } => {
                open.insert((u64::from(ev.node), seq), ev.at_us);
            }
            TraceKind::MessageDelivered { origin, seq, .. } => {
                if let Some(sent) = open.remove(&(origin, seq)) {
                    out.push(ev.at_us.saturating_sub(sent));
                }
            }
            _ => {}
        }
    }
    out
}

/// Per-phase session delays (the paper's discovery / retrieval latency) in
/// virtual µs, in trace order.
#[must_use]
pub fn session_delays_us(events: &[TraceEvent]) -> BTreeMap<Phase, Vec<u64>> {
    let mut out: BTreeMap<Phase, Vec<u64>> = BTreeMap::new();
    for ev in events {
        if let TraceKind::SessionFinished { delay_us, .. } = ev.kind {
            out.entry(ev.phase).or_default().push(delay_us);
        }
    }
    out
}

/// Empirical CDF of `samples`: sorted `(value, cumulative_fraction)` pairs.
#[must_use]
pub fn cdf(samples: &[u64]) -> Vec<(u64, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// The first point where two traces disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 0-based index into both traces of the first differing event.
    pub index: usize,
    /// Event at `index` in the left trace (`None` = left ended first).
    pub left: Option<TraceEvent>,
    /// Event at `index` in the right trace (`None` = right ended first).
    pub right: Option<TraceEvent>,
}

/// Finds the first index at which the traces differ, or `None` when they
/// are identical (same events, same order, same length).
#[must_use]
pub fn first_divergence(left: &[TraceEvent], right: &[TraceEvent]) -> Option<Divergence> {
    let shared = left.len().min(right.len());
    for i in 0..shared {
        if left[i] != right[i] {
            return Some(Divergence {
                index: i,
                left: Some(left[i].clone()),
                right: Some(right[i].clone()),
            });
        }
    }
    if left.len() != right.len() {
        return Some(Divergence {
            index: shared,
            left: left.get(shared).cloned(),
            right: right.get(shared).cloned(),
        });
    }
    None
}

/// Renders a divergence with up to `context` preceding (shared) events —
/// the shape a replay-digest mismatch investigation starts from.
#[must_use]
pub fn render_divergence(
    left: &[TraceEvent],
    _right: &[TraceEvent],
    d: &Divergence,
    context: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "first divergence at event #{}", d.index);
    let start = d.index.saturating_sub(context);
    for (i, ev) in left.iter().enumerate().take(d.index).skip(start) {
        let _ = writeln!(out, "  #{i} both  {ev}");
    }
    match &d.left {
        Some(ev) => {
            let _ = writeln!(out, "  #{} left  {ev}", d.index);
        }
        None => {
            let _ = writeln!(out, "  #{} left  <trace ends>", d.index);
        }
    }
    match &d.right {
        Some(ev) => {
            let _ = writeln!(out, "  #{} right {ev}", d.index);
        }
        None => {
            let _ = writeln!(out, "  #{} right <trace ends>", d.index);
        }
    }
    out
}

/// Renders the per-phase overhead table.
#[must_use]
pub fn render_overhead(events: &[TraceEvent]) -> String {
    let table = phase_overhead(events);
    let total_bytes: u64 = table.values().map(|e| e.bytes).sum();
    let mut out = String::from("on-air overhead by phase:\n");
    let _ = writeln!(
        out,
        "  {:<10} {:>8} {:>12} {:>7}",
        "phase", "frames", "bytes", "share"
    );
    for (phase, e) in &table {
        let share = if total_bytes == 0 {
            0.0
        } else {
            100.0 * e.bytes as f64 / total_bytes as f64
        };
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>12} {:>6.1}%",
            phase.name(),
            e.frames,
            e.bytes,
            share
        );
    }
    let _ = writeln!(
        out,
        "  {:<10} {:>8} {:>12}",
        "total",
        table.values().map(|e| e.frames).sum::<u64>(),
        total_bytes
    );
    out
}

/// Renders an ASCII CDF of `samples` (virtual µs) with ~`rows` quantile
/// rows.
#[must_use]
pub fn render_cdf(title: &str, samples: &[u64], rows: usize) -> String {
    let mut out = format!("{title} (n={}):\n", samples.len());
    let curve = cdf(samples);
    if curve.is_empty() {
        out.push_str("  <no samples>\n");
        return out;
    }
    let rows = rows.max(2);
    let width = 40usize;
    for r in 0..=rows {
        let q = r as f64 / rows as f64;
        // Value at this cumulative fraction.
        let idx = ((q * (curve.len() - 1) as f64).round() as usize).min(curve.len() - 1);
        let (v, frac) = curve[idx];
        let bar = "#".repeat((frac * width as f64).round() as usize);
        let _ = writeln!(out, "  p{:<5.1} {:>12} µs |{bar}", q * 100.0, v);
    }
    out
}

/// Renders the full summary: event counts, overhead table, delay CDFs and
/// the aggregated metrics registry.
#[must_use]
pub fn render_summary(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace: {} events", events.len());
    if let (Some(first), Some(last)) = (events.first(), events.last()) {
        let _ = writeln!(
            out,
            "span : {} µs → {} µs  ({} µs of virtual time)",
            first.at_us,
            last.at_us,
            last.at_us.saturating_sub(first.at_us)
        );
    }
    // Event-kind census, sorted by name.
    let mut census: BTreeMap<&'static str, u64> = BTreeMap::new();
    for ev in events {
        *census.entry(ev.kind.name()).or_insert(0) += 1;
    }
    out.push_str("events by kind:\n");
    for (kind_name, count) in &census {
        let _ = writeln!(out, "  {kind_name:<20} {count}");
    }
    out.push('\n');
    out.push_str(&render_overhead(events));
    out.push('\n');
    let delays = message_delays_us(events);
    if !delays.is_empty() {
        out.push_str(&render_cdf("message delay CDF", &delays, 10));
        out.push('\n');
    }
    for (phase, samples) in session_delays_us(events) {
        out.push_str(&render_cdf(
            &format!("{} session delay CDF", phase.name()),
            &samples,
            10,
        ));
        out.push('\n');
    }
    out.push_str(&MetricsRegistry::from_trace(events).render());
    out
}

/// Convenience used by the bench report: per-phase session-delay p50/p95
/// from a registry built off a trace.
#[must_use]
pub fn session_delay_quantiles(events: &[TraceEvent]) -> BTreeMap<Phase, (u64, u64)> {
    let reg = MetricsRegistry::from_trace(events);
    reg.phase_histograms(hist::SESSION_DELAY_US)
        .into_iter()
        .map(|(p, h)| (p, (h.quantile(0.5), h.quantile(0.95))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, node: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at_us: at,
            node,
            phase: Phase::Kernel,
            kind,
        }
    }

    fn tx(at: u64, node: u32, bytes: u64, class: u64) -> TraceEvent {
        TraceEvent {
            at_us: at,
            node,
            phase: Phase::Radio,
            kind: TraceKind::TxStart {
                tx: at,
                origin: u64::from(node),
                seq: at,
                bytes,
                class,
            },
        }
    }

    #[test]
    fn overhead_splits_by_class() {
        let events = vec![
            tx(1, 0, 100, 1),
            tx(2, 0, 200, 1),
            tx(3, 1, 50, 2),
            tx(4, 2, 10, 0),
        ];
        let table = phase_overhead(&events);
        assert_eq!(table[&Phase::Pdd].frames, 2);
        assert_eq!(table[&Phase::Pdd].bytes, 300);
        assert_eq!(table[&Phase::Pdr].bytes, 50);
        assert_eq!(table[&Phase::Other].bytes, 10);
        let rendered = render_overhead(&events);
        assert!(rendered.contains("pdd"), "{rendered}");
        assert!(rendered.contains("360"), "total bytes: {rendered}");
    }

    #[test]
    fn cdf_is_sorted_and_normalized() {
        let c = cdf(&[30, 10, 20, 20]);
        assert_eq!(c.len(), 4);
        assert_eq!(c[0].0, 10);
        assert_eq!(c[3].0, 30);
        assert!((c[3].1 - 1.0).abs() < 1e-12);
        assert!(cdf(&[]).is_empty());
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let a = vec![ev(1, 0, TraceKind::NodeStart), ev(2, 1, TraceKind::Sweep)];
        assert_eq!(first_divergence(&a, &a.clone()), None);
    }

    #[test]
    fn divergence_reports_first_differing_event() {
        let a = vec![
            ev(1, 0, TraceKind::NodeStart),
            ev(5, 0, TraceKind::TimerFired { timer: 1 }),
            ev(9, 0, TraceKind::Sweep),
        ];
        let mut b = a.clone();
        b[1] = ev(6, 0, TraceKind::TimerFired { timer: 1 });
        let d = first_divergence(&a, &b).expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.left.as_ref().map(|e| e.at_us), Some(5));
        assert_eq!(d.right.as_ref().map(|e| e.at_us), Some(6));
        let rendered = render_divergence(&a, &b, &d, 2);
        assert!(
            rendered.contains("first divergence at event #1"),
            "{rendered}"
        );
        assert!(rendered.contains("left"), "{rendered}");
    }

    #[test]
    fn length_mismatch_is_a_divergence() {
        let a = vec![ev(1, 0, TraceKind::NodeStart)];
        let b = vec![ev(1, 0, TraceKind::NodeStart), ev(2, 0, TraceKind::Sweep)];
        let d = first_divergence(&a, &b).expect("diverges");
        assert_eq!(d.index, 1);
        assert!(d.left.is_none());
        assert_eq!(d.right.as_ref().map(|e| e.at_us), Some(2));
        let rendered = render_divergence(&a, &b, &d, 4);
        assert!(rendered.contains("<trace ends>"), "{rendered}");
    }

    #[test]
    fn message_delay_pairs_sent_and_delivered() {
        let events = vec![
            TraceEvent {
                at_us: 100,
                node: 3,
                phase: Phase::Transport,
                kind: TraceKind::MessageSent {
                    seq: 7,
                    bytes: 64,
                    class: 2,
                },
            },
            TraceEvent {
                at_us: 450,
                node: 8,
                phase: Phase::Transport,
                kind: TraceKind::MessageDelivered {
                    origin: 3,
                    seq: 7,
                    bytes: 64,
                    overheard: false,
                },
            },
        ];
        assert_eq!(message_delays_us(&events), vec![350]);
    }

    #[test]
    fn summary_renders_all_sections() {
        let mut events = vec![tx(1, 0, 100, 1)];
        events.push(TraceEvent {
            at_us: 900,
            node: 0,
            phase: Phase::Pdd,
            kind: TraceKind::SessionFinished {
                session: 1,
                delay_us: 800,
                rounds: 2,
                items: 5,
            },
        });
        let s = render_summary(&events);
        assert!(s.contains("2 events"), "{s}");
        assert!(s.contains("tx_start"), "{s}");
        assert!(s.contains("pdd session delay CDF"), "{s}");
    }
}
