//! Black-box tests of the `pds-obs` binary: exit codes and the shape of
//! `diff` / `summary` output over small synthetic JSONL traces.

use pds_obs::{JsonlSink, Phase, TraceEvent, TraceKind, TraceSink};
use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pds-obs"))
}

fn write_trace(name: &str, events: &[TraceEvent]) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("pds-obs-cli-{}-{name}.jsonl", std::process::id()));
    let mut sink = JsonlSink::create(&path).expect("create trace");
    for ev in events {
        sink.record(ev);
    }
    drop(sink.into_inner());
    path
}

fn ev(at_us: u64, node: u32, phase: Phase, kind: TraceKind) -> TraceEvent {
    TraceEvent {
        at_us,
        node,
        phase,
        kind,
    }
}

fn base_trace() -> Vec<TraceEvent> {
    vec![
        ev(0, 0, Phase::Kernel, TraceKind::NodeStart),
        ev(10, 0, Phase::Pdd, TraceKind::SessionStarted { session: 1 }),
        ev(
            10,
            0,
            Phase::Pdd,
            TraceKind::QuerySent {
                query: 7,
                session: 1,
                seq: 1,
            },
        ),
        ev(
            15,
            0,
            Phase::Radio,
            TraceKind::TxStart {
                tx: 1,
                origin: 0,
                seq: 1,
                bytes: 80,
                class: 1,
            },
        ),
        ev(
            900,
            0,
            Phase::Pdd,
            TraceKind::SessionFinished {
                session: 1,
                delay_us: 890,
                rounds: 1,
                items: 3,
            },
        ),
    ]
}

#[test]
fn diff_identical_traces_exits_zero() {
    let a = write_trace("same-a", &base_trace());
    let b = write_trace("same-b", &base_trace());
    let out = bin().args(["diff"]).arg(&a).arg(&b).output().expect("run");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "identical traces must exit 0");
    assert!(stdout.contains("traces identical"), "{stdout}");
}

#[test]
fn diff_divergent_traces_exits_one_and_pinpoints_event() {
    let left = base_trace();
    let mut right = base_trace();
    // Same prefix, diverging third event: a different query id.
    right[2] = ev(
        10,
        0,
        Phase::Pdd,
        TraceKind::QuerySent {
            query: 9,
            session: 1,
            seq: 1,
        },
    );
    let a = write_trace("div-a", &left);
    let b = write_trace("div-b", &right);
    let out = bin().args(["diff"]).arg(&a).arg(&b).output().expect("run");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "divergent traces must exit 1");
    assert!(stdout.contains("first divergence at event #2"), "{stdout}");
    assert!(stdout.contains("query: 7"), "{stdout}");
    assert!(stdout.contains("query: 9"), "{stdout}");
}

#[test]
fn summary_renders_phases_and_exits_zero() {
    let a = write_trace("summary", &base_trace());
    let out = bin().args(["summary"]).arg(&a).output().expect("run");
    std::fs::remove_file(&a).ok();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("pdd"), "{stdout}");
}

#[test]
fn sessions_and_critical_path_render_tables() {
    let a = write_trace("sessions", &base_trace());
    let out = bin().args(["sessions"]).arg(&a).output().expect("run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("sessions: 1"), "{stdout}");
    assert!(stdout.contains("n0"), "{stdout}");

    let out = bin().args(["critical-path"]).arg(&a).output().expect("run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(
        stdout.contains("critical-path delay decomposition"),
        "{stdout}"
    );
    assert!(stdout.contains("aggregate share by phase"), "{stdout}");
    std::fs::remove_file(&a).ok();
}

#[test]
fn explain_renders_a_narrative() {
    let a = write_trace("explain", &base_trace());
    let out = bin().args(["explain"]).arg(&a).output().expect("run");
    std::fs::remove_file(&a).ok();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("session n0#1 (pdd)"), "{stdout}");
    assert!(stdout.contains("narrative"), "{stdout}");
}

#[test]
fn usage_and_parse_errors_exit_two() {
    let out = bin().output().expect("run");
    assert_eq!(out.status.code(), Some(2), "no args is a usage error");
    let out = bin()
        .args(["summary", "/nonexistent/trace.jsonl"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2), "unreadable trace is an error");
}
