//! Host crate for the repository-level integration tests in `/tests`.
#![forbid(unsafe_code)]
