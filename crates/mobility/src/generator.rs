//! Poisson-process trace generation from observation parameters.

use crate::trace::{MobilityTrace, PersonId, TraceAction, TraceEvent};
use pds_sim::{Position, SimDuration, SimRng, SimTime};

/// Aggregate observation parameters for a venue, as the paper reports them
/// (population plus join/leave/move rates per minute; §VI-B-2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservationParams {
    /// Area width in meters.
    pub width_m: f64,
    /// Area height in meters.
    pub height_m: f64,
    /// Typical number of people present.
    pub population: usize,
    /// People entering per minute.
    pub joins_per_min: f64,
    /// People leaving per minute.
    pub leaves_per_min: f64,
    /// People relocating within the area per minute.
    pub moves_per_min: f64,
    /// Walking speed in m/s.
    pub speed_mps: f64,
}

impl ObservationParams {
    fn random_pos(&self, rng: &mut SimRng) -> Position {
        Position::new(
            rng.range_f64(0.0, self.width_m),
            rng.range_f64(0.0, self.height_m),
        )
    }
}

/// A streaming, seeded mobility event source: the same Poisson merge that
/// [`MobilityTrace::generate`] materializes, pulled one [`TraceEvent`] at
/// a time.
///
/// Memory is O(people currently present) regardless of duration — this is
/// the primitive city-scale scenarios install directly (see
/// `StreamInstaller`), where an hours-long trace for 100k people would
/// otherwise materialize millions of events up front. `generate` is
/// defined as "collect this stream", so the two are equal for the same
/// seed by construction (and a property test holds them to it).
#[derive(Debug)]
pub struct TraceStream {
    params: ObservationParams,
    multiplier: f64,
    /// Trace horizon in seconds; events past it end the stream.
    horizon: f64,
    rng: SimRng,
    next_person: u32,
    initial: Vec<(PersonId, Position)>,
    present: Vec<PersonId>,
    t_join: f64,
    t_leave: f64,
    t_move: f64,
}

impl TraceStream {
    /// Opens a stream over `duration` from `params`, rates scaled by
    /// `multiplier`, deterministic in `seed`. The initial `population`
    /// people are placed immediately (available via
    /// [`TraceStream::initial_people`]); join/leave/move events then
    /// arrive as independent Poisson processes. Leaves and moves pick a
    /// uniformly random present person; with nobody present the arrival
    /// is skipped, keeping the stream valid by construction.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is negative or not finite.
    #[must_use]
    pub fn new(
        params: &ObservationParams,
        duration: SimDuration,
        multiplier: f64,
        seed: u64,
    ) -> Self {
        assert!(
            multiplier.is_finite() && multiplier >= 0.0,
            "mobility multiplier must be nonnegative"
        );
        let mut rng = SimRng::new(seed ^ 0x6d6f_6269_6c69_7479);
        let mut next_person = 0u32;
        let initial: Vec<(PersonId, Position)> = (0..params.population)
            .map(|_| {
                let p = PersonId(next_person);
                next_person += 1;
                (p, params.random_pos(&mut rng))
            })
            .collect();
        let present: Vec<PersonId> = initial.iter().map(|&(p, _)| p).collect();

        let multiplier_rate = |per_min: f64| per_min * multiplier / 60.0;
        let t_join = draw_next(&mut rng, multiplier_rate(params.joins_per_min), 0.0);
        let t_leave = draw_next(&mut rng, multiplier_rate(params.leaves_per_min), 0.0);
        let t_move = draw_next(&mut rng, multiplier_rate(params.moves_per_min), 0.0);
        Self {
            params: *params,
            multiplier,
            horizon: duration.as_secs_f64(),
            rng,
            next_person,
            initial,
            present,
            t_join,
            t_leave,
            t_move,
        }
    }

    /// The initially placed people and their positions.
    #[must_use]
    pub fn initial_people(&self) -> &[(PersonId, Position)] {
        &self.initial
    }

    /// People currently present (as of the last event pulled).
    #[must_use]
    pub fn present_count(&self) -> usize {
        self.present.len()
    }

    fn rate(&self, per_min: f64) -> f64 {
        per_min * self.multiplier / 60.0
    }
}

fn draw_next(rng: &mut SimRng, r: f64, from: f64) -> f64 {
    if r <= 0.0 {
        f64::INFINITY
    } else {
        from + rng.exponential(1.0 / r)
    }
}

impl Iterator for TraceStream {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        // Merge three Poisson processes by drawing each next arrival. A
        // leave/move arrival with nobody present consumes its timer (and
        // rng draw) without emitting, exactly as the materializing
        // generator skipped it.
        loop {
            let t = self.t_join.min(self.t_leave).min(self.t_move);
            if t > self.horizon {
                return None;
            }
            let at = SimTime::from_secs_f64(t);
            if t == self.t_join {
                let person = PersonId(self.next_person);
                self.next_person += 1;
                self.present.push(person);
                let pos = self.params.random_pos(&mut self.rng);
                let r = self.rate(self.params.joins_per_min);
                self.t_join = draw_next(&mut self.rng, r, t);
                return Some(TraceEvent {
                    at,
                    person,
                    action: TraceAction::Join { pos },
                });
            } else if t == self.t_leave {
                let ev = if self.present.is_empty() {
                    None
                } else {
                    let idx = self.rng.range_u64(0, self.present.len() as u64) as usize;
                    let person = self.present.swap_remove(idx);
                    Some(TraceEvent {
                        at,
                        person,
                        action: TraceAction::Leave,
                    })
                };
                let r = self.rate(self.params.leaves_per_min);
                self.t_leave = draw_next(&mut self.rng, r, t);
                if let Some(ev) = ev {
                    return Some(ev);
                }
            } else {
                let ev = if self.present.is_empty() {
                    None
                } else {
                    let idx = self.rng.range_u64(0, self.present.len() as u64) as usize;
                    let person = *self.present.get(idx)?;
                    Some(TraceEvent {
                        at,
                        person,
                        action: TraceAction::Move {
                            dest: self.params.random_pos(&mut self.rng),
                            speed_mps: self.params.speed_mps,
                        },
                    })
                };
                let r = self.rate(self.params.moves_per_min);
                self.t_move = draw_next(&mut self.rng, r, t);
                if let Some(ev) = ev {
                    return Some(ev);
                }
            }
        }
    }
}

impl MobilityTrace {
    /// Generates a trace of length `duration` from `params`, with every rate
    /// scaled by `multiplier` (the paper sweeps 0.5×–2×). Deterministic in
    /// `seed`.
    ///
    /// Defined as collecting a [`TraceStream`] with the same arguments —
    /// the materialized and streaming forms are interchangeable for the
    /// same seed. Prefer the stream for long or large scenarios; memory
    /// here is O(events).
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is negative or not finite.
    #[must_use]
    pub fn generate(
        params: &ObservationParams,
        duration: SimDuration,
        multiplier: f64,
        seed: u64,
    ) -> Self {
        let mut stream = TraceStream::new(params, duration, multiplier, seed);
        let initial = stream.initial_people().to_vec();
        let events: Vec<TraceEvent> = stream.by_ref().collect();
        Self::from_parts(initial, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn hour() -> SimDuration {
        SimDuration::from_secs(3600)
    }

    #[test]
    fn generated_trace_is_valid() {
        for seed in 0..5 {
            let trace = MobilityTrace::generate(&presets::student_center(), hour(), 1.0, seed);
            trace.validate().expect("generated trace must be valid");
        }
    }

    #[test]
    fn rates_are_approximately_honored() {
        // Student center: 1 join, 1 leave, 4 moves per minute over an hour.
        let trace = MobilityTrace::generate(&presets::student_center(), hour(), 1.0, 7);
        let (joins, leaves, moves) = trace.event_counts();
        assert!((40..=85).contains(&joins), "joins = {joins}");
        assert!((40..=85).contains(&leaves), "leaves = {leaves}");
        assert!((180..=300).contains(&moves), "moves = {moves}");
    }

    #[test]
    fn multiplier_scales_event_counts() {
        let base = MobilityTrace::generate(&presets::student_center(), hour(), 1.0, 3);
        let double = MobilityTrace::generate(&presets::student_center(), hour(), 2.0, 3);
        let (j1, l1, m1) = base.event_counts();
        let (j2, l2, m2) = double.event_counts();
        let total1 = j1 + l1 + m1;
        let total2 = j2 + l2 + m2;
        let ratio = total2 as f64 / total1 as f64;
        assert!((1.6..2.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn zero_multiplier_freezes_everyone() {
        let trace = MobilityTrace::generate(&presets::classroom(), hour(), 0.0, 1);
        assert_eq!(trace.events().len(), 0);
        assert_eq!(trace.initial_people().len(), 30);
    }

    #[test]
    fn positions_stay_inside_area() {
        let p = presets::classroom();
        let trace = MobilityTrace::generate(&p, hour(), 2.0, 9);
        let inside = |pos: Position| {
            (0.0..=p.width_m).contains(&pos.x) && (0.0..=p.height_m).contains(&pos.y)
        };
        assert!(trace.initial_people().iter().all(|&(_, pos)| inside(pos)));
        for ev in trace.events() {
            match ev.action {
                TraceAction::Join { pos } => assert!(inside(pos)),
                TraceAction::Move { dest, .. } => assert!(inside(dest)),
                TraceAction::Leave => {}
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = MobilityTrace::generate(&presets::student_center(), hour(), 1.0, 42);
        let b = MobilityTrace::generate(&presets::student_center(), hour(), 1.0, 42);
        assert_eq!(a, b);
        let c = MobilityTrace::generate(&presets::student_center(), hour(), 1.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn negative_multiplier_panics() {
        let _ = MobilityTrace::generate(&presets::classroom(), hour(), -1.0, 1);
    }

    #[test]
    fn stream_matches_materialized_trace() {
        for seed in [0, 1, 7, 42, 9999] {
            let p = presets::student_center();
            let trace = MobilityTrace::generate(&p, hour(), 1.3, seed);
            let mut stream = TraceStream::new(&p, hour(), 1.3, seed);
            assert_eq!(stream.initial_people(), trace.initial_people());
            let streamed: Vec<TraceEvent> = stream.by_ref().collect();
            assert_eq!(streamed.as_slice(), trace.events());
            // Exhausted stream stays exhausted.
            assert_eq!(stream.next(), None);
        }
    }

    #[test]
    fn stream_present_count_tracks_population() {
        let p = presets::student_center();
        let mut stream = TraceStream::new(&p, hour(), 1.0, 5);
        let mut expected = stream.initial_people().len();
        while let Some(ev) = stream.next() {
            match ev.action {
                TraceAction::Join { .. } => expected += 1,
                TraceAction::Leave => expected -= 1,
                TraceAction::Move { .. } => {}
            }
            assert_eq!(stream.present_count(), expected);
        }
    }
}
