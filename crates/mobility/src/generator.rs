//! Poisson-process trace generation from observation parameters.

use crate::trace::{MobilityTrace, PersonId, TraceAction, TraceEvent};
use pds_sim::{Position, SimDuration, SimRng, SimTime};

/// Aggregate observation parameters for a venue, as the paper reports them
/// (population plus join/leave/move rates per minute; §VI-B-2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservationParams {
    /// Area width in meters.
    pub width_m: f64,
    /// Area height in meters.
    pub height_m: f64,
    /// Typical number of people present.
    pub population: usize,
    /// People entering per minute.
    pub joins_per_min: f64,
    /// People leaving per minute.
    pub leaves_per_min: f64,
    /// People relocating within the area per minute.
    pub moves_per_min: f64,
    /// Walking speed in m/s.
    pub speed_mps: f64,
}

impl ObservationParams {
    fn random_pos(&self, rng: &mut SimRng) -> Position {
        Position::new(
            rng.range_f64(0.0, self.width_m),
            rng.range_f64(0.0, self.height_m),
        )
    }
}

impl MobilityTrace {
    /// Generates a trace of length `duration` from `params`, with every rate
    /// scaled by `multiplier` (the paper sweeps 0.5×–2×). Deterministic in
    /// `seed`.
    ///
    /// The initial `population` people are placed uniformly at random; join,
    /// leave and move events then arrive as independent Poisson processes.
    /// Leaves and moves pick a uniformly random present person; a leave when
    /// nobody is present is skipped (and likewise moves), which keeps the
    /// trace valid by construction.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is negative or not finite.
    #[must_use]
    pub fn generate(
        params: &ObservationParams,
        duration: SimDuration,
        multiplier: f64,
        seed: u64,
    ) -> Self {
        assert!(
            multiplier.is_finite() && multiplier >= 0.0,
            "mobility multiplier must be nonnegative"
        );
        let mut rng = SimRng::new(seed ^ 0x6d6f_6269_6c69_7479);
        let mut next_person = 0u32;
        let fresh = |n: &mut u32| {
            let p = PersonId(*n);
            *n += 1;
            p
        };

        let initial: Vec<(PersonId, Position)> = (0..params.population)
            .map(|_| (fresh(&mut next_person), params.random_pos(&mut rng)))
            .collect();
        let mut present: Vec<PersonId> = initial.iter().map(|&(p, _)| p).collect();

        // Merge three Poisson processes by drawing each next arrival.
        let horizon = duration.as_secs_f64();
        let rate = |per_min: f64| per_min * multiplier / 60.0; // events per second
        let mut events = Vec::new();
        let draw_next = |rng: &mut SimRng, r: f64, from: f64| -> f64 {
            if r <= 0.0 {
                f64::INFINITY
            } else {
                from + rng.exponential(1.0 / r)
            }
        };
        let mut t_join = draw_next(&mut rng, rate(params.joins_per_min), 0.0);
        let mut t_leave = draw_next(&mut rng, rate(params.leaves_per_min), 0.0);
        let mut t_move = draw_next(&mut rng, rate(params.moves_per_min), 0.0);

        loop {
            let t = t_join.min(t_leave).min(t_move);
            if t > horizon {
                break;
            }
            let at = SimTime::from_secs_f64(t);
            if t == t_join {
                let person = fresh(&mut next_person);
                present.push(person);
                events.push(TraceEvent {
                    at,
                    person,
                    action: TraceAction::Join {
                        pos: params.random_pos(&mut rng),
                    },
                });
                t_join = draw_next(&mut rng, rate(params.joins_per_min), t);
            } else if t == t_leave {
                if !present.is_empty() {
                    let idx = rng.range_u64(0, present.len() as u64) as usize;
                    let person = present.swap_remove(idx);
                    events.push(TraceEvent {
                        at,
                        person,
                        action: TraceAction::Leave,
                    });
                }
                t_leave = draw_next(&mut rng, rate(params.leaves_per_min), t);
            } else {
                if !present.is_empty() {
                    let idx = rng.range_u64(0, present.len() as u64) as usize;
                    let person = present[idx];
                    events.push(TraceEvent {
                        at,
                        person,
                        action: TraceAction::Move {
                            dest: params.random_pos(&mut rng),
                            speed_mps: params.speed_mps,
                        },
                    });
                }
                t_move = draw_next(&mut rng, rate(params.moves_per_min), t);
            }
        }
        Self::from_parts(initial, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn hour() -> SimDuration {
        SimDuration::from_secs(3600)
    }

    #[test]
    fn generated_trace_is_valid() {
        for seed in 0..5 {
            let trace = MobilityTrace::generate(&presets::student_center(), hour(), 1.0, seed);
            trace.validate().expect("generated trace must be valid");
        }
    }

    #[test]
    fn rates_are_approximately_honored() {
        // Student center: 1 join, 1 leave, 4 moves per minute over an hour.
        let trace = MobilityTrace::generate(&presets::student_center(), hour(), 1.0, 7);
        let (joins, leaves, moves) = trace.event_counts();
        assert!((40..=85).contains(&joins), "joins = {joins}");
        assert!((40..=85).contains(&leaves), "leaves = {leaves}");
        assert!((180..=300).contains(&moves), "moves = {moves}");
    }

    #[test]
    fn multiplier_scales_event_counts() {
        let base = MobilityTrace::generate(&presets::student_center(), hour(), 1.0, 3);
        let double = MobilityTrace::generate(&presets::student_center(), hour(), 2.0, 3);
        let (j1, l1, m1) = base.event_counts();
        let (j2, l2, m2) = double.event_counts();
        let total1 = j1 + l1 + m1;
        let total2 = j2 + l2 + m2;
        let ratio = total2 as f64 / total1 as f64;
        assert!((1.6..2.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn zero_multiplier_freezes_everyone() {
        let trace = MobilityTrace::generate(&presets::classroom(), hour(), 0.0, 1);
        assert_eq!(trace.events().len(), 0);
        assert_eq!(trace.initial_people().len(), 30);
    }

    #[test]
    fn positions_stay_inside_area() {
        let p = presets::classroom();
        let trace = MobilityTrace::generate(&p, hour(), 2.0, 9);
        let inside = |pos: Position| {
            (0.0..=p.width_m).contains(&pos.x) && (0.0..=p.height_m).contains(&pos.y)
        };
        assert!(trace.initial_people().iter().all(|&(_, pos)| inside(pos)));
        for ev in trace.events() {
            match ev.action {
                TraceAction::Join { pos } => assert!(inside(pos)),
                TraceAction::Move { dest, .. } => assert!(inside(dest)),
                TraceAction::Leave => {}
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = MobilityTrace::generate(&presets::student_center(), hour(), 1.0, 42);
        let b = MobilityTrace::generate(&presets::student_center(), hour(), 1.0, 42);
        assert_eq!(a, b);
        let c = MobilityTrace::generate(&presets::student_center(), hour(), 1.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn negative_multiplier_panics() {
        let _ = MobilityTrace::generate(&presets::classroom(), hour(), -1.0, 1);
    }
}
