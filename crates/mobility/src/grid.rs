//! Static grid placement (§VI-A of the paper).
//!
//! The paper's static scenario distributes 100 nodes as a 10×10 grid "at
//! proper neighboring distances such that each node can communicate directly
//! with its 8 surrounding neighbors": spacing `s` must satisfy
//! `s·√2 ≤ range < 2s`. With the default 75 m radio range, [`SPACING_M`]
//! (50 m) satisfies this (50·√2 ≈ 70.7 ≤ 75 < 100).

use pds_sim::Position;

/// Default grid spacing in meters, matched to the default 75 m radio range.
pub const SPACING_M: f64 = 50.0;

/// Positions of an `rows × cols` grid with the given spacing, row-major.
///
/// # Examples
///
/// ```
/// use pds_mobility::grid::positions;
///
/// let grid = positions(10, 10, 50.0);
/// assert_eq!(grid.len(), 100);
/// ```
#[must_use]
pub fn positions(rows: usize, cols: usize, spacing: f64) -> Vec<Position> {
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            out.push(Position::new(c as f64 * spacing, r as f64 * spacing));
        }
    }
    out
}

/// Index (row-major) of the node nearest the grid center — where the paper
/// places the consumer.
#[must_use]
pub fn center_index(rows: usize, cols: usize) -> usize {
    (rows / 2) * cols + cols / 2
}

/// Row-major indices of the central `inner × inner` sub-grid — the region
/// the paper samples multiple consumers from (the "center 5 by 5 subgrid").
///
/// # Panics
///
/// Panics if `inner` exceeds either grid dimension.
#[must_use]
pub fn center_subgrid(rows: usize, cols: usize, inner: usize) -> Vec<usize> {
    assert!(inner <= rows && inner <= cols, "subgrid larger than grid");
    let r0 = (rows - inner) / 2;
    let c0 = (cols - inner) / 2;
    let mut out = Vec::with_capacity(inner * inner);
    for r in r0..r0 + inner {
        for c in c0..c0 + inner {
            out.push(r * cols + c);
        }
    }
    out
}

/// Maximum hop count from the center of an `n × n` grid to a corner, when
/// each node reaches its 8 surrounding neighbors (Chebyshev distance).
#[must_use]
pub fn max_hops_from_center(n: usize) -> usize {
    n / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_expected_geometry() {
        let g = positions(3, 4, 10.0);
        assert_eq!(g.len(), 12);
        assert_eq!(g[0], Position::new(0.0, 0.0));
        assert_eq!(g[3], Position::new(30.0, 0.0));
        assert_eq!(g[4], Position::new(0.0, 10.0));
    }

    #[test]
    fn spacing_supports_eight_neighbors_at_default_range() {
        // Diagonal neighbor must be in range; two-step neighbor must not.
        let range = pds_sim::RadioConfig::default().range_m;
        assert!(SPACING_M * std::f64::consts::SQRT_2 <= range);
        assert!(2.0 * SPACING_M > range);
    }

    #[test]
    fn center_index_is_central() {
        assert_eq!(center_index(10, 10), 55);
        assert_eq!(center_index(3, 3), 4);
        assert_eq!(center_index(11, 11), 60);
    }

    #[test]
    fn center_subgrid_is_centered() {
        let idx = center_subgrid(10, 10, 5);
        assert_eq!(idx.len(), 25);
        assert!(idx.contains(&center_index(10, 10)));
        // All within rows 2..7, cols 2..7.
        for i in idx {
            let (r, c) = (i / 10, i % 10);
            assert!((2..7).contains(&r) && (2..7).contains(&c));
        }
    }

    #[test]
    #[should_panic(expected = "subgrid larger")]
    fn oversized_subgrid_panics() {
        let _ = center_subgrid(3, 3, 5);
    }

    #[test]
    fn max_hops_matches_paper_fig4() {
        // Paper Fig. 4: grids 3×3 → 11×11 give max hop counts 1 → 5.
        assert_eq!(max_hops_from_center(3), 1);
        assert_eq!(max_hops_from_center(5), 2);
        assert_eq!(max_hops_from_center(7), 3);
        assert_eq!(max_hops_from_center(9), 4);
        assert_eq!(max_hops_from_center(11), 5);
    }
}
