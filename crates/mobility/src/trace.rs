//! Mobility traces: time-stamped join / leave / move event streams.

use pds_det::DetSet;
use pds_sim::{Position, SimTime};
use std::fmt;

/// Identifier of a person in a trace. People are not [`pds_sim::NodeId`]s:
/// the mapping is established when the trace is installed into a world (a
/// returning person would get a fresh node id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PersonId(pub u32);

impl fmt::Display for PersonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// What a person does at a trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceAction {
    /// Enters the area at `pos`.
    Join {
        /// Entry position.
        pos: Position,
    },
    /// Leaves the area (their device and data go with them).
    Leave,
    /// Walks toward `dest` at `speed_mps`.
    Move {
        /// Destination inside the area.
        dest: Position,
        /// Walking speed in m/s.
        speed_mps: f64,
    },
}

/// One event in a mobility trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// When the event occurs.
    pub at: SimTime,
    /// Who it concerns.
    pub person: PersonId,
    /// What happens.
    pub action: TraceAction,
}

/// A validated, time-ordered mobility trace: initial placements plus a
/// stream of join/leave/move events. Produced by
/// [`MobilityTrace::generate`](crate::MobilityTrace::generate) or assembled
/// manually for tests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MobilityTrace {
    initial: Vec<(PersonId, Position)>,
    events: Vec<TraceEvent>,
}

/// Why a trace failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidTrace {
    /// Events are not sorted by time.
    Unsorted,
    /// A person appears twice in the initial placement or re-joins while
    /// present.
    DuplicateJoin(PersonId),
    /// A leave or move refers to a person who is not present.
    NotPresent(PersonId),
}

impl fmt::Display for InvalidTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unsorted => write!(f, "trace events are not time-ordered"),
            Self::DuplicateJoin(p) => write!(f, "person {p} joins while already present"),
            Self::NotPresent(p) => write!(f, "event refers to absent person {p}"),
        }
    }
}

impl std::error::Error for InvalidTrace {}

impl MobilityTrace {
    /// Assembles a trace from parts (mainly for tests and custom scenarios).
    #[must_use]
    pub fn from_parts(initial: Vec<(PersonId, Position)>, events: Vec<TraceEvent>) -> Self {
        Self { initial, events }
    }

    /// People present at time zero, with their positions.
    #[must_use]
    pub fn initial_people(&self) -> &[(PersonId, Position)] {
        &self.initial
    }

    /// The time-ordered event stream.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Checks internal consistency: sorted events, no double joins, no
    /// events for absent people.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvalidTrace`] violation found.
    pub fn validate(&self) -> Result<(), InvalidTrace> {
        let mut present: DetSet<PersonId> = DetSet::default();
        for &(p, _) in &self.initial {
            if !present.insert(p) {
                return Err(InvalidTrace::DuplicateJoin(p));
            }
        }
        let mut last = SimTime::ZERO;
        for ev in &self.events {
            if ev.at < last {
                return Err(InvalidTrace::Unsorted);
            }
            last = ev.at;
            match ev.action {
                TraceAction::Join { .. } => {
                    if !present.insert(ev.person) {
                        return Err(InvalidTrace::DuplicateJoin(ev.person));
                    }
                }
                TraceAction::Leave => {
                    if !present.remove(&ev.person) {
                        return Err(InvalidTrace::NotPresent(ev.person));
                    }
                }
                TraceAction::Move { .. } => {
                    if !present.contains(&ev.person) {
                        return Err(InvalidTrace::NotPresent(ev.person));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of events of each kind: `(joins, leaves, moves)`.
    #[must_use]
    pub fn event_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for ev in &self.events {
            match ev.action {
                TraceAction::Join { .. } => counts.0 += 1,
                TraceAction::Leave => counts.1 += 1,
                TraceAction::Move { .. } => counts.2 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn pos() -> Position {
        Position::new(1.0, 2.0)
    }

    #[test]
    fn valid_trace_passes() {
        let trace = MobilityTrace::from_parts(
            vec![(PersonId(0), pos())],
            vec![
                TraceEvent {
                    at: t(1.0),
                    person: PersonId(1),
                    action: TraceAction::Join { pos: pos() },
                },
                TraceEvent {
                    at: t(2.0),
                    person: PersonId(1),
                    action: TraceAction::Move {
                        dest: pos(),
                        speed_mps: 1.0,
                    },
                },
                TraceEvent {
                    at: t(3.0),
                    person: PersonId(0),
                    action: TraceAction::Leave,
                },
            ],
        );
        assert!(trace.validate().is_ok());
        assert_eq!(trace.event_counts(), (1, 1, 1));
    }

    #[test]
    fn unsorted_trace_fails() {
        let trace = MobilityTrace::from_parts(
            vec![(PersonId(0), pos())],
            vec![
                TraceEvent {
                    at: t(2.0),
                    person: PersonId(0),
                    action: TraceAction::Leave,
                },
                TraceEvent {
                    at: t(1.0),
                    person: PersonId(1),
                    action: TraceAction::Join { pos: pos() },
                },
            ],
        );
        assert_eq!(trace.validate(), Err(InvalidTrace::Unsorted));
    }

    #[test]
    fn double_join_fails() {
        let trace = MobilityTrace::from_parts(
            vec![(PersonId(0), pos())],
            vec![TraceEvent {
                at: t(1.0),
                person: PersonId(0),
                action: TraceAction::Join { pos: pos() },
            }],
        );
        assert_eq!(
            trace.validate(),
            Err(InvalidTrace::DuplicateJoin(PersonId(0)))
        );
    }

    #[test]
    fn event_for_absent_person_fails() {
        let trace = MobilityTrace::from_parts(
            vec![],
            vec![TraceEvent {
                at: t(1.0),
                person: PersonId(3),
                action: TraceAction::Leave,
            }],
        );
        assert_eq!(trace.validate(), Err(InvalidTrace::NotPresent(PersonId(3))));
        let trace = MobilityTrace::from_parts(
            vec![],
            vec![TraceEvent {
                at: t(1.0),
                person: PersonId(3),
                action: TraceAction::Move {
                    dest: pos(),
                    speed_mps: 1.0,
                },
            }],
        );
        assert_eq!(trace.validate(), Err(InvalidTrace::NotPresent(PersonId(3))));
    }

    #[test]
    fn leave_then_rejoin_is_valid() {
        let trace = MobilityTrace::from_parts(
            vec![(PersonId(0), pos())],
            vec![
                TraceEvent {
                    at: t(1.0),
                    person: PersonId(0),
                    action: TraceAction::Leave,
                },
                TraceEvent {
                    at: t(2.0),
                    person: PersonId(0),
                    action: TraceAction::Join { pos: pos() },
                },
            ],
        );
        assert!(trace.validate().is_ok());
    }
}
