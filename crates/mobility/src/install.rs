//! Installing a mobility trace into a simulated world.

use crate::generator::TraceStream;
use crate::trace::{MobilityTrace, PersonId, TraceAction, TraceEvent};
use pds_det::DetMap;
use pds_sim::{Application, NodeId, SimTime, World};
use std::sync::{Arc, Mutex};

type Mapping = Arc<Mutex<DetMap<PersonId, NodeId>>>;
type Factory = Arc<Mutex<dyn FnMut(PersonId) -> Box<dyn Application> + Send>>;

/// Applies one trace event to the world, maintaining the person → node
/// mapping. Shared by the materialized and streaming installers so the two
/// cannot drift.
fn apply_event(w: &mut World, ev: &TraceEvent, mapping: &Mapping, factory: &Factory) {
    match ev.action {
        TraceAction::Join { pos } => {
            let app = (factory.lock().expect("uncontended"))(ev.person);
            let id = w.add_node(pos, app);
            mapping.lock().expect("uncontended").insert(ev.person, id);
        }
        TraceAction::Leave => {
            if let Some(id) = mapping.lock().expect("uncontended").remove(&ev.person) {
                w.remove_node(id);
            }
        }
        TraceAction::Move { dest, speed_mps } => {
            if let Some(&id) = mapping.lock().expect("uncontended").get(&ev.person) {
                w.move_node(id, dest, speed_mps);
            }
        }
    }
}

/// Applies a [`MobilityTrace`] to a [`World`], creating protocol nodes as
/// people join and removing them when they leave.
///
/// The installer owns the person → node mapping; query it after (or during,
/// from scheduled closures) the run via [`TraceInstaller::node_of`].
///
/// # Examples
///
/// ```
/// use pds_mobility::{presets, MobilityTrace, TraceInstaller};
/// use pds_sim::{Application, Context, MessageMeta, SimConfig, SimDuration, SimTime, World};
///
/// struct Idle;
/// impl Application for Idle {
///     fn on_start(&mut self, _ctx: &mut Context) {}
///     fn on_message(&mut self, _ctx: &mut Context, _meta: MessageMeta, _payload: bytes::Bytes) {}
/// }
///
/// let trace = MobilityTrace::generate(
///     &presets::classroom(),
///     SimDuration::from_secs(60),
///     1.0,
///     1,
/// );
/// let mut world = World::new(SimConfig::default(), 1);
/// let installer = TraceInstaller::install(&mut world, &trace, |_person| Box::new(Idle));
/// world.run_until(SimTime::from_secs_f64(60.0));
/// assert!(installer.present_people().len() >= 25);
/// ```
#[derive(Debug, Clone)]
pub struct TraceInstaller {
    // Arc<Mutex> rather than Rc<RefCell>: the scheduled closures holding the
    // other handles live inside the World, which must stay `Send` so sweep
    // workers can own one per thread. The lock is never contended — a world
    // is driven by exactly one thread at a time.
    mapping: Arc<Mutex<DetMap<PersonId, NodeId>>>,
}

impl TraceInstaller {
    /// Installs `trace` into `world`. `factory` builds the application for
    /// each person when (and each time) they join; initial people join at
    /// the current world time. The factory must be `Send` because it is
    /// captured by closures scheduled into the (`Send`) world.
    pub fn install(
        world: &mut World,
        trace: &MobilityTrace,
        factory: impl FnMut(PersonId) -> Box<dyn Application> + Send + 'static,
    ) -> Self {
        let mapping: Mapping = Arc::default();
        let factory: Factory = Arc::new(Mutex::new(factory));

        for &(person, pos) in trace.initial_people() {
            let app = (factory.lock().expect("uncontended"))(person);
            let id = world.add_node(pos, app);
            mapping.lock().expect("uncontended").insert(person, id);
        }

        let base = world.now();
        for ev in trace.events().iter().cloned() {
            let mapping = Arc::clone(&mapping);
            let factory = Arc::clone(&factory);
            // Trace times are relative to the start of the trace.
            let at = base + ev.at.since(SimTime::ZERO);
            world.schedule(at, move |w| apply_event(w, &ev, &mapping, &factory));
        }
        Self { mapping }
    }

    /// The node currently embodying `person`, if they are present.
    #[must_use]
    pub fn node_of(&self, person: PersonId) -> Option<NodeId> {
        self.mapping
            .lock()
            .expect("uncontended")
            .get(&person)
            .copied()
    }

    /// People currently present, in unspecified order.
    #[must_use]
    pub fn present_people(&self) -> Vec<PersonId> {
        self.mapping
            .lock()
            .expect("uncontended")
            .keys()
            .copied()
            .collect()
    }

    /// Nodes currently embodying present people, in unspecified order.
    #[must_use]
    pub fn present_nodes(&self) -> Vec<NodeId> {
        self.mapping
            .lock()
            .expect("uncontended")
            .values()
            .copied()
            .collect()
    }
}

/// Applies a [`TraceStream`] to a [`World`] lazily: exactly one mobility
/// control closure is pending at any time, which pulls the next event from
/// the stream when it fires and re-chains itself.
///
/// Behaviorally identical to generating the full trace and using
/// [`TraceInstaller`] (the stream and the materialized trace are equal for
/// the same seed, and both installers share [`apply_event`]) — but pending
/// memory is O(1) instead of O(events), which is what makes hours-long
/// city-scale scenarios with 10k–100k people feasible.
#[derive(Debug, Clone)]
pub struct StreamInstaller {
    mapping: Mapping,
}

impl StreamInstaller {
    /// Installs `stream` into `world`: the stream's initial people join at
    /// the current world time, and subsequent events are pulled and applied
    /// one at a time. `factory` builds the application for each person when
    /// (and each time) they join.
    pub fn install(
        world: &mut World,
        stream: TraceStream,
        factory: impl FnMut(PersonId) -> Box<dyn Application> + Send + 'static,
    ) -> Self {
        let mapping: Mapping = Arc::default();
        let factory: Factory = Arc::new(Mutex::new(factory));

        for &(person, pos) in stream.initial_people() {
            let app = (factory.lock().expect("uncontended"))(person);
            let id = world.add_node(pos, app);
            mapping.lock().expect("uncontended").insert(person, id);
        }

        let base = world.now();
        let stream = Arc::new(Mutex::new(stream));
        chain_next(world, base, &stream, &mapping, &factory);
        Self { mapping }
    }

    /// The node currently embodying `person`, if they are present.
    #[must_use]
    pub fn node_of(&self, person: PersonId) -> Option<NodeId> {
        self.mapping
            .lock()
            .expect("uncontended")
            .get(&person)
            .copied()
    }

    /// People currently present, in unspecified order.
    #[must_use]
    pub fn present_people(&self) -> Vec<PersonId> {
        self.mapping
            .lock()
            .expect("uncontended")
            .keys()
            .copied()
            .collect()
    }

    /// Nodes currently embodying present people, in unspecified order.
    #[must_use]
    pub fn present_nodes(&self) -> Vec<NodeId> {
        self.mapping
            .lock()
            .expect("uncontended")
            .values()
            .copied()
            .collect()
    }
}

/// Pulls the next event from the stream and schedules a single closure that
/// applies it, then chains the one after. Stream times are relative to the
/// start of the stream (`base`).
fn chain_next(
    world: &mut World,
    base: SimTime,
    stream: &Arc<Mutex<TraceStream>>,
    mapping: &Mapping,
    factory: &Factory,
) {
    let Some(ev) = stream.lock().expect("uncontended").next() else {
        return;
    };
    let stream = Arc::clone(stream);
    let mapping = Arc::clone(mapping);
    let factory = Arc::clone(factory);
    let at = base + ev.at.since(SimTime::ZERO);
    world.schedule(at, move |w| {
        apply_event(w, &ev, &mapping, &factory);
        chain_next(w, base, &stream, &mapping, &factory);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use bytes::Bytes;
    use pds_sim::{Context, MessageMeta, Position, SimConfig, SimTime};

    struct Idle;
    impl Application for Idle {
        fn on_start(&mut self, _ctx: &mut Context) {}
        fn on_message(&mut self, _ctx: &mut Context, _meta: MessageMeta, _payload: Bytes) {}
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn install_applies_joins_leaves_and_moves() {
        let trace = MobilityTrace::from_parts(
            vec![(PersonId(0), Position::new(0.0, 0.0))],
            vec![
                TraceEvent {
                    at: t(1.0),
                    person: PersonId(1),
                    action: TraceAction::Join {
                        pos: Position::new(10.0, 0.0),
                    },
                },
                TraceEvent {
                    at: t(2.0),
                    person: PersonId(0),
                    action: TraceAction::Move {
                        dest: Position::new(100.0, 0.0),
                        speed_mps: 10.0,
                    },
                },
                TraceEvent {
                    at: t(3.0),
                    person: PersonId(1),
                    action: TraceAction::Leave,
                },
            ],
        );
        let mut world = World::new(SimConfig::default(), 1);
        let inst = TraceInstaller::install(&mut world, &trace, |_| Box::new(Idle));
        let n0 = inst.node_of(PersonId(0)).expect("initial person present");
        assert!(world.is_alive(n0));
        assert_eq!(inst.node_of(PersonId(1)), None);

        world.run_until(t(1.5));
        let n1 = inst.node_of(PersonId(1)).expect("joined");
        assert!(world.is_alive(n1));

        world.run_until(t(3.5));
        assert_eq!(inst.node_of(PersonId(1)), None, "left at t=3");
        assert!(!world.is_alive(n1));

        // Person 0 walked at 10 m/s from t=2: by t=3.5 they are ~15 m along.
        let pos = world.position(n0).expect("alive");
        assert!(pos.x > 5.0 && pos.x < 30.0, "pos.x = {}", pos.x);
    }

    #[test]
    fn rejoin_gets_fresh_node_id() {
        let trace = MobilityTrace::from_parts(
            vec![(PersonId(0), Position::new(0.0, 0.0))],
            vec![
                TraceEvent {
                    at: t(1.0),
                    person: PersonId(0),
                    action: TraceAction::Leave,
                },
                TraceEvent {
                    at: t(2.0),
                    person: PersonId(0),
                    action: TraceAction::Join {
                        pos: Position::new(5.0, 5.0),
                    },
                },
            ],
        );
        let mut world = World::new(SimConfig::default(), 1);
        let inst = TraceInstaller::install(&mut world, &trace, |_| Box::new(Idle));
        let first = inst.node_of(PersonId(0)).expect("present");
        world.run_until(t(5.0));
        let second = inst.node_of(PersonId(0)).expect("rejoined");
        assert_ne!(first, second);
        assert!(world.is_alive(second));
        assert!(!world.is_alive(first));
    }

    #[test]
    fn present_counts_track_population() {
        let params = crate::presets::classroom();
        let trace = MobilityTrace::generate(&params, pds_sim::SimDuration::from_secs(300), 1.0, 5);
        let mut world = World::new(SimConfig::default(), 2);
        let inst = TraceInstaller::install(&mut world, &trace, |_| Box::new(Idle));
        world.run_until(t(300.0));
        // Joins ≈ leaves, so the population should hover near 30.
        let present = inst.present_people().len();
        assert!((20..=40).contains(&present), "present = {present}");
        assert_eq!(inst.present_nodes().len(), present);
    }

    #[test]
    fn stream_installer_matches_trace_installer() {
        let params = crate::presets::student_center();
        let dur = pds_sim::SimDuration::from_secs(300);
        let trace = MobilityTrace::generate(&params, dur, 1.0, 11);
        let stream = TraceStream::new(&params, dur, 1.0, 11);

        let mut wa = World::new(SimConfig::default(), 1);
        let a = TraceInstaller::install(&mut wa, &trace, |_| Box::new(Idle));
        let mut wb = World::new(SimConfig::default(), 1);
        let b = StreamInstaller::install(&mut wb, stream, |_| Box::new(Idle));

        for checkpoint in [50.0, 150.0, 300.0] {
            wa.run_until(t(checkpoint));
            wb.run_until(t(checkpoint));
            let mut pa = a.present_people();
            let mut pb = b.present_people();
            pa.sort_unstable();
            pb.sort_unstable();
            assert_eq!(pa, pb, "present people diverged at t={checkpoint}");
            for &p in &pa {
                assert_eq!(a.node_of(p), b.node_of(p), "node of {p:?} at t={checkpoint}");
                let na = a.node_of(p).expect("present");
                assert_eq!(wa.position(na), wb.position(na), "position at t={checkpoint}");
            }
        }
    }
}
