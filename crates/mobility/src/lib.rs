//! Node placement and mobility-trace generation for PDS evaluation
//! scenarios.
//!
//! The paper evaluates PDS on (a) static grids — 100 nodes in a 10×10 grid
//! with the consumer at the center (§VI-A) — and (b) mobility traces derived
//! from 8 hours of observing a university *Student Center* and *Classrooms*:
//! aggregate population, join/leave and internal-movement rates per minute
//! (§VI-B-2). This crate provides both:
//!
//! * [`grid`] — grid placement helpers with the paper's
//!   consumer-at-the-center conventions;
//! * [`ObservationParams`] / [`MobilityTrace`] — Poisson-process trace
//!   generation matched to the published rates, with the 0.5×–2× mobility
//!   multiplier used in Figs. 9, 10 and 12;
//! * [`TraceStream`] — the same generator as a lazy iterator: memory stays
//!   O(people present) instead of O(events), for city-scale scenarios;
//! * [`TraceInstaller`] / [`StreamInstaller`] — apply a trace (materialized
//!   or streaming) to a [`pds_sim::World`], creating and removing protocol
//!   nodes as people come and go.
//!
//! # Examples
//!
//! ```
//! use pds_mobility::{presets, MobilityTrace};
//! use pds_sim::SimDuration;
//!
//! let params = presets::student_center();
//! let trace = MobilityTrace::generate(&params, SimDuration::from_secs(600), 1.0, 42);
//! assert_eq!(trace.initial_people().len(), params.population);
//! assert!(trace.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
pub mod grid;
mod install;
mod trace;

pub use generator::{ObservationParams, TraceStream};
pub use install::{StreamInstaller, TraceInstaller};
pub use trace::{InvalidTrace, MobilityTrace, PersonId, TraceAction, TraceEvent};

/// Observation-derived presets for the paper's two venues.
pub mod presets {
    use super::ObservationParams;

    /// The *Student Center*: ~120×120 m², ~20 people present, ~1 join and
    /// ~1 leave per minute, ~4 internal moves per minute (§VI-B-2).
    #[must_use]
    pub fn student_center() -> ObservationParams {
        ObservationParams {
            width_m: 120.0,
            height_m: 120.0,
            population: 20,
            joins_per_min: 1.0,
            leaves_per_min: 1.0,
            moves_per_min: 4.0,
            speed_mps: 1.2,
        }
    }

    /// The *Classrooms*: ~20×20 m², ~30 people, ~0.5 join/leave and ~0.5
    /// internal moves per minute (§VI-B-2).
    #[must_use]
    pub fn classroom() -> ObservationParams {
        ObservationParams {
            width_m: 20.0,
            height_m: 20.0,
            population: 30,
            joins_per_min: 0.5,
            leaves_per_min: 0.5,
            moves_per_min: 0.5,
            speed_mps: 1.0,
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn presets_match_paper_observations() {
            let sc = student_center();
            assert_eq!(sc.population, 20);
            assert!((sc.moves_per_min - 4.0).abs() < f64::EPSILON);
            let cl = classroom();
            assert_eq!(cl.population, 30);
            assert!((cl.joins_per_min - 0.5).abs() < f64::EPSILON);
            assert!(cl.width_m < sc.width_m);
        }
    }
}
