//! Node identity and the sans-io application seam.
//!
//! Protocols (PDS itself, the MDR baseline, test fixtures) implement
//! [`Application`]; a backend kernel — `pds_sim::World` today, a real-socket
//! reactor tomorrow — invokes its callbacks and collects the [`Command`]s
//! the application issues through [`Context`]. The seam is deliberately
//! sans-io: nothing here touches sockets, files, threads, or the host
//! clock, so the same engine code can be driven by virtual time in the
//! simulator or wall-clock time over real transports (ROADMAP item 4).

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use pds_obs::{Phase, TraceEvent, TraceKind};
use std::any::Any;
use std::fmt;

/// Identifier of a node (a device in the edge environment).
///
/// Ids are assigned by the backend (`pds_sim::World::add_node` in the
/// simulator) in ascending order and are never reused within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle of a pending timer, for cancellation.
///
/// The raw value is public so kernel backends can mint handles; protocol
/// code should treat it as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(#[doc(hidden)] pub u64);

/// Handle of an outgoing message, echoed back by
/// [`Application::on_send_result`].
///
/// The raw value is public so kernel backends can mint handles; protocol
/// code should treat it as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageHandle(#[doc(hidden)] pub u64);

/// Metadata accompanying a delivered message.
#[derive(Debug, Clone)]
pub struct MessageMeta {
    /// The one-hop neighbor that transmitted the message.
    pub from: NodeId,
    /// The intended next-hop receivers; empty means "all neighbors".
    pub intended: Vec<NodeId>,
    /// `true` if this node was *not* in the intended list — the message was
    /// overheard thanks to the broadcast medium and may be cached but should
    /// not be forwarded (§III of the paper).
    pub overheard: bool,
    /// Total on-air bytes of the message (all fragments, headers included),
    /// for overhead accounting.
    pub wire_bytes: usize,
}

/// A protocol or workload running on a node.
///
/// Callbacks are invoked by the backend kernel; all interaction with the
/// outside world goes through the provided [`Context`]. Implementations must
/// be `'static` so results can be extracted by downcasting after a run (see
/// `pds_sim::World::app`), and `Send` so a whole world can be moved onto a
/// sweep worker thread (worlds are never shared between threads, only
/// moved).
pub trait Application: Any + Send {
    /// Invoked once when the node joins the world.
    fn on_start(&mut self, ctx: &mut Context);

    /// Invoked when a complete message is received — whether this node was
    /// an intended receiver or merely overheard it (see
    /// [`MessageMeta::overheard`]).
    fn on_message(&mut self, ctx: &mut Context, meta: MessageMeta, payload: Bytes);

    /// Invoked when a timer set via [`Context::set_timer`] fires. The `tag`
    /// is the application-chosen value passed at arm time.
    fn on_timer(&mut self, ctx: &mut Context, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Invoked when a reliable message (non-empty intended receiver list,
    /// acks enabled) is fully acknowledged (`delivered = true`) or abandoned
    /// after `MaxRetrTime` retransmissions (`delivered = false`).
    fn on_send_result(&mut self, ctx: &mut Context, message: MessageHandle, delivered: bool) {
        let _ = (ctx, message, delivered);
    }
}

/// A side effect requested by an application callback, applied by the kernel
/// after the callback returns.
#[derive(Debug)]
pub enum Command {
    /// Broadcast a message to all neighbors, naming intended receivers.
    Broadcast {
        /// Application payload.
        payload: Bytes,
        /// Intended next-hop receivers (empty = all neighbors, unreliable).
        intended: Vec<NodeId>,
        /// Handle pre-assigned by the context.
        handle: MessageHandle,
        /// Traffic class of the message's frames (see [`pds_obs::class`]),
        /// used to split the radio byte counters by protocol phase.
        class: u8,
    },
    /// Arm a timer.
    SetTimer {
        /// Pre-assigned timer id.
        id: TimerId,
        /// Fire time.
        at: SimTime,
        /// Application tag echoed to [`Application::on_timer`].
        tag: u64,
    },
    /// Disarm a previously set timer.
    CancelTimer(TimerId),
    /// Forward a trace event to the world's sink. Only ever issued while a
    /// sink is installed (see [`Context::trace`]).
    Trace(TraceEvent),
}

/// The application's window into the kernel during a callback.
///
/// Commands issued here are buffered and applied when the callback returns,
/// in issue order.
pub struct Context<'a> {
    now: SimTime,
    node: NodeId,
    next_timer: u64,
    next_msg: u64,
    rng: &'a mut SimRng,
    commands: Vec<Command>,
    trace_enabled: bool,
}

impl<'a> Context<'a> {
    /// Builds a callback context. Backend-kernel API: applications only ever
    /// receive a `&mut Context`, they never construct one.
    #[doc(hidden)]
    pub fn new(
        now: SimTime,
        node: NodeId,
        next_timer: u64,
        next_msg: u64,
        rng: &'a mut SimRng,
        commands: Vec<Command>,
        trace_enabled: bool,
    ) -> Self {
        Self {
            now,
            node,
            next_timer,
            next_msg,
            rng,
            commands,
            trace_enabled,
        }
    }

    /// Tears the context down, returning the buffered commands and the next
    /// timer/message sequence numbers. Backend-kernel API.
    #[doc(hidden)]
    #[must_use]
    pub fn finish(self) -> (Vec<Command>, u64, u64) {
        (self.commands, self.next_timer, self.next_msg)
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node this callback runs on.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Deterministic per-node randomness (jitter, probabilistic choices).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Broadcasts `payload` to all one-hop neighbors.
    ///
    /// `intended` names the receivers that should act on (relay) the
    /// message; when acks are enabled and `intended` is non-empty the
    /// transport retransmits until all intended receivers acknowledge or
    /// `MaxRetrTime` is exhausted, then reports via
    /// [`Application::on_send_result`]. An empty list means "all neighbors"
    /// and is sent unreliably (PDS floods fresh queries this way).
    pub fn broadcast(&mut self, payload: Bytes, intended: &[NodeId]) -> MessageHandle {
        self.broadcast_class(payload, intended, pds_obs::class::OTHER)
    }

    /// Like [`Context::broadcast`], additionally tagging the message's
    /// frames with a traffic class (see [`pds_obs::class`]) so the radio
    /// layer can attribute on-air bytes to a protocol phase.
    pub fn broadcast_class(
        &mut self,
        payload: Bytes,
        intended: &[NodeId],
        class: u8,
    ) -> MessageHandle {
        let handle = MessageHandle(self.next_msg);
        self.next_msg += 1;
        self.commands.push(Command::Broadcast {
            payload,
            intended: intended.to_vec(),
            handle,
            class,
        });
        handle
    }

    /// Whether a trace sink is installed. Applications may use this to skip
    /// building expensive trace payloads.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.trace_enabled
    }

    /// Emits a structured trace event attributed to this node at the
    /// current virtual time. No-op (a single branch) when no sink is
    /// installed; tracing never alters simulation behavior.
    pub fn trace(&mut self, phase: Phase, kind: TraceKind) {
        if self.trace_enabled {
            self.commands.push(Command::Trace(TraceEvent {
                at_us: self.now.as_micros(),
                node: self.node.0,
                phase,
                kind,
            }));
        }
    }

    /// Arms a timer that fires `delay` from now, delivering `tag` to
    /// [`Application::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.commands.push(Command::SetTimer {
            id,
            at: self.now + delay,
            tag,
        });
        id
    }

    /// Cancels a timer if it has not fired yet (no-op otherwise).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.commands.push(Command::CancelTimer(id));
    }
}

impl fmt::Debug for Context<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("node", &self.node)
            .field("pending_commands", &self.commands.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_allocates_monotonic_handles() {
        let mut rng = SimRng::new(1);
        let mut ctx = Context::new(SimTime::ZERO, NodeId(0), 5, 9, &mut rng, Vec::new(), false);
        let m1 = ctx.broadcast(Bytes::from_static(b"a"), &[]);
        let m2 = ctx.broadcast(Bytes::from_static(b"b"), &[NodeId(1)]);
        assert_ne!(m1, m2);
        let t1 = ctx.set_timer(SimDuration::from_millis(1), 7);
        let t2 = ctx.set_timer(SimDuration::from_millis(2), 8);
        assert_ne!(t1, t2);
        let (commands, next_timer, next_msg) = ctx.finish();
        assert_eq!(commands.len(), 4);
        assert_eq!(next_timer, 7);
        assert_eq!(next_msg, 11);
    }

    #[test]
    fn set_timer_schedules_at_now_plus_delay() {
        let mut rng = SimRng::new(1);
        let now = SimTime::from_secs_f64(2.0);
        let mut ctx = Context::new(now, NodeId(3), 0, 0, &mut rng, Vec::new(), false);
        ctx.set_timer(SimDuration::from_secs(1), 42);
        let (commands, _, _) = ctx.finish();
        match &commands[0] {
            Command::SetTimer { at, tag, .. } => {
                assert_eq!(*at, SimTime::from_secs_f64(3.0));
                assert_eq!(*tag, 42);
            }
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn node_id_displays_compactly() {
        assert_eq!(NodeId(17).to_string(), "n17");
    }

    #[test]
    fn trace_is_a_noop_without_a_sink() {
        let mut rng = SimRng::new(1);
        let mut ctx = Context::new(SimTime::ZERO, NodeId(0), 0, 0, &mut rng, Vec::new(), false);
        assert!(!ctx.trace_enabled());
        ctx.trace(Phase::Pdd, TraceKind::SessionStarted { session: 1 });
        let (commands, _, _) = ctx.finish();
        assert!(commands.is_empty());
    }

    #[test]
    fn trace_stamps_time_and_node_when_enabled() {
        let mut rng = SimRng::new(1);
        let now = SimTime::from_secs_f64(1.5);
        let mut ctx = Context::new(now, NodeId(7), 0, 0, &mut rng, Vec::new(), true);
        assert!(ctx.trace_enabled());
        ctx.trace(
            Phase::Pdr,
            TraceKind::QuerySent {
                query: 42,
                session: 1,
                seq: 9,
            },
        );
        let (commands, _, _) = ctx.finish();
        match &commands[0] {
            Command::Trace(ev) => {
                assert_eq!(ev.at_us, 1_500_000);
                assert_eq!(ev.node, 7);
                assert_eq!(ev.phase, Phase::Pdr);
                assert_eq!(
                    ev.kind,
                    TraceKind::QuerySent {
                        query: 42,
                        session: 1,
                        seq: 9,
                    }
                );
            }
            other => panic!("unexpected command {other:?}"),
        }
    }
}
