//! The per-node Data Store: metadata entries, small-item payloads and
//! chunks (§II-C).
//!
//! The store enforces the paper's synchronization rule: a metadata entry
//! cached *without* its payload carries an expiration time and is removed at
//! expiry; entries whose payload (or any chunk of the item) is present live
//! as long as the payload does.

use crate::descriptor::{DataDescriptor, EntryKey};
use crate::ids::{ChunkId, ItemName};
use crate::predicate::QueryFilter;
use crate::SimTime;
use bytes::Bytes;
use pds_det::DetMap;
use std::collections::BTreeMap;

/// One stored metadata entry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaEntry {
    /// The descriptor.
    pub descriptor: DataDescriptor,
    /// Expiration for payload-less cached entries; `None` while the payload
    /// (or any chunk of the item) is held, or for locally produced data.
    pub expires_at: Option<SimTime>,
}

/// Which cached chunk to evict when the cache budget is exceeded (§VII of
/// the paper: storage is finite, so opportunistically cached chunks need a
/// replacement strategy; locally produced chunks are never evicted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Least recently used (by access order).
    #[default]
    Lru,
    /// Least frequently used (by hit count; ties broken by recency).
    Lfu,
}

/// Budget and policy for opportunistically cached chunks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChunkCacheConfig {
    /// Byte budget for *cached* (not locally produced) chunks; `None` means
    /// unbounded — the paper's default assumption of ample storage.
    pub capacity_bytes: Option<usize>,
    /// Replacement strategy when over budget.
    pub policy: EvictionPolicy,
}

#[derive(Debug, Clone)]
struct CachedChunkMeta {
    bytes: usize,
    last_access: u64,
    hits: u64,
    pinned: bool,
}

/// A node's data store.
///
/// # Examples
///
/// ```
/// use pds_core::{DataDescriptor, DataStore, QueryFilter};
/// use pds_core::SimTime;
///
/// let mut store = DataStore::new();
/// store.insert_own(
///     DataDescriptor::builder().attr("type", "no2").build(),
///     None,
/// );
/// let now = SimTime::ZERO;
/// assert_eq!(store.match_metadata(&QueryFilter::match_all(), now).len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct DataStore {
    metadata: DetMap<EntryKey, MetaEntry>,
    small_payloads: DetMap<EntryKey, Bytes>,
    chunks: DetMap<ItemName, BTreeMap<ChunkId, Bytes>>,
    // Index: item name → entry key of the whole-item (chunk-less) descriptor.
    items_by_name: DetMap<ItemName, EntryKey>,
    // Cache accounting for opportunistically stored chunks.
    cache_config: ChunkCacheConfig,
    chunk_meta: DetMap<(ItemName, ChunkId), CachedChunkMeta>,
    cached_bytes: usize,
    access_clock: u64,
}

impl DataStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a locally produced data item: metadata (never expiring) plus
    /// an optional small payload.
    pub fn insert_own(&mut self, descriptor: DataDescriptor, payload: Option<Bytes>) {
        let key = descriptor.entry_key();
        if let Some(p) = payload {
            self.small_payloads.insert(key.clone(), p);
        }
        self.index_item(&descriptor, &key);
        self.metadata.insert(
            key,
            MetaEntry {
                descriptor,
                expires_at: None,
            },
        );
    }

    fn index_item(&mut self, descriptor: &DataDescriptor, key: &EntryKey) {
        if descriptor.chunk_id().is_none() {
            if let Some(name) = descriptor.item_name() {
                self.items_by_name.insert(name, key.clone());
            }
        }
    }

    /// The whole-item descriptor registered under `name`, if any metadata
    /// entry for it has been seen.
    #[must_use]
    pub fn item_descriptor_by_name(&self, name: &ItemName) -> Option<&DataDescriptor> {
        let key = self.items_by_name.get(name)?;
        self.metadata.get(key).map(|e| &e.descriptor)
    }

    /// Caches a metadata entry learned from the network. If the entry is
    /// already present, a later expiration extends it; entries backed by a
    /// payload stay non-expiring. Returns `true` if the entry was new.
    pub fn cache_metadata(&mut self, descriptor: DataDescriptor, expires_at: SimTime) -> bool {
        let key = descriptor.entry_key();
        let has_payload = self.small_payloads.contains_key(&key) || self.has_any_chunk(&descriptor);
        match self.metadata.entry(key) {
            pds_det::MapEntry::Occupied(mut e) => {
                let entry = e.get_mut();
                if entry.expires_at.is_some() {
                    if has_payload {
                        entry.expires_at = None;
                    } else if entry.expires_at.is_some_and(|t| t < expires_at) {
                        entry.expires_at = Some(expires_at);
                    }
                }
                false
            }
            pds_det::MapEntry::Vacant(v) => {
                let descriptor = v
                    .insert(MetaEntry {
                        descriptor,
                        expires_at: if has_payload { None } else { Some(expires_at) },
                    })
                    .descriptor
                    .clone();
                let key = descriptor.entry_key();
                self.index_item(&descriptor, &key);
                true
            }
        }
    }

    /// Caches a small item's payload (entry becomes non-expiring).
    pub fn cache_small_payload(&mut self, descriptor: &DataDescriptor, payload: Bytes) {
        let key = descriptor.entry_key();
        self.small_payloads.insert(key.clone(), payload);
        if let Some(e) = self.metadata.get_mut(&key) {
            e.expires_at = None;
        } else {
            self.metadata.insert(
                key,
                MetaEntry {
                    descriptor: descriptor.clone(),
                    expires_at: None,
                },
            );
        }
    }

    /// Configures the byte budget and replacement policy for cached chunks.
    /// Evicts immediately if the current cache is over the new budget.
    pub fn set_chunk_cache(&mut self, config: ChunkCacheConfig) {
        self.cache_config = config;
        self.maybe_evict();
    }

    /// Stores one *locally produced* chunk: pinned, never evicted; pins the
    /// item's metadata entry (the paper: an entry lives as long as *any*
    /// chunk of the item).
    pub fn insert_chunk(&mut self, item_descriptor: &DataDescriptor, chunk: ChunkId, data: Bytes) {
        self.store_chunk(item_descriptor, chunk, data, true);
    }

    /// Opportunistically caches a chunk received or overheard from the
    /// network: evictable under the configured [`ChunkCacheConfig`].
    pub fn cache_chunk(&mut self, item_descriptor: &DataDescriptor, chunk: ChunkId, data: Bytes) {
        self.store_chunk(item_descriptor, chunk, data, false);
        self.maybe_evict();
    }

    fn store_chunk(
        &mut self,
        item_descriptor: &DataDescriptor,
        chunk: ChunkId,
        data: Bytes,
        pinned: bool,
    ) {
        let Some(name) = item_descriptor.item_name() else {
            return;
        };
        self.access_clock += 1;
        let key = (name.clone(), chunk);
        match self.chunk_meta.get_mut(&key) {
            Some(meta) => {
                // Re-storing an existing chunk: refresh recency; pinning is
                // sticky (own data stays pinned even if later overheard).
                meta.last_access = self.access_clock;
                meta.pinned |= pinned;
            }
            None => {
                if !pinned {
                    self.cached_bytes += data.len();
                }
                self.chunk_meta.insert(
                    key,
                    CachedChunkMeta {
                        bytes: data.len(),
                        last_access: self.access_clock,
                        hits: 0,
                        pinned,
                    },
                );
                self.chunks.entry(name).or_default().insert(chunk, data);
            }
        }
        let key = item_descriptor.entry_key();
        self.index_item(item_descriptor, &key);
        if let Some(e) = self.metadata.get_mut(&key) {
            e.expires_at = None;
        } else {
            self.metadata.insert(
                key,
                MetaEntry {
                    descriptor: item_descriptor.clone(),
                    expires_at: None,
                },
            );
        }
    }

    /// Evicts cached (unpinned) chunks until within budget, per the policy.
    fn maybe_evict(&mut self) {
        let Some(capacity) = self.cache_config.capacity_bytes else {
            return;
        };
        while self.cached_bytes > capacity {
            let victim = self
                .chunk_meta
                .iter()
                .filter(|(_, m)| !m.pinned)
                .min_by_key(|(_, m)| match self.cache_config.policy {
                    EvictionPolicy::Lru => (m.last_access, 0),
                    EvictionPolicy::Lfu => (m.hits, m.last_access),
                })
                .map(|(k, _)| k.clone());
            let Some((item, chunk)) = victim else {
                return; // everything left is pinned
            };
            let meta = self
                .chunk_meta
                .remove(&(item.clone(), chunk))
                .expect("victim");
            self.cached_bytes = self.cached_bytes.saturating_sub(meta.bytes);
            if let Some(per_item) = self.chunks.get_mut(&item) {
                per_item.remove(&chunk);
                if per_item.is_empty() {
                    self.chunks.remove(&item);
                }
            }
        }
    }

    /// Bytes currently used by evictable cached chunks.
    #[must_use]
    pub fn cached_chunk_bytes(&self) -> usize {
        self.cached_bytes
    }

    /// Whether the store holds chunk `chunk` of `item`.
    #[must_use]
    pub fn has_chunk(&self, item: &ItemName, chunk: ChunkId) -> bool {
        self.chunks
            .get(item)
            .is_some_and(|m| m.contains_key(&chunk))
    }

    /// The bytes of chunk `chunk` of `item`, if held (a peek: does not
    /// count as a cache hit).
    #[must_use]
    pub fn chunk(&self, item: &ItemName, chunk: ChunkId) -> Option<Bytes> {
        self.chunks.get(item).and_then(|m| m.get(&chunk)).cloned()
    }

    /// Like [`DataStore::chunk`], but counts as a cache hit for the
    /// eviction policy — the serving path uses this.
    #[must_use]
    pub fn fetch_chunk(&mut self, item: &ItemName, chunk: ChunkId) -> Option<Bytes> {
        let data = self.chunks.get(item).and_then(|m| m.get(&chunk)).cloned()?;
        self.access_clock += 1;
        if let Some(meta) = self.chunk_meta.get_mut(&(item.clone(), chunk)) {
            meta.hits += 1;
            meta.last_access = self.access_clock;
        }
        Some(data)
    }

    /// Ids of held chunks of `item`, ascending.
    #[must_use]
    pub fn chunk_ids(&self, item: &ItemName) -> Vec<ChunkId> {
        self.chunks
            .get(item)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    fn has_any_chunk(&self, descriptor: &DataDescriptor) -> bool {
        descriptor
            .item_name()
            .is_some_and(|name| self.chunks.get(&name).is_some_and(|m| !m.is_empty()))
    }

    /// Whether a small payload for this descriptor is held.
    #[must_use]
    pub fn small_payload(&self, descriptor: &DataDescriptor) -> Option<Bytes> {
        self.small_payloads.get(&descriptor.entry_key()).cloned()
    }

    /// All unexpired metadata entries matching `filter`, in unspecified
    /// order.
    #[must_use]
    pub fn match_metadata(&self, filter: &QueryFilter, now: SimTime) -> Vec<&DataDescriptor> {
        self.metadata
            .values()
            .filter(|e| e.expires_at.is_none_or(|t| t > now))
            .filter(|e| filter.matches(&e.descriptor))
            .map(|e| &e.descriptor)
            .collect()
    }

    /// All unexpired (descriptor, payload) small items matching `filter`.
    #[must_use]
    pub fn match_small_items(
        &self,
        filter: &QueryFilter,
        now: SimTime,
    ) -> Vec<(&DataDescriptor, Bytes)> {
        self.metadata
            .values()
            .filter(|e| e.expires_at.is_none_or(|t| t > now))
            .filter(|e| filter.matches(&e.descriptor))
            .filter_map(|e| {
                self.small_payloads
                    .get(&e.descriptor.entry_key())
                    .map(|p| (&e.descriptor, p.clone()))
            })
            .collect()
    }

    /// Whether a metadata entry for this descriptor is present (expired or
    /// not).
    #[must_use]
    pub fn contains_metadata(&self, descriptor: &DataDescriptor) -> bool {
        self.metadata.contains_key(&descriptor.entry_key())
    }

    /// Number of metadata entries currently stored.
    #[must_use]
    pub fn metadata_len(&self) -> usize {
        self.metadata.len()
    }

    /// Removes expired payload-less metadata entries (§II-C).
    pub fn gc(&mut self, now: SimTime) {
        self.metadata
            .retain(|_, e| e.expires_at.is_none_or(|t| t > now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Predicate, Relation};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn desc(ty: &str) -> DataDescriptor {
        DataDescriptor::builder().attr("type", ty).build()
    }

    fn item_desc(name: &str, chunks: i64) -> DataDescriptor {
        DataDescriptor::builder()
            .attr("type", "video")
            .attr("name", name)
            .attr("total_chunks", chunks)
            .build()
    }

    #[test]
    fn own_data_never_expires() {
        let mut s = DataStore::new();
        s.insert_own(desc("no2"), None);
        s.gc(t(1_000_000.0));
        assert_eq!(s.metadata_len(), 1);
    }

    #[test]
    fn cached_metadata_expires_without_payload() {
        let mut s = DataStore::new();
        assert!(s.cache_metadata(desc("no2"), t(10.0)));
        assert_eq!(s.match_metadata(&QueryFilter::match_all(), t(5.0)).len(), 1);
        // Expired entries stop matching even before gc.
        assert_eq!(
            s.match_metadata(&QueryFilter::match_all(), t(11.0)).len(),
            0
        );
        s.gc(t(11.0));
        assert_eq!(s.metadata_len(), 0);
    }

    #[test]
    fn recache_extends_expiry() {
        let mut s = DataStore::new();
        assert!(s.cache_metadata(desc("no2"), t(10.0)));
        assert!(!s.cache_metadata(desc("no2"), t(20.0)), "not new");
        s.gc(t(15.0));
        assert_eq!(s.metadata_len(), 1, "extended to t=20");
    }

    #[test]
    fn payload_pins_metadata() {
        let mut s = DataStore::new();
        s.cache_metadata(desc("no2"), t(10.0));
        s.cache_small_payload(&desc("no2"), Bytes::from_static(b"v"));
        s.gc(t(100.0));
        assert_eq!(s.metadata_len(), 1);
        assert_eq!(
            s.small_payload(&desc("no2")),
            Some(Bytes::from_static(b"v"))
        );
    }

    #[test]
    fn chunk_pins_item_metadata() {
        let mut s = DataStore::new();
        let item = item_desc("vid", 4);
        s.cache_metadata(item.clone(), t(10.0));
        s.insert_chunk(&item, ChunkId(2), Bytes::from_static(b"cc"));
        s.gc(t(100.0));
        assert!(s.contains_metadata(&item));
        assert!(s.has_chunk(&ItemName::new("vid"), ChunkId(2)));
        assert!(!s.has_chunk(&ItemName::new("vid"), ChunkId(0)));
        assert_eq!(s.chunk_ids(&ItemName::new("vid")), vec![ChunkId(2)]);
        assert_eq!(
            s.chunk(&ItemName::new("vid"), ChunkId(2)),
            Some(Bytes::from_static(b"cc"))
        );
    }

    #[test]
    fn caching_metadata_after_chunk_is_pinned() {
        let mut s = DataStore::new();
        let item = item_desc("vid", 4);
        s.insert_chunk(&item, ChunkId(0), Bytes::from_static(b"c"));
        // Re-learning the entry from the network must not add an expiry.
        s.cache_metadata(item.clone(), t(10.0));
        s.gc(t(100.0));
        assert!(s.contains_metadata(&item));
    }

    #[test]
    fn match_respects_filter() {
        let mut s = DataStore::new();
        s.insert_own(desc("no2"), None);
        s.insert_own(desc("co2"), None);
        let f = QueryFilter::new(vec![Predicate::new("type", Relation::Eq, "no2")]);
        let m = s.match_metadata(&f, t(0.0));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].get("type"), Some(&crate::AttrValue::Str("no2".into())));
    }

    #[test]
    fn match_small_items_returns_payloads() {
        let mut s = DataStore::new();
        s.insert_own(desc("no2"), Some(Bytes::from_static(b"12ppb")));
        s.insert_own(desc("co2"), None);
        let items = s.match_small_items(&QueryFilter::match_all(), t(0.0));
        assert_eq!(items.len(), 1, "only items with payloads");
        assert_eq!(items[0].1, Bytes::from_static(b"12ppb"));
    }

    #[test]
    fn item_descriptor_lookup_by_name() {
        let mut s = DataStore::new();
        let item = item_desc("vid", 4);
        s.insert_own(item.clone(), None);
        assert_eq!(
            s.item_descriptor_by_name(&ItemName::new("vid")),
            Some(&item)
        );
        assert_eq!(s.item_descriptor_by_name(&ItemName::new("nope")), None);
        // Chunk descriptors must not shadow the whole-item entry.
        let chunk_desc = item.chunk_descriptor(ChunkId(0));
        s.cache_metadata(chunk_desc, t(100.0));
        assert_eq!(
            s.item_descriptor_by_name(&ItemName::new("vid")),
            Some(&item)
        );
    }

    #[test]
    fn cache_respects_byte_budget_lru() {
        let mut s = DataStore::new();
        s.set_chunk_cache(ChunkCacheConfig {
            capacity_bytes: Some(2_000),
            policy: EvictionPolicy::Lru,
        });
        let item = item_desc("vid", 4);
        for c in 0..4u32 {
            s.cache_chunk(&item, ChunkId(c), Bytes::from(vec![0u8; 1_000]));
        }
        assert!(s.cached_chunk_bytes() <= 2_000);
        // Oldest (0, 1) evicted; newest (2, 3) kept.
        assert!(!s.has_chunk(&ItemName::new("vid"), ChunkId(0)));
        assert!(!s.has_chunk(&ItemName::new("vid"), ChunkId(1)));
        assert!(s.has_chunk(&ItemName::new("vid"), ChunkId(2)));
        assert!(s.has_chunk(&ItemName::new("vid"), ChunkId(3)));
    }

    #[test]
    fn lru_eviction_honours_access_recency() {
        let mut s = DataStore::new();
        s.set_chunk_cache(ChunkCacheConfig {
            capacity_bytes: Some(2_000),
            policy: EvictionPolicy::Lru,
        });
        let item = item_desc("vid", 3);
        s.cache_chunk(&item, ChunkId(0), Bytes::from(vec![0u8; 1_000]));
        s.cache_chunk(&item, ChunkId(1), Bytes::from(vec![0u8; 1_000]));
        // Touch chunk 0 so chunk 1 becomes the LRU victim.
        let _ = s.fetch_chunk(&ItemName::new("vid"), ChunkId(0));
        s.cache_chunk(&item, ChunkId(2), Bytes::from(vec![0u8; 1_000]));
        assert!(
            s.has_chunk(&ItemName::new("vid"), ChunkId(0)),
            "recently used survives"
        );
        assert!(
            !s.has_chunk(&ItemName::new("vid"), ChunkId(1)),
            "LRU victim"
        );
        assert!(s.has_chunk(&ItemName::new("vid"), ChunkId(2)));
    }

    #[test]
    fn lfu_eviction_honours_popularity() {
        let mut s = DataStore::new();
        s.set_chunk_cache(ChunkCacheConfig {
            capacity_bytes: Some(2_000),
            policy: EvictionPolicy::Lfu,
        });
        let item = item_desc("vid", 3);
        s.cache_chunk(&item, ChunkId(0), Bytes::from(vec![0u8; 1_000]));
        s.cache_chunk(&item, ChunkId(1), Bytes::from(vec![0u8; 1_000]));
        // Chunk 1 is popular (3 hits); chunk 0 never served.
        for _ in 0..3 {
            let _ = s.fetch_chunk(&ItemName::new("vid"), ChunkId(1));
        }
        s.cache_chunk(&item, ChunkId(2), Bytes::from(vec![0u8; 1_000]));
        assert!(
            !s.has_chunk(&ItemName::new("vid"), ChunkId(0)),
            "LFU victim"
        );
        assert!(
            s.has_chunk(&ItemName::new("vid"), ChunkId(1)),
            "popular chunk survives"
        );
    }

    #[test]
    fn own_chunks_are_never_evicted() {
        let mut s = DataStore::new();
        s.set_chunk_cache(ChunkCacheConfig {
            capacity_bytes: Some(500),
            policy: EvictionPolicy::Lru,
        });
        let item = item_desc("vid", 3);
        s.insert_chunk(&item, ChunkId(0), Bytes::from(vec![0u8; 1_000]));
        s.cache_chunk(&item, ChunkId(1), Bytes::from(vec![0u8; 1_000]));
        // The cached chunk must go; the pinned one stays despite the budget.
        assert!(
            s.has_chunk(&ItemName::new("vid"), ChunkId(0)),
            "own data pinned"
        );
        assert!(!s.has_chunk(&ItemName::new("vid"), ChunkId(1)));
        assert_eq!(s.cached_chunk_bytes(), 0);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut s = DataStore::new();
        let item = item_desc("vid", 8);
        for c in 0..8u32 {
            s.cache_chunk(&item, ChunkId(c), Bytes::from(vec![0u8; 10_000]));
        }
        assert_eq!(s.chunk_ids(&ItemName::new("vid")).len(), 8);
        assert_eq!(s.cached_chunk_bytes(), 80_000);
    }

    #[test]
    fn metadata_len_counts_entries() {
        let mut s = DataStore::new();
        assert_eq!(s.metadata_len(), 0);
        s.insert_own(desc("a"), None);
        s.insert_own(desc("b"), None);
        s.insert_own(desc("a"), None); // duplicate key
        assert_eq!(s.metadata_len(), 2);
    }
}
