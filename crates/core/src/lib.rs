//! Content-centric Peer Data Sharing (PDS): the protocols of Song et al.,
//! *"Content Centric Peer Data Sharing in Pervasive Edge Computing
//! Environments"* (ICDCS 2017), implemented from scratch.
//!
//! PDS lets opportunistically co-located edge devices discover what data
//! exist on nearby peers and retrieve them, without any backend:
//!
//! * **Peer Data Discovery (PDD)** — multi-round metadata collection using
//!   *lingering queries* (one query routes a continuing stream of
//!   responses), *mixedcast* (one response carries the union of entries
//!   several consumers need, each entry transmitted once) and *en-route
//!   message rewriting* (Bloom filters of already-received entries prune
//!   both responses and queries hop by hop). §III of the paper.
//! * **Peer Data Retrieval (PDR)** — two-phase retrieval of large chunked
//!   items: phase 1 builds per-chunk *Chunk Distribution Information* (CDI)
//!   routing state on demand; phase 2 recursively divides chunk queries
//!   among nearest neighbors with a min-max load-balancing heuristic
//!   (a Generalized Assignment Problem). §IV.
//! * **MDR baseline** — the paper's comparison point: multi-round chunk
//!   retrieval through the PDD machinery with Bloom-based redundancy
//!   detection but no CDI routing. §VI-B-3.
//!
//! The protocol engine ([`PdsEngine`]) is a pure state machine over virtual
//! time — unit-testable without any radio — while [`PdsNode`] adapts it to
//! the sans-io [`Application`] seam that backends (the simulator today, a
//! real-socket reactor tomorrow) drive. Data items are self-describing
//! ([`DataDescriptor`]) and queried by attribute predicates
//! ([`QueryFilter`]), the content-centric design that decouples data from
//! producer addresses.
//!
//! # Examples
//!
//! ```
//! use pds_core::{AttrValue, DataDescriptor, Predicate, QueryFilter, Relation};
//!
//! let sample = DataDescriptor::builder()
//!     .attr("namespace", "env")
//!     .attr("type", "no2")
//!     .attr("time", AttrValue::Time(1_451_635_200))
//!     .attr("x", 12.5)
//!     .build();
//! let filter = QueryFilter::new(vec![
//!     Predicate::new("type", Relation::Eq, "no2"),
//!     Predicate::range("x", 0.0, 50.0),
//! ]);
//! assert!(filter.matches(&sample));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod assign;
mod cdi;
mod config;
mod descriptor;
mod engine;
mod ids;
mod lqt;
mod message;
mod node;
mod predicate;
mod rng;
mod rounds;
mod sessions;
mod store;
mod time;
mod value;

pub use app::{Application, Command, Context, MessageHandle, MessageMeta, NodeId, TimerId};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};

pub use assign::{min_max_assign, AssignStrategy, ChunkCandidates};
pub use cdi::{CdiEntry, CdiTable};
pub use config::{PdrParams, PdsConfig, RoundParams};
pub use descriptor::{attrs, AttrName, DataDescriptor, DescriptorBuilder, EntryKey};
pub use engine::{Jitter, Outgoing, PdsEngine};
pub use ids::{ChunkId, ItemName, QueryId, ResponseId};
pub use lqt::{chunk_key, Lingering, LingeringQueryTable};
pub use message::{
    DecodeError, PdsMessage, QueryKind, QueryMessage, ResponseKind, ResponseMessage,
};
pub use node::PdsNode;
pub use predicate::{Predicate, QueryFilter, Relation};
pub use rounds::{RoundController, RoundDecision};
pub use sessions::{
    DiscoveryReport, DiscoverySession, RetrievalPhase, RetrievalReport, RetrievalSession,
};
pub use store::{ChunkCacheConfig, DataStore, EvictionPolicy, MetaEntry};
pub use value::AttrValue;
