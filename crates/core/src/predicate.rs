//! Query predicates and filters (§II-C).
//!
//! A query carries a conjunction of predicates, each constraining one
//! attribute with a relation (`=`, `≠`, `<`, `≤`, `>`, `≥`, or a closed
//! range — the paper's `∈`). A descriptor matches when every predicate
//! holds; a predicate on a missing attribute, or one whose value has a
//! different type, does not hold.

use crate::descriptor::DataDescriptor;
use crate::value::AttrValue;
use bytes::{Buf, BufMut};
use std::cmp::Ordering;
use std::fmt;

/// The relation of a [`Predicate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Attribute equals the value.
    Eq,
    /// Attribute differs from the value (but exists with the same type).
    Ne,
    /// Attribute is strictly less than the value.
    Lt,
    /// Attribute is at most the value.
    Le,
    /// Attribute is strictly greater than the value.
    Gt,
    /// Attribute is at least the value.
    Ge,
    /// Attribute lies in the closed range `[value, value2]`.
    InRange,
}

impl Relation {
    fn code(self) -> u8 {
        match self {
            Relation::Eq => 0,
            Relation::Ne => 1,
            Relation::Lt => 2,
            Relation::Le => 3,
            Relation::Gt => 4,
            Relation::Ge => 5,
            Relation::InRange => 6,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            0 => Relation::Eq,
            1 => Relation::Ne,
            2 => Relation::Lt,
            3 => Relation::Le,
            4 => Relation::Gt,
            5 => Relation::Ge,
            6 => Relation::InRange,
            _ => return None,
        })
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Eq => "=",
            Relation::Ne => "!=",
            Relation::Lt => "<",
            Relation::Le => "<=",
            Relation::Gt => ">",
            Relation::Ge => ">=",
            Relation::InRange => "in",
        })
    }
}

/// A single attribute constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    attr: String,
    relation: Relation,
    value: AttrValue,
    value2: Option<AttrValue>,
}

impl Predicate {
    /// Builds a predicate with a unary relation.
    ///
    /// # Panics
    ///
    /// Panics if `relation` is [`Relation::InRange`] (use
    /// [`Predicate::range`]).
    #[must_use]
    pub fn new(attr: impl Into<String>, relation: Relation, value: impl Into<AttrValue>) -> Self {
        assert!(
            relation != Relation::InRange,
            "use Predicate::range for InRange"
        );
        Self {
            attr: attr.into(),
            relation,
            value: value.into(),
            value2: None,
        }
    }

    /// Builds a closed-range predicate `lo ≤ attr ≤ hi`.
    #[must_use]
    pub fn range(
        attr: impl Into<String>,
        lo: impl Into<AttrValue>,
        hi: impl Into<AttrValue>,
    ) -> Self {
        Self {
            attr: attr.into(),
            relation: Relation::InRange,
            value: lo.into(),
            value2: Some(hi.into()),
        }
    }

    /// The constrained attribute name.
    #[must_use]
    pub fn attr(&self) -> &str {
        &self.attr
    }

    /// Whether `descriptor` satisfies this predicate.
    #[must_use]
    pub fn matches(&self, descriptor: &DataDescriptor) -> bool {
        let Some(actual) = descriptor.get(&self.attr) else {
            return false;
        };
        let Some(ord) = actual.partial_cmp_same_type(&self.value) else {
            return false;
        };
        match self.relation {
            Relation::Eq => ord == Ordering::Equal,
            Relation::Ne => ord != Ordering::Equal,
            Relation::Lt => ord == Ordering::Less,
            Relation::Le => ord != Ordering::Greater,
            Relation::Gt => ord == Ordering::Greater,
            Relation::Ge => ord != Ordering::Less,
            Relation::InRange => {
                if ord == Ordering::Less {
                    return false;
                }
                let Some(hi) = &self.value2 else { return false };
                matches!(
                    actual.partial_cmp_same_type(hi),
                    Some(Ordering::Less | Ordering::Equal)
                )
            }
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.put_u8(self.attr.len() as u8);
        out.put_slice(self.attr.as_bytes());
        out.put_u8(self.relation.code());
        self.value.encode(out);
        if let Some(v2) = &self.value2 {
            out.put_u8(1);
            v2.encode(out);
        } else {
            out.put_u8(0);
        }
    }

    fn decode(buf: &mut impl Buf) -> Option<Self> {
        if buf.remaining() < 1 {
            return None;
        }
        let alen = buf.get_u8() as usize;
        if buf.remaining() < alen + 1 {
            return None;
        }
        let mut ab = vec![0u8; alen];
        buf.copy_to_slice(&mut ab);
        let attr = String::from_utf8(ab).ok()?;
        let relation = Relation::from_code(buf.get_u8())?;
        let value = AttrValue::decode(buf)?;
        if buf.remaining() < 1 {
            return None;
        }
        let value2 = if buf.get_u8() == 1 {
            Some(AttrValue::decode(buf)?)
        } else {
            None
        };
        if relation == Relation::InRange && value2.is_none() {
            return None;
        }
        Some(Self {
            attr,
            relation,
            value,
            value2,
        })
    }

    fn encoded_len(&self) -> usize {
        1 + self.attr.len()
            + 1
            + self.value.encoded_len()
            + 1
            + self.value2.as_ref().map_or(0, AttrValue::encoded_len)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.relation, &self.value2) {
            (Relation::InRange, Some(hi)) => {
                write!(f, "{} in [{}, {}]", self.attr, self.value, hi)
            }
            _ => write!(f, "{} {} {}", self.attr, self.relation, self.value),
        }
    }
}

/// A conjunction of predicates; the empty filter matches everything.
///
/// # Examples
///
/// ```
/// use pds_core::{DataDescriptor, Predicate, QueryFilter, Relation};
///
/// let all = QueryFilter::match_all();
/// let d = DataDescriptor::builder().attr("type", "no2").build();
/// assert!(all.matches(&d));
/// let typed = QueryFilter::new(vec![Predicate::new("type", Relation::Eq, "co2")]);
/// assert!(!typed.matches(&d));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryFilter {
    predicates: Vec<Predicate>,
}

impl QueryFilter {
    /// A filter from the given predicates (conjunction).
    #[must_use]
    pub fn new(predicates: Vec<Predicate>) -> Self {
        Self { predicates }
    }

    /// The filter that matches every descriptor.
    #[must_use]
    pub fn match_all() -> Self {
        Self::default()
    }

    /// Whether the filter has no predicates.
    #[must_use]
    pub fn is_match_all(&self) -> bool {
        self.predicates.is_empty()
    }

    /// The predicates.
    #[must_use]
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Whether `descriptor` satisfies every predicate.
    #[must_use]
    pub fn matches(&self, descriptor: &DataDescriptor) -> bool {
        self.predicates.iter().all(|p| p.matches(descriptor))
    }

    /// Serializes the filter.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u8(self.predicates.len() as u8);
        for p in &self.predicates {
            p.encode(out);
        }
    }

    /// Deserializes a filter; `None` on malformed input.
    pub fn decode(buf: &mut impl Buf) -> Option<Self> {
        if buf.remaining() < 1 {
            return None;
        }
        let n = buf.get_u8() as usize;
        let mut predicates = Vec::with_capacity(n);
        for _ in 0..n {
            predicates.push(Predicate::decode(buf)?);
        }
        Some(Self { predicates })
    }

    /// Wire size of the encoded form.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        1 + self
            .predicates
            .iter()
            .map(Predicate::encoded_len)
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AttrValue;

    fn d(t: &str, x: f64, time: i64) -> DataDescriptor {
        DataDescriptor::builder()
            .attr("type", t)
            .attr("x", x)
            .attr("time", AttrValue::Time(time))
            .build()
    }

    #[test]
    fn relations_behave() {
        let desc = d("no2", 5.0, 100);
        assert!(Predicate::new("x", Relation::Eq, 5.0).matches(&desc));
        assert!(Predicate::new("x", Relation::Ne, 4.0).matches(&desc));
        assert!(Predicate::new("x", Relation::Lt, 6.0).matches(&desc));
        assert!(Predicate::new("x", Relation::Le, 5.0).matches(&desc));
        assert!(Predicate::new("x", Relation::Gt, 4.0).matches(&desc));
        assert!(Predicate::new("x", Relation::Ge, 5.0).matches(&desc));
        assert!(!Predicate::new("x", Relation::Lt, 5.0).matches(&desc));
        assert!(!Predicate::new("x", Relation::Gt, 5.0).matches(&desc));
    }

    #[test]
    fn range_is_closed() {
        let desc = d("no2", 5.0, 100);
        assert!(Predicate::range("x", 5.0, 10.0).matches(&desc));
        assert!(Predicate::range("x", 0.0, 5.0).matches(&desc));
        assert!(!Predicate::range("x", 5.1, 10.0).matches(&desc));
        assert!(!Predicate::range("x", 0.0, 4.9).matches(&desc));
    }

    #[test]
    fn missing_attribute_never_matches() {
        let desc = d("no2", 5.0, 100);
        assert!(!Predicate::new("absent", Relation::Eq, 1i64).matches(&desc));
        assert!(!Predicate::new("absent", Relation::Ne, 1i64).matches(&desc));
    }

    #[test]
    fn type_mismatch_never_matches() {
        let desc = d("no2", 5.0, 100);
        // "x" is a float; comparing against an int should not match.
        assert!(!Predicate::new("x", Relation::Eq, 5i64).matches(&desc));
        assert!(!Predicate::new("x", Relation::Ne, 5i64).matches(&desc));
    }

    #[test]
    fn filter_is_conjunction() {
        let desc = d("no2", 5.0, 100);
        let f = QueryFilter::new(vec![
            Predicate::new("type", Relation::Eq, "no2"),
            Predicate::range("time", AttrValue::Time(50), AttrValue::Time(150)),
        ]);
        assert!(f.matches(&desc));
        let f2 = QueryFilter::new(vec![
            Predicate::new("type", Relation::Eq, "no2"),
            Predicate::new("x", Relation::Gt, 10.0),
        ]);
        assert!(!f2.matches(&desc));
    }

    #[test]
    fn match_all_matches_everything() {
        assert!(QueryFilter::match_all().is_match_all());
        assert!(QueryFilter::match_all().matches(&d("a", 0.0, 0)));
        assert!(QueryFilter::match_all().matches(&DataDescriptor::default()));
    }

    #[test]
    fn filter_codec_round_trips() {
        let f = QueryFilter::new(vec![
            Predicate::new("type", Relation::Eq, "no2"),
            Predicate::range("x", 0.0, 5.0),
            Predicate::new("time", Relation::Ge, AttrValue::Time(10)),
        ]);
        let mut buf = Vec::new();
        f.encode(&mut buf);
        assert_eq!(buf.len(), f.encoded_len());
        let mut slice = &buf[..];
        let back = QueryFilter::decode(&mut slice).expect("decodes");
        assert_eq!(back, f);
    }

    #[test]
    fn decode_rejects_truncation() {
        let f = QueryFilter::new(vec![Predicate::range("x", 0.0, 5.0)]);
        let mut buf = Vec::new();
        f.encode(&mut buf);
        for cut in 1..buf.len() {
            let mut slice = &buf[..cut];
            assert_eq!(QueryFilter::decode(&mut slice), None, "cut {cut}");
        }
    }

    #[test]
    #[should_panic(expected = "InRange")]
    fn new_rejects_inrange() {
        let _ = Predicate::new("x", Relation::InRange, 1i64);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Predicate::new("type", Relation::Eq, "a").to_string(),
            "type = a"
        );
        assert_eq!(Predicate::range("x", 1i64, 2i64).to_string(), "x in [1, 2]");
    }
}
