//! PDS wire messages and their binary codec.
//!
//! A message is either a [`QueryMessage`] or a [`ResponseMessage`]. Intended
//! next-hop receiver lists live at the transport layer
//! ([`MessageMeta::intended`](crate::MessageMeta::intended)), as in the prototype where they are
//! part of the UDP broadcast header; everything else the paper's message
//! formats describe (§III-A) is here.

use crate::descriptor::DataDescriptor;
use crate::ids::{ChunkId, ItemName, QueryId, ResponseId};
use crate::predicate::QueryFilter;
use crate::{NodeId, SimTime};
use bytes::{Buf, BufMut, Bytes};
use std::fmt;

/// What a query asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// All (filter-matching) metadata entries — PDD (§III).
    Metadata,
    /// Small data items matching the filter, payloads included (§IV: "the
    /// latter follows almost the same process as metadata discovery").
    SmallData,
    /// Chunk Distribution Information for one item — PDR phase 1 (§IV-A).
    /// Carries the item's full descriptor, as the paper specifies
    /// ("'descriptor' whose value is the requested data item's metadata").
    Cdi {
        /// Descriptor of the large item whose chunk distribution is
        /// requested; its `name` attribute identifies the item.
        descriptor: DataDescriptor,
    },
    /// Specific chunks of one item — PDR phase 2 (§IV-B).
    Chunks {
        /// The large item.
        item: ItemName,
        /// The chunks requested from this neighbor.
        chunks: Vec<ChunkId>,
    },
    /// All not-yet-received chunks of one item — the MDR baseline
    /// (§VI-B-3); "not yet received" is carried by the query's Bloom filter.
    MdrChunks {
        /// The large item.
        item: ItemName,
        /// Total number of chunks (so providers know the id space).
        total_chunks: u32,
    },
}

/// A PDS query (§III-A): unique id, expiration (the *lingering* horizon),
/// current-hop sender, optional attribute filter, optional Bloom filter of
/// already-received entries, and the discovery round that built it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMessage {
    /// Globally unique query id (redundant-copy detection).
    pub id: QueryId,
    /// What is being asked for.
    pub kind: QueryKind,
    /// The node that transmitted this copy (rewritten every hop — the paper's
    /// `sender_id`, used to route responses back).
    pub sender: NodeId,
    /// When the lingering query expires and is removed from LQTs.
    pub expires_at: SimTime,
    /// Attribute predicates scoping the request.
    pub filter: QueryFilter,
    /// Serialized Bloom filter of entries the consumer already has
    /// (redundancy detection, §III-B-2); rewritten en-route.
    pub bloom: Option<Vec<u8>>,
    /// Discovery round number (selects the Bloom hash family); doubles as
    /// the division depth for directed chunk queries.
    pub round: u32,
    /// Remaining hop budget; 0 means unlimited (the paper's default — PDS
    /// targets limited-size networks, but notes "such limiting can be
    /// achieved easily with a hop counter if needed", §III-A-1).
    pub ttl_hops: u8,
}

/// The payload of a response.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseKind {
    /// Metadata entries (PDD).
    Metadata {
        /// The entries, pruned en-route by mixedcast rewriting.
        entries: Vec<DataDescriptor>,
    },
    /// Small data items with payloads.
    SmallData {
        /// (descriptor, payload) pairs.
        items: Vec<(DataDescriptor, Bytes)>,
    },
    /// CDI: which chunks are reachable at what distance (PDR phase 1).
    Cdi {
        /// The large item.
        item: ItemName,
        /// `(chunk, hop count)` pairs as seen from the transmitting node.
        pairs: Vec<(ChunkId, u32)>,
    },
    /// One chunk of a large item (PDR phase 2 / MDR). Self-describing so
    /// any overhearing node can cache it (content-centric caching).
    Chunk {
        /// Descriptor of the item the chunk belongs to.
        descriptor: DataDescriptor,
        /// Which chunk this is.
        chunk: ChunkId,
        /// The chunk bytes.
        data: Bytes,
    },
}

/// A PDS response (§III-A).
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseMessage {
    /// Random, globally unique response id (redundant-copy detection).
    pub id: ResponseId,
    /// The node that transmitted this copy.
    pub sender: NodeId,
    /// The payload.
    pub kind: ResponseKind,
}

/// Any PDS message.
#[derive(Debug, Clone, PartialEq)]
pub enum PdsMessage {
    /// A query.
    Query(QueryMessage),
    /// A response.
    Response(ResponseMessage),
}

/// Error decoding a [`PdsMessage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer ended before the message did.
    Truncated,
    /// An unknown enum tag was encountered.
    BadTag(u8),
    /// An embedded string was not valid UTF-8.
    BadString,
    /// An embedded descriptor or filter failed to decode.
    BadBody,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "message truncated"),
            Self::BadTag(t) => write!(f, "unknown message tag {t}"),
            Self::BadString => write!(f, "invalid UTF-8 in message"),
            Self::BadBody => write!(f, "malformed descriptor or filter"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_item(out: &mut Vec<u8>, item: &ItemName) {
    let b = item.as_str().as_bytes();
    out.put_u16_le(b.len() as u16);
    out.put_slice(b);
}

fn get_item(buf: &mut impl Buf) -> Result<ItemName, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    let mut b = vec![0u8; len];
    buf.copy_to_slice(&mut b);
    String::from_utf8(b)
        .map(ItemName::from)
        .map_err(|_| DecodeError::BadString)
}

fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    out.put_u32_le(data.len() as u32);
    out.put_slice(data);
}

fn get_bytes(buf: &mut impl Buf) -> Result<Bytes, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.copy_to_bytes(len))
}

impl PdsMessage {
    /// Serializes the message for transmission.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(64);
        match self {
            PdsMessage::Query(q) => {
                out.put_u8(0);
                out.put_u64_le(q.id.0);
                out.put_u32_le(q.sender.0);
                out.put_u64_le(q.expires_at.as_micros());
                out.put_u32_le(q.round);
                out.put_u8(q.ttl_hops);
                match &q.kind {
                    QueryKind::Metadata => out.put_u8(0),
                    QueryKind::SmallData => out.put_u8(1),
                    QueryKind::Cdi { descriptor } => {
                        out.put_u8(2);
                        out.extend_from_slice(&descriptor.encode());
                    }
                    QueryKind::Chunks { item, chunks } => {
                        out.put_u8(3);
                        put_item(&mut out, item);
                        out.put_u32_le(chunks.len() as u32);
                        for c in chunks {
                            out.put_u32_le(c.0);
                        }
                    }
                    QueryKind::MdrChunks { item, total_chunks } => {
                        out.put_u8(4);
                        put_item(&mut out, item);
                        out.put_u32_le(*total_chunks);
                    }
                }
                q.filter.encode(&mut out);
                match &q.bloom {
                    Some(b) => {
                        out.put_u8(1);
                        put_bytes(&mut out, b);
                    }
                    None => out.put_u8(0),
                }
            }
            PdsMessage::Response(r) => {
                out.put_u8(1);
                out.put_u64_le(r.id.0);
                out.put_u32_le(r.sender.0);
                match &r.kind {
                    ResponseKind::Metadata { entries } => {
                        out.put_u8(0);
                        out.put_u32_le(entries.len() as u32);
                        for e in entries {
                            out.extend_from_slice(&e.encode());
                        }
                    }
                    ResponseKind::SmallData { items } => {
                        out.put_u8(1);
                        out.put_u32_le(items.len() as u32);
                        for (d, payload) in items {
                            out.extend_from_slice(&d.encode());
                            put_bytes(&mut out, payload);
                        }
                    }
                    ResponseKind::Cdi { item, pairs } => {
                        out.put_u8(2);
                        put_item(&mut out, item);
                        out.put_u32_le(pairs.len() as u32);
                        for (c, h) in pairs {
                            out.put_u32_le(c.0);
                            out.put_u32_le(*h);
                        }
                    }
                    ResponseKind::Chunk {
                        descriptor,
                        chunk,
                        data,
                    } => {
                        out.put_u8(3);
                        out.extend_from_slice(&descriptor.encode());
                        out.put_u32_le(chunk.0);
                        put_bytes(&mut out, data);
                    }
                }
            }
        }
        Bytes::from(out)
    }

    /// Deserializes a message.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the buffer is truncated or malformed.
    pub fn decode(mut buf: &[u8]) -> Result<Self, DecodeError> {
        let buf = &mut buf;
        if buf.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        match buf.get_u8() {
            0 => {
                if buf.remaining() < 8 + 4 + 8 + 4 + 1 + 1 {
                    return Err(DecodeError::Truncated);
                }
                let id = QueryId(buf.get_u64_le());
                let sender = NodeId(buf.get_u32_le());
                let expires_at = SimTime::from_micros(buf.get_u64_le());
                let round = buf.get_u32_le();
                let ttl_hops = buf.get_u8();
                let kind = match buf.get_u8() {
                    0 => QueryKind::Metadata,
                    1 => QueryKind::SmallData,
                    2 => QueryKind::Cdi {
                        descriptor: DataDescriptor::decode(buf).ok_or(DecodeError::BadBody)?,
                    },
                    3 => {
                        let item = get_item(buf)?;
                        if buf.remaining() < 4 {
                            return Err(DecodeError::Truncated);
                        }
                        let n = buf.get_u32_le() as usize;
                        if buf.remaining() < n * 4 {
                            return Err(DecodeError::Truncated);
                        }
                        let chunks = (0..n).map(|_| ChunkId(buf.get_u32_le())).collect();
                        QueryKind::Chunks { item, chunks }
                    }
                    4 => {
                        let item = get_item(buf)?;
                        if buf.remaining() < 4 {
                            return Err(DecodeError::Truncated);
                        }
                        QueryKind::MdrChunks {
                            item,
                            total_chunks: buf.get_u32_le(),
                        }
                    }
                    t => return Err(DecodeError::BadTag(t)),
                };
                let filter = QueryFilter::decode(buf).ok_or(DecodeError::BadBody)?;
                if buf.remaining() < 1 {
                    return Err(DecodeError::Truncated);
                }
                let bloom = if buf.get_u8() == 1 {
                    Some(get_bytes(buf)?.to_vec())
                } else {
                    None
                };
                Ok(PdsMessage::Query(QueryMessage {
                    id,
                    kind,
                    sender,
                    expires_at,
                    filter,
                    bloom,
                    round,
                    ttl_hops,
                }))
            }
            1 => {
                if buf.remaining() < 8 + 4 + 1 {
                    return Err(DecodeError::Truncated);
                }
                let id = ResponseId(buf.get_u64_le());
                let sender = NodeId(buf.get_u32_le());
                let kind = match buf.get_u8() {
                    0 => {
                        if buf.remaining() < 4 {
                            return Err(DecodeError::Truncated);
                        }
                        let n = buf.get_u32_le() as usize;
                        let mut entries = Vec::with_capacity(n.min(65_536));
                        for _ in 0..n {
                            entries.push(DataDescriptor::decode(buf).ok_or(DecodeError::BadBody)?);
                        }
                        ResponseKind::Metadata { entries }
                    }
                    1 => {
                        if buf.remaining() < 4 {
                            return Err(DecodeError::Truncated);
                        }
                        let n = buf.get_u32_le() as usize;
                        let mut items = Vec::with_capacity(n.min(65_536));
                        for _ in 0..n {
                            let d = DataDescriptor::decode(buf).ok_or(DecodeError::BadBody)?;
                            let payload = get_bytes(buf)?;
                            items.push((d, payload));
                        }
                        ResponseKind::SmallData { items }
                    }
                    2 => {
                        let item = get_item(buf)?;
                        if buf.remaining() < 4 {
                            return Err(DecodeError::Truncated);
                        }
                        let n = buf.get_u32_le() as usize;
                        if buf.remaining() < n * 8 {
                            return Err(DecodeError::Truncated);
                        }
                        let pairs = (0..n)
                            .map(|_| (ChunkId(buf.get_u32_le()), buf.get_u32_le()))
                            .collect();
                        ResponseKind::Cdi { item, pairs }
                    }
                    3 => {
                        let descriptor = DataDescriptor::decode(buf).ok_or(DecodeError::BadBody)?;
                        if buf.remaining() < 4 {
                            return Err(DecodeError::Truncated);
                        }
                        let chunk = ChunkId(buf.get_u32_le());
                        let data = get_bytes(buf)?;
                        ResponseKind::Chunk {
                            descriptor,
                            chunk,
                            data,
                        }
                    }
                    t => return Err(DecodeError::BadTag(t)),
                };
                Ok(PdsMessage::Response(ResponseMessage { id, sender, kind }))
            }
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Predicate, Relation};

    fn roundtrip(m: &PdsMessage) {
        let bytes = m.encode();
        let back = PdsMessage::decode(&bytes).expect("decodes");
        assert_eq!(&back, m);
    }

    fn query(kind: QueryKind) -> QueryMessage {
        QueryMessage {
            id: QueryId(0xdead_beef),
            kind,
            sender: NodeId(7),
            expires_at: SimTime::from_secs_f64(12.5),
            filter: QueryFilter::new(vec![Predicate::new("type", Relation::Eq, "no2")]),
            bloom: Some(vec![1, 2, 3, 4]),
            round: 2,
            ttl_hops: 5,
        }
    }

    #[test]
    fn query_kinds_round_trip() {
        for kind in [
            QueryKind::Metadata,
            QueryKind::SmallData,
            QueryKind::Cdi {
                descriptor: DataDescriptor::builder()
                    .attr("name", "vid")
                    .attr("total_chunks", 80i64)
                    .build(),
            },
            QueryKind::Chunks {
                item: ItemName::new("vid"),
                chunks: vec![ChunkId(0), ChunkId(5), ChunkId(9)],
            },
            QueryKind::MdrChunks {
                item: ItemName::new("vid"),
                total_chunks: 80,
            },
        ] {
            roundtrip(&PdsMessage::Query(query(kind)));
        }
    }

    #[test]
    fn query_without_bloom_round_trips() {
        let mut q = query(QueryKind::Metadata);
        q.bloom = None;
        roundtrip(&PdsMessage::Query(q));
    }

    #[test]
    fn response_kinds_round_trip() {
        let d1 = DataDescriptor::builder().attr("type", "no2").build();
        let d2 = DataDescriptor::builder()
            .attr("type", "co2")
            .attr("x", 1.5)
            .build();
        for kind in [
            ResponseKind::Metadata {
                entries: vec![d1.clone(), d2.clone()],
            },
            ResponseKind::SmallData {
                items: vec![(d1.clone(), Bytes::from_static(b"payload"))],
            },
            ResponseKind::Cdi {
                item: ItemName::new("vid"),
                pairs: vec![(ChunkId(0), 0), (ChunkId(1), 3)],
            },
            ResponseKind::Chunk {
                descriptor: DataDescriptor::builder().attr("name", "vid").build(),
                chunk: ChunkId(4),
                data: Bytes::from(vec![9u8; 1024]),
            },
        ] {
            roundtrip(&PdsMessage::Response(ResponseMessage {
                id: ResponseId(42),
                sender: NodeId(3),
                kind,
            }));
        }
    }

    #[test]
    fn empty_metadata_response_round_trips() {
        roundtrip(&PdsMessage::Response(ResponseMessage {
            id: ResponseId(1),
            sender: NodeId(0),
            kind: ResponseKind::Metadata { entries: vec![] },
        }));
    }

    #[test]
    fn decode_rejects_truncations() {
        let m = PdsMessage::Query(query(QueryKind::Chunks {
            item: ItemName::new("vid"),
            chunks: vec![ChunkId(1), ChunkId(2)],
        }));
        let bytes = m.encode();
        for cut in 0..bytes.len() {
            assert!(
                PdsMessage::decode(&bytes[..cut]).is_err(),
                "cut {cut} decoded"
            );
        }
    }

    #[test]
    fn decode_rejects_bad_tags() {
        assert_eq!(PdsMessage::decode(&[7]), Err(DecodeError::BadTag(7)));
        assert_eq!(PdsMessage::decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn chunk_payload_is_zero_copyish() {
        let data = Bytes::from(vec![3u8; 256 * 1024]);
        let m = PdsMessage::Response(ResponseMessage {
            id: ResponseId(1),
            sender: NodeId(0),
            kind: ResponseKind::Chunk {
                descriptor: DataDescriptor::builder().attr("name", "vid").build(),
                chunk: ChunkId(0),
                data: data.clone(),
            },
        });
        let bytes = m.encode();
        let PdsMessage::Response(r) = PdsMessage::decode(&bytes).expect("decodes") else {
            panic!()
        };
        let ResponseKind::Chunk { data: got, .. } = r.kind else {
            panic!()
        };
        assert_eq!(got, data);
    }
}
