//! Protocol configuration with the paper's calibrated defaults.

use crate::assign::AssignStrategy;
use crate::SimDuration;

/// Multi-round discovery parameters (§III-B-2, Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundParams {
    /// The recent time window `T` over which response arrivals are counted.
    /// The paper finds recall saturates for `T ≥ 0.6–0.8 s` and settles on
    /// 1 s.
    pub t_window: SimDuration,
    /// Stop threshold `T_r`: the round ends when (responses in the last
    /// window) / (responses this round) ≤ `T_r`. Best value 0.
    pub t_r: f64,
    /// New-round threshold `T_d`: another round starts while (new entries
    /// this round) / (all entries) > `T_d`. Best value 0.
    pub t_d: f64,
    /// How often the consumer re-evaluates the round state.
    pub poll: SimDuration,
    /// Hard cap on rounds (safety net; the controller normally terminates
    /// via `T_d`).
    pub max_rounds: u32,
}

impl Default for RoundParams {
    fn default() -> Self {
        Self {
            t_window: SimDuration::from_secs(1),
            t_r: 0.0,
            t_d: 0.0,
            poll: SimDuration::from_millis(200),
            max_rounds: 12,
        }
    }
}

/// Two-phase retrieval parameters (§IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdrParams {
    /// Minimum time spent collecting CDI before phase 2 starts, even when
    /// coverage is already complete (lets closer copies be found).
    pub phase1_min: SimDuration,
    /// Give up waiting for full CDI coverage after this long and proceed
    /// with (or re-query for) what is known.
    pub phase1_timeout: SimDuration,
    /// Base stall threshold: chunks still missing after this long with no
    /// progress are re-requested.
    pub watchdog: SimDuration,
    /// Additional stall allowance per missing chunk. A 256 KB chunk needs
    /// ~0.3 s of clean airtime per hop, and the funnel around the consumer
    /// serializes; without this scaling the watchdog re-requests a large
    /// item's chunks while they are still queued, duplicating the transfer
    /// and congesting the medium.
    pub watchdog_per_chunk: SimDuration,
    /// Maximum number of recovery attempts (CDI re-query + chunk re-request)
    /// before the retrieval reports what it has.
    pub max_recovery: u32,
}

impl Default for PdrParams {
    fn default() -> Self {
        Self {
            phase1_min: SimDuration::from_millis(300),
            phase1_timeout: SimDuration::from_secs(2),
            watchdog: SimDuration::from_secs(3),
            watchdog_per_chunk: SimDuration::from_millis(750),
            max_recovery: 10,
        }
    }
}

/// Complete PDS protocol configuration.
///
/// The ablation switches (`mixedcast`, `rewrite`, `one_shot_queries`,
/// `assign`) isolate the paper's design choices; defaults are the full PDS
/// design.
#[derive(Debug, Clone, PartialEq)]
pub struct PdsConfig {
    /// Lifetime of a metadata entry cached *without* payload (§II-C: entries
    /// expire unless the payload arrives).
    pub metadata_ttl: SimDuration,
    /// Lifetime of a CDI routing entry for a chunk the node does not hold
    /// (§IV-A: "obsolete CDI entries do not stay forever").
    pub cdi_ttl: SimDuration,
    /// How long a query lingers in the LQT (its expiration time).
    pub query_lifetime: SimDuration,
    /// Random delay before a node answers a query, spreading simultaneous
    /// responders.
    pub response_jitter: SimDuration,
    /// Multi-round discovery parameters.
    pub rounds: RoundParams,
    /// Target Bloom-filter false-positive probability (§V-3; paper < 0.01).
    pub bloom_fpp: f64,
    /// Chunk size for large items (paper: 256 KB).
    pub chunk_size: usize,
    /// Two-phase retrieval parameters.
    pub pdr: PdrParams,
    /// Mixedcast: join entries needed by several consumers into one
    /// response, each entry transmitted once (§III-B-1). Disabling sends one
    /// response per matching lingering query.
    pub mixedcast: bool,
    /// En-route Bloom rewriting of responses and queries (§III-B-2).
    /// Disabling returns every matching entry at every hop.
    pub rewrite: bool,
    /// Ablation: remove a lingering query after the first response it
    /// forwards, like a CCN/NDN Interest, instead of at expiration.
    pub one_shot_queries: bool,
    /// Chunk-to-neighbor assignment strategy (§IV-B).
    pub assign: AssignStrategy,
    /// Optional hop budget on flooded queries (§III-A-1: "such limiting can
    /// be achieved easily with a hop counter if needed"); `None` floods the
    /// whole (limited-size) network, as the paper does.
    pub query_hop_limit: Option<u8>,
    /// Probability that a node relays a flooded query — the classic
    /// probabilistic broadcast-storm reduction the paper points to
    /// (§VII, paper refs 26 and 27). 1.0 = always forward (the paper's behaviour).
    pub forward_probability: f64,
    /// Storage budget and replacement policy for opportunistically cached
    /// chunks (§VII: finite storage demands a caching strategy).
    pub chunk_cache: crate::store::ChunkCacheConfig,
    /// Per-node byte budget for the lingering query table (approximate
    /// resident bytes: cached blooms, chunk bitsets, CDI bookkeeping).
    /// Inserting past it evicts the oldest queries, and it bounds the
    /// capacity of synthesized per-query Bloom filters. The default is
    /// generous — tens of simultaneous lingering queries — so protocol
    /// behavior only changes under genuine memory pressure; city-scale
    /// scenarios tighten it (the kernel memory diet).
    pub lqt_byte_budget: usize,
}

impl Default for PdsConfig {
    fn default() -> Self {
        Self {
            metadata_ttl: SimDuration::from_secs(120),
            cdi_ttl: SimDuration::from_secs(180),
            query_lifetime: SimDuration::from_secs(20),
            response_jitter: SimDuration::from_millis(20),
            rounds: RoundParams::default(),
            bloom_fpp: 0.01,
            chunk_size: 256 * 1024,
            pdr: PdrParams::default(),
            mixedcast: true,
            rewrite: true,
            one_shot_queries: false,
            assign: AssignStrategy::MinMax,
            query_hop_limit: None,
            forward_probability: 1.0,
            chunk_cache: crate::store::ChunkCacheConfig::default(),
            lqt_byte_budget: 512 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PdsConfig::default();
        assert_eq!(c.rounds.t_window, SimDuration::from_secs(1));
        assert_eq!(c.rounds.t_r, 0.0);
        assert_eq!(c.rounds.t_d, 0.0);
        assert_eq!(c.chunk_size, 256 * 1024);
        assert!(c.mixedcast && c.rewrite && !c.one_shot_queries);
        assert_eq!(c.assign, AssignStrategy::MinMax);
        assert!(c.bloom_fpp < 0.011);
    }
}
