//! Load-balanced chunk-to-neighbor assignment (§IV-B, Eq. 1).
//!
//! Choosing which neighbor to request each chunk from is a min-max
//! Generalized Assignment Problem: minimize the maximum per-neighbor load
//! subject to each chunk being assigned to exactly one neighbor that can
//! serve it. GAP is NP-hard; the paper uses an `O(|N||C|²)` repair
//! heuristic: assign each chunk to its least-hop neighbor, then repeatedly
//! move one chunk off the most-loaded neighbor (to the alternative with the
//! next-smallest hop count) while that decreases the maximum load.

use crate::ids::ChunkId;
use crate::NodeId;
use std::collections::BTreeMap;

/// Which assignment algorithm to use (ablation hook).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignStrategy {
    /// The paper's min-max repair heuristic.
    #[default]
    MinMax,
    /// Pure least-hop greedy with no load balancing (the starting point of
    /// the heuristic) — kept as the ablation baseline.
    Greedy,
}

/// The candidate providers of one chunk: `(neighbor, hop count)` pairs.
pub type ChunkCandidates = (ChunkId, Vec<(NodeId, u32)>);

/// Assigns every chunk to one capable neighbor.
///
/// Chunks with an empty candidate list are omitted from the result (the
/// caller treats them as unroutable and falls back to CDI re-query).
/// Deterministic: ties prefer the lower hop count, then the currently
/// less-loaded neighbor, then the smaller node id.
///
/// # Examples
///
/// ```
/// use pds_core::{min_max_assign, AssignStrategy, ChunkId, NodeId};
///
/// // Two neighbors both hold both chunks at hop 1: the min-max heuristic
/// // spreads the load instead of sending both requests to one neighbor.
/// let candidates = vec![
///     (ChunkId(0), vec![(NodeId(1), 1), (NodeId(2), 1)]),
///     (ChunkId(1), vec![(NodeId(1), 1), (NodeId(2), 1)]),
/// ];
/// let plan = min_max_assign(&candidates, AssignStrategy::MinMax);
/// assert_eq!(plan.len(), 2, "both neighbors get one chunk each");
/// ```
#[must_use]
pub fn min_max_assign(
    chunks: &[ChunkCandidates],
    strategy: AssignStrategy,
) -> BTreeMap<NodeId, Vec<ChunkId>> {
    // Working state: per-chunk chosen provider and per-neighbor load, where
    // load is the sum of assigned hop counts (the objective of Eq. 1; a hop
    // count is the cost of hauling that chunk through the network).
    let mut choice: Vec<Option<(NodeId, u32)>> = Vec::with_capacity(chunks.len());
    let mut load: BTreeMap<NodeId, u64> = BTreeMap::new();

    // Initial greedy: least hop count; ties to the less-loaded neighbor.
    for (_, cands) in chunks {
        if cands.is_empty() {
            choice.push(None);
            continue;
        }
        let min_hop = cands.iter().map(|&(_, h)| h).min().expect("non-empty");
        let best = cands
            .iter()
            .filter(|&&(_, h)| h == min_hop)
            .min_by_key(|&&(n, _)| (load.get(&n).copied().unwrap_or(0), n))
            .expect("non-empty");
        choice.push(Some(*best));
        *load.entry(best.0).or_default() += u64::from(best.1.max(1));
    }

    if strategy == AssignStrategy::MinMax {
        // Repair loop: move one chunk off the most-loaded neighbor while the
        // maximum load decreases.
        while let Some((&max_n, &max_load)) = load.iter().max_by_key(|&(n, l)| (*l, *n)) {
            let mut best_move: Option<(usize, NodeId, u32, u64)> = None; // (chunk idx, to, hop, resulting max)
            for (idx, (_, cands)) in chunks.iter().enumerate() {
                let Some((cur_n, cur_h)) = choice[idx] else {
                    continue;
                };
                if cur_n != max_n {
                    continue;
                }
                for &(alt_n, alt_h) in cands {
                    if alt_n == max_n {
                        continue;
                    }
                    let new_from = max_load - u64::from(cur_h.max(1));
                    let new_to = load.get(&alt_n).copied().unwrap_or(0) + u64::from(alt_h.max(1));
                    // Resulting max among the two touched neighbors; others
                    // are ≤ max_load by definition of max_n... except other
                    // neighbors tied at max_load, so account for them.
                    let other_max = load
                        .iter()
                        .filter(|&(n, _)| *n != max_n && *n != alt_n)
                        .map(|(_, &l)| l)
                        .max()
                        .unwrap_or(0);
                    let resulting = new_from.max(new_to).max(other_max);
                    if resulting < max_load
                        && best_move.is_none_or(|(_, _, _, best)| resulting < best)
                    {
                        best_move = Some((idx, alt_n, alt_h, resulting));
                    }
                }
            }
            let Some((idx, to, hop, _)) = best_move else {
                break; // no improving move: maximum load no longer decreases
            };
            let (from_n, from_h) = choice[idx].expect("chosen");
            *load.get_mut(&from_n).expect("loaded") -= u64::from(from_h.max(1));
            if load[&from_n] == 0 {
                load.remove(&from_n);
            }
            *load.entry(to).or_default() += u64::from(hop.max(1));
            choice[idx] = Some((to, hop));
        }
    }

    let mut plan: BTreeMap<NodeId, Vec<ChunkId>> = BTreeMap::new();
    for ((chunk, _), chosen) in chunks.iter().zip(choice) {
        if let Some((n, _)) = chosen {
            plan.entry(n).or_default().push(*chunk);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn c(i: u32) -> ChunkId {
        ChunkId(i)
    }

    fn assert_valid(plan: &BTreeMap<NodeId, Vec<ChunkId>>, chunks: &[ChunkCandidates]) {
        // Every routable chunk assigned exactly once, to a capable neighbor.
        let mut seen = pds_det::DetSet::default();
        for (node, assigned) in plan {
            for chunk in assigned {
                assert!(seen.insert(*chunk), "chunk {chunk} assigned twice");
                let cands = &chunks
                    .iter()
                    .find(|(id, _)| id == chunk)
                    .expect("known chunk")
                    .1;
                assert!(
                    cands.iter().any(|(cn, _)| cn == node),
                    "chunk {chunk} assigned to incapable neighbor {node}"
                );
            }
        }
        let routable = chunks.iter().filter(|(_, v)| !v.is_empty()).count();
        assert_eq!(seen.len(), routable, "all routable chunks assigned");
    }

    #[test]
    fn spreads_load_across_equal_neighbors() {
        let chunks: Vec<ChunkCandidates> = (0..10)
            .map(|i| (c(i), vec![(n(1), 1), (n(2), 1)]))
            .collect();
        let plan = min_max_assign(&chunks, AssignStrategy::MinMax);
        assert_valid(&plan, &chunks);
        assert_eq!(plan[&n(1)].len(), 5);
        assert_eq!(plan[&n(2)].len(), 5);
    }

    #[test]
    fn greedy_piles_onto_first_neighbor_when_tied() {
        // Greedy with load-aware tie-breaking still alternates; use uneven
        // hops to expose the difference: neighbor 1 is closest for all.
        let chunks: Vec<ChunkCandidates> =
            (0..8).map(|i| (c(i), vec![(n(1), 1), (n(2), 2)])).collect();
        let greedy = min_max_assign(&chunks, AssignStrategy::Greedy);
        assert_valid(&greedy, &chunks);
        assert_eq!(greedy[&n(1)].len(), 8, "greedy always takes the least hop");

        let balanced = min_max_assign(&chunks, AssignStrategy::MinMax);
        assert_valid(&balanced, &chunks);
        let max_load = balanced.values().map(Vec::len).max().unwrap();
        assert!(
            max_load < 8,
            "min-max should move some chunks off the hot neighbor"
        );
    }

    #[test]
    fn single_provider_gets_everything() {
        let chunks: Vec<ChunkCandidates> = (0..5).map(|i| (c(i), vec![(n(3), 2)])).collect();
        let plan = min_max_assign(&chunks, AssignStrategy::MinMax);
        assert_valid(&plan, &chunks);
        assert_eq!(plan[&n(3)].len(), 5);
    }

    #[test]
    fn unroutable_chunks_are_omitted() {
        let chunks: Vec<ChunkCandidates> = vec![
            (c(0), vec![(n(1), 1)]),
            (c(1), vec![]),
            (c(2), vec![(n(1), 1)]),
        ];
        let plan = min_max_assign(&chunks, AssignStrategy::MinMax);
        assert_valid(&plan, &chunks);
        let assigned: usize = plan.values().map(Vec::len).sum();
        assert_eq!(assigned, 2);
    }

    #[test]
    fn empty_input_gives_empty_plan() {
        let plan = min_max_assign(&[], AssignStrategy::MinMax);
        assert!(plan.is_empty());
    }

    #[test]
    fn minmax_never_worse_than_greedy() {
        // Pseudo-random instances; the repair loop must never increase the
        // maximum hop-weighted load.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rand = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let n_chunks = 1 + (rand() % 12) as u32;
            let n_neighbors = 1 + (rand() % 4) as u32;
            let chunks: Vec<ChunkCandidates> = (0..n_chunks)
                .map(|i| {
                    let mut cands: Vec<(NodeId, u32)> = Vec::new();
                    for j in 0..n_neighbors {
                        if rand() % 4 != 0 {
                            cands.push((n(j), 1 + (rand() % 3) as u32));
                        }
                    }
                    (c(i), cands)
                })
                .collect();
            let load_of = |plan: &BTreeMap<NodeId, Vec<ChunkId>>| -> u64 {
                plan.iter()
                    .map(|(node, assigned)| {
                        assigned
                            .iter()
                            .map(|chunk| {
                                let cands =
                                    &chunks.iter().find(|(id, _)| id == chunk).expect("chunk").1;
                                u64::from(
                                    cands
                                        .iter()
                                        .find(|(cn, _)| cn == node)
                                        .expect("capable")
                                        .1
                                        .max(1),
                                )
                            })
                            .sum::<u64>()
                    })
                    .max()
                    .unwrap_or(0)
            };
            let greedy = min_max_assign(&chunks, AssignStrategy::Greedy);
            let minmax = min_max_assign(&chunks, AssignStrategy::MinMax);
            assert_valid(&greedy, &chunks);
            assert_valid(&minmax, &chunks);
            assert!(
                load_of(&minmax) <= load_of(&greedy),
                "minmax {} > greedy {}",
                load_of(&minmax),
                load_of(&greedy)
            );
        }
    }

    #[test]
    fn deterministic_output() {
        let chunks: Vec<ChunkCandidates> = (0..6)
            .map(|i| (c(i), vec![(n(1), 1), (n(2), 1), (n(3), 2)]))
            .collect();
        let a = min_max_assign(&chunks, AssignStrategy::MinMax);
        let b = min_max_assign(&chunks, AssignStrategy::MinMax);
        assert_eq!(a, b);
    }
}
