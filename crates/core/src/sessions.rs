//! Consumer-side operation state: what a discovery or retrieval has
//! collected so far, and the reports the evaluation harness reads.

use crate::descriptor::{DataDescriptor, EntryKey};
use crate::ids::{ChunkId, ItemName, QueryId};
use crate::predicate::QueryFilter;
use crate::rounds::RoundController;
use crate::{SimDuration, SimTime};
use pds_det::DetMap;
use std::collections::BTreeSet;

/// A running (or finished) metadata / small-data discovery at a consumer.
#[derive(Debug)]
pub struct DiscoverySession {
    pub(crate) filter: QueryFilter,
    pub(crate) small_data: bool,
    pub(crate) collected: DetMap<EntryKey, DataDescriptor>,
    pub(crate) controller: RoundController,
    pub(crate) started_at: SimTime,
    pub(crate) last_new_at: SimTime,
    pub(crate) finished_at: Option<SimTime>,
    pub(crate) current_query: QueryId,
    pub(crate) rounds_sent: u32,
    pub(crate) round_log: Vec<(SimTime, u32)>,
}

impl DiscoverySession {
    /// Whether the discovery has terminated.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Every round start as `(when, round number)`, in issue order. The
    /// DST harness checks this log against the legal round state machine
    /// (strictly increasing rounds, non-decreasing times).
    #[must_use]
    pub fn round_log(&self) -> &[(SimTime, u32)] {
        &self.round_log
    }

    /// Immutable snapshot of results so far.
    #[must_use]
    pub fn report(&self) -> DiscoveryReport {
        DiscoveryReport {
            entries: self.collected.len(),
            rounds: self.rounds_sent,
            started_at: self.started_at,
            finished_at: self.finished_at,
            latency: self.last_new_at.since(self.started_at),
        }
    }

    /// The collected descriptors, in unspecified order.
    #[must_use]
    pub fn entries(&self) -> Vec<&DataDescriptor> {
        self.collected.values().collect()
    }
}

/// Summary of a discovery operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiscoveryReport {
    /// Distinct metadata entries collected.
    pub entries: usize,
    /// Rounds issued (1 = single round sufficed).
    pub rounds: u32,
    /// When the first query was sent.
    pub started_at: SimTime,
    /// When the controller declared the discovery finished (`None` while
    /// running).
    pub finished_at: Option<SimTime>,
    /// The paper's latency metric: first query sent → last *new* entry
    /// arrival.
    pub latency: SimDuration,
}

/// Which stage a retrieval is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrievalPhase {
    /// PDR phase 1: collecting Chunk Distribution Information.
    CdiCollection,
    /// PDR phase 2 (or the whole of MDR): fetching chunks.
    ChunkRetrieval,
    /// Finished (all chunks, or recovery budget exhausted).
    Done,
}

/// A running (or finished) large-item retrieval at a consumer.
#[derive(Debug)]
pub struct RetrievalSession {
    pub(crate) item: ItemName,
    pub(crate) descriptor: DataDescriptor,
    pub(crate) total_chunks: u32,
    pub(crate) received: BTreeSet<ChunkId>,
    pub(crate) bytes_received: u64,
    pub(crate) phase: RetrievalPhase,
    pub(crate) started_at: SimTime,
    pub(crate) phase_started_at: SimTime,
    pub(crate) last_progress_at: SimTime,
    pub(crate) finished_at: Option<SimTime>,
    pub(crate) recovery_attempts: u32,
    pub(crate) mdr: bool,
    pub(crate) controller: Option<RoundController>,
    pub(crate) rounds_sent: u32,
    pub(crate) transitions: Vec<(SimTime, RetrievalPhase)>,
}

impl RetrievalSession {
    /// Whether the retrieval has terminated.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.phase == RetrievalPhase::Done
    }

    /// Every phase entered as `(when, phase)`, starting with the initial
    /// phase. The DST harness checks this log against the legal session
    /// state machine: `CdiCollection → ChunkRetrieval → Done` for PDR
    /// (phase-1 recovery may repeat `CdiCollection` before giving up),
    /// `ChunkRetrieval → Done` for MDR, times non-decreasing, `Done`
    /// terminal.
    #[must_use]
    pub fn transitions(&self) -> &[(SimTime, RetrievalPhase)] {
        &self.transitions
    }

    /// The item being retrieved.
    #[must_use]
    pub fn item(&self) -> &ItemName {
        &self.item
    }

    /// Immutable snapshot of progress.
    #[must_use]
    pub fn report(&self) -> RetrievalReport {
        RetrievalReport {
            total_chunks: self.total_chunks,
            received_chunks: self.received.len() as u32,
            recall: if self.total_chunks == 0 {
                1.0
            } else {
                self.received.len() as f64 / f64::from(self.total_chunks)
            },
            bytes_received: self.bytes_received,
            rounds: self.rounds_sent,
            recovery_attempts: self.recovery_attempts,
            started_at: self.started_at,
            finished_at: self.finished_at,
            latency: self.last_progress_at.since(self.started_at),
            phase: self.phase,
        }
    }
}

/// Summary of a retrieval operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrievalReport {
    /// Chunks the item consists of.
    pub total_chunks: u32,
    /// Distinct chunks received (or already held).
    pub received_chunks: u32,
    /// `received / total` — the paper's recall metric.
    pub recall: f64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Chunk-query waves (PDR) or rounds (MDR) issued.
    pub rounds: u32,
    /// Recovery attempts used.
    pub recovery_attempts: u32,
    /// When the retrieval started.
    pub started_at: SimTime,
    /// When it finished (`None` while running).
    pub finished_at: Option<SimTime>,
    /// Start → last chunk arrival.
    pub latency: SimDuration,
    /// Current phase.
    pub phase: RetrievalPhase,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoundParams;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn discovery_report_computes_latency() {
        let mut s = DiscoverySession {
            filter: QueryFilter::match_all(),
            small_data: false,
            collected: DetMap::default(),
            controller: RoundController::new(RoundParams::default(), t(1.0)),
            started_at: t(1.0),
            last_new_at: t(4.5),
            finished_at: None,
            current_query: QueryId(1),
            rounds_sent: 2,
            round_log: vec![(t(1.0), 1), (t(3.0), 2)],
        };
        let r = s.report();
        assert_eq!(r.latency, SimDuration::from_secs_f64(3.5));
        assert_eq!(r.rounds, 2);
        assert!(!s.is_finished());
        s.finished_at = Some(t(5.0));
        assert!(s.is_finished());
    }

    #[test]
    fn retrieval_report_computes_recall() {
        let mut received = BTreeSet::new();
        received.insert(ChunkId(0));
        received.insert(ChunkId(1));
        let s = RetrievalSession {
            item: ItemName::new("vid"),
            descriptor: DataDescriptor::builder().attr("name", "vid").build(),
            total_chunks: 8,
            received,
            bytes_received: 512,
            phase: RetrievalPhase::ChunkRetrieval,
            started_at: t(0.0),
            phase_started_at: t(0.0),
            last_progress_at: t(2.0),
            finished_at: None,
            recovery_attempts: 1,
            mdr: false,
            controller: None,
            rounds_sent: 1,
            transitions: vec![
                (t(0.0), RetrievalPhase::CdiCollection),
                (t(1.0), RetrievalPhase::ChunkRetrieval),
            ],
        };
        let r = s.report();
        assert!((r.recall - 0.25).abs() < 1e-12);
        assert_eq!(r.received_chunks, 2);
        assert_eq!(r.latency, SimDuration::from_secs(2));
        assert!(!s.is_finished());
        assert_eq!(s.item().as_str(), "vid");
    }

    #[test]
    fn zero_chunk_item_has_full_recall() {
        let s = RetrievalSession {
            item: ItemName::new("empty"),
            descriptor: DataDescriptor::builder().attr("name", "empty").build(),
            total_chunks: 0,
            received: BTreeSet::new(),
            bytes_received: 0,
            phase: RetrievalPhase::Done,
            started_at: t(0.0),
            phase_started_at: t(0.0),
            last_progress_at: t(0.0),
            finished_at: Some(t(0.0)),
            recovery_attempts: 0,
            mdr: true,
            controller: None,
            rounds_sent: 0,
            transitions: vec![(t(0.0), RetrievalPhase::Done)],
        };
        assert!((s.report().recall - 1.0).abs() < 1e-12);
        assert!(s.is_finished());
    }
}
