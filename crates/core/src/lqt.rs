//! The Lingering Query Table (§III-A).
//!
//! Unlike a CCN/NDN Interest — consumed by its first matching Data — a
//! lingering query stays in the table until its expiration and keeps routing
//! the continuing stream of responses back toward its sender. The table also
//! holds each query's Bloom filter (cached at insertion, §III-B-2) which
//! en-route rewriting mutates, and the per-query bookkeeping PDR needs
//! (remaining requested chunks, best CDI distances already reported).

use crate::ids::{ChunkId, ItemName, QueryId};
use crate::message::{QueryKind, QueryMessage};
use crate::{NodeId, SimTime};
use pds_bloom::BloomFilter;
use pds_det::DetMap;
use std::collections::BTreeSet;

/// Canonical Bloom-filter / dedup key for a chunk of an item (used by MDR
/// redundancy detection and consumer-side chunk tracking).
#[must_use]
pub fn chunk_key(item: &ItemName, chunk: ChunkId) -> Vec<u8> {
    let mut k = Vec::with_capacity(item.as_str().len() + 5);
    k.extend_from_slice(item.as_str().as_bytes());
    k.push(0);
    k.extend_from_slice(&chunk.0.to_le_bytes());
    k
}

/// One lingering query and its mutable en-route state.
#[derive(Debug)]
pub struct Lingering {
    /// The query as last received.
    pub query: QueryMessage,
    /// The neighbor that transmitted it — where responses are routed.
    pub upstream: NodeId,
    /// The query's Bloom filter, decoded once and rewritten en-route.
    pub bloom: Option<BloomFilter>,
    /// For [`QueryKind::Chunks`]: chunks still owed upstream; relaying a
    /// chunk removes it so later copies are not re-relayed.
    pub remaining_chunks: BTreeSet<ChunkId>,
    /// For [`QueryKind::Cdi`]: best hop count already reported upstream per
    /// chunk; only improvements are forwarded.
    pub reported_cdi: DetMap<ChunkId, u32>,
    /// One-shot ablation: set after the first forwarded response.
    pub exhausted: bool,
}

impl Lingering {
    /// Whether the query is still alive at `now`.
    #[must_use]
    pub fn unexpired(&self, now: SimTime) -> bool {
        self.query.expires_at > now
    }

    /// Whether `key` is already covered by the query's Bloom filter (i.e.
    /// the consumer has it, or it was already sent toward them).
    #[must_use]
    pub fn bloom_contains(&self, key: &[u8]) -> bool {
        self.bloom.as_ref().is_some_and(|b| b.contains(key))
    }

    /// Records that `key` has been sent toward the consumer.
    pub fn bloom_insert(&mut self, key: &[u8]) {
        if let Some(b) = &mut self.bloom {
            b.insert(key);
        }
    }
}

/// The table of lingering queries, keyed by query id.
///
/// # Examples
///
/// ```
/// use pds_core::{
///     LingeringQueryTable, NodeId, QueryFilter, QueryId, QueryKind, QueryMessage,
/// };
/// use pds_core::SimTime;
///
/// let mut lqt = LingeringQueryTable::new();
/// let q = QueryMessage {
///     id: QueryId(1),
///     kind: QueryKind::Metadata,
///     sender: NodeId(7),
///     expires_at: SimTime::from_secs_f64(20.0),
///     filter: QueryFilter::match_all(),
///     bloom: None,
///     round: 0,
///     ttl_hops: 0,
/// };
/// assert!(lqt.insert(q.clone(), NodeId(7)));
/// assert!(lqt.seen(QueryId(1)), "redundant copies are detected");
/// assert_eq!(lqt.match_metadata(SimTime::ZERO).len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct LingeringQueryTable {
    entries: DetMap<QueryId, Lingering>,
}

impl LingeringQueryTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a query with this id has been received (and is still held).
    #[must_use]
    pub fn seen(&self, id: QueryId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Inserts a freshly received query. The Bloom filter is decoded and
    /// cached; malformed filters are treated as absent (the query still
    /// works, just without pruning). For bloom-less metadata / small-data /
    /// MDR queries an empty filter is created, so en-route rewriting can
    /// still suppress duplicate replies from different providers
    /// (§III-B-2). Returns `false` (and leaves the table unchanged) if the
    /// id is already present.
    pub fn insert(&mut self, query: QueryMessage, upstream: NodeId) -> bool {
        if self.entries.contains_key(&query.id) {
            return false;
        }
        let bloom = query
            .bloom
            .as_deref()
            .and_then(|b| BloomFilter::decode(b).ok())
            .or_else(|| {
                let capacity = match &query.kind {
                    QueryKind::Metadata | QueryKind::SmallData => Some(4096),
                    QueryKind::MdrChunks { total_chunks, .. } => {
                        Some((*total_chunks as usize * 2).max(64))
                    }
                    _ => None,
                };
                capacity.map(|n| {
                    BloomFilter::with_round(pds_bloom::BloomParams::optimal(n, 0.01), query.round)
                })
            });
        let remaining_chunks = match &query.kind {
            QueryKind::Chunks { chunks, .. } => chunks.iter().copied().collect(),
            _ => BTreeSet::new(),
        };
        self.entries.insert(
            query.id,
            Lingering {
                query,
                upstream,
                bloom,
                remaining_chunks,
                reported_cdi: DetMap::default(),
                exhausted: false,
            },
        );
        true
    }

    /// Mutable access to one entry.
    pub fn get_mut(&mut self, id: QueryId) -> Option<&mut Lingering> {
        self.entries.get_mut(&id)
    }

    /// Shared access to one entry.
    #[must_use]
    pub fn get(&self, id: QueryId) -> Option<&Lingering> {
        self.entries.get(&id)
    }

    /// Removes one entry (one-shot ablation, or consumer-side cleanup).
    pub fn remove(&mut self, id: QueryId) -> Option<Lingering> {
        self.entries.remove(&id)
    }

    /// Unexpired, non-exhausted metadata queries.
    pub fn match_metadata(&mut self, now: SimTime) -> Vec<&mut Lingering> {
        self.match_kind(now, |k| matches!(k, QueryKind::Metadata))
    }

    /// Unexpired, non-exhausted small-data queries.
    pub fn match_small_data(&mut self, now: SimTime) -> Vec<&mut Lingering> {
        self.match_kind(now, |k| matches!(k, QueryKind::SmallData))
    }

    /// Unexpired CDI queries for `item`.
    pub fn match_cdi(&mut self, item: &ItemName, now: SimTime) -> Vec<&mut Lingering> {
        self.match_kind(
            now,
            |k| matches!(k, QueryKind::Cdi { descriptor } if descriptor.item_name().as_ref() == Some(item)),
        )
    }

    /// Unexpired queries that still want chunk `chunk` of `item`: directed
    /// chunk queries with the chunk outstanding, and MDR queries whose Bloom
    /// filter does not cover it.
    pub fn match_chunk(
        &mut self,
        item: &ItemName,
        chunk: ChunkId,
        now: SimTime,
    ) -> Vec<&mut Lingering> {
        let key = chunk_key(item, chunk);
        self.entries
            .values_mut()
            .filter(|l| l.unexpired(now) && !l.exhausted)
            .filter(|l| match &l.query.kind {
                QueryKind::Chunks { item: i, .. } => {
                    i == item && l.remaining_chunks.contains(&chunk)
                }
                QueryKind::MdrChunks { item: i, .. } => i == item && !l.bloom_contains(&key),
                _ => false,
            })
            .collect()
    }

    fn match_kind(
        &mut self,
        now: SimTime,
        pred: impl Fn(&QueryKind) -> bool,
    ) -> Vec<&mut Lingering> {
        self.entries
            .values_mut()
            .filter(|l| l.unexpired(now) && !l.exhausted && pred(&l.query.kind))
            .collect()
    }

    /// Iterates all held entries (diagnostics, tests).
    pub fn iter(&self) -> impl Iterator<Item = &Lingering> {
        self.entries.values()
    }

    /// Drops expired queries.
    pub fn gc(&mut self, now: SimTime) {
        self.entries.retain(|_, l| l.unexpired(now));
    }

    /// Number of held queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::QueryFilter;
    use pds_bloom::BloomParams;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn query(id: u64, kind: QueryKind, expires: f64) -> QueryMessage {
        QueryMessage {
            id: QueryId(id),
            kind,
            sender: NodeId(1),
            expires_at: t(expires),
            filter: QueryFilter::match_all(),
            bloom: None,
            round: 0,
            ttl_hops: 0,
        }
    }

    #[test]
    fn insert_dedups_by_id() {
        let mut lqt = LingeringQueryTable::new();
        assert!(lqt.insert(query(1, QueryKind::Metadata, 10.0), NodeId(2)));
        assert!(!lqt.insert(query(1, QueryKind::Metadata, 10.0), NodeId(3)));
        assert!(lqt.seen(QueryId(1)));
        assert_eq!(lqt.len(), 1);
        assert_eq!(lqt.get(QueryId(1)).expect("present").upstream, NodeId(2));
    }

    #[test]
    fn expiration_gates_matching_and_gc() {
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(query(1, QueryKind::Metadata, 10.0), NodeId(2));
        assert_eq!(lqt.match_metadata(t(5.0)).len(), 1);
        assert_eq!(
            lqt.match_metadata(t(10.0)).len(),
            0,
            "expires_at is exclusive"
        );
        lqt.gc(t(10.0));
        assert!(lqt.is_empty());
    }

    #[test]
    fn match_is_kind_specific() {
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(query(1, QueryKind::Metadata, 10.0), NodeId(2));
        lqt.insert(query(2, QueryKind::SmallData, 10.0), NodeId(2));
        lqt.insert(
            query(
                3,
                QueryKind::Cdi {
                    descriptor: crate::DataDescriptor::builder().attr("name", "vid").build(),
                },
                10.0,
            ),
            NodeId(2),
        );
        assert_eq!(lqt.match_metadata(t(0.0)).len(), 1);
        assert_eq!(lqt.match_small_data(t(0.0)).len(), 1);
        assert_eq!(lqt.match_cdi(&ItemName::new("vid"), t(0.0)).len(), 1);
        assert_eq!(lqt.match_cdi(&ItemName::new("other"), t(0.0)).len(), 0);
    }

    #[test]
    fn chunk_matching_tracks_remaining() {
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(
            query(
                1,
                QueryKind::Chunks {
                    item: ItemName::new("vid"),
                    chunks: vec![ChunkId(0), ChunkId(1)],
                },
                10.0,
            ),
            NodeId(2),
        );
        let item = ItemName::new("vid");
        assert_eq!(lqt.match_chunk(&item, ChunkId(0), t(0.0)).len(), 1);
        // Mark chunk 0 relayed.
        lqt.get_mut(QueryId(1))
            .expect("present")
            .remaining_chunks
            .remove(&ChunkId(0));
        assert_eq!(lqt.match_chunk(&item, ChunkId(0), t(0.0)).len(), 0);
        assert_eq!(lqt.match_chunk(&item, ChunkId(1), t(0.0)).len(), 1);
        assert_eq!(lqt.match_chunk(&item, ChunkId(9), t(0.0)).len(), 0);
    }

    #[test]
    fn mdr_matching_respects_bloom() {
        let item = ItemName::new("vid");
        let mut bloom = BloomFilter::new(BloomParams::optimal(10, 0.01));
        bloom.insert(&chunk_key(&item, ChunkId(0)));
        let mut q = query(
            1,
            QueryKind::MdrChunks {
                item: item.clone(),
                total_chunks: 4,
            },
            10.0,
        );
        q.bloom = Some(bloom.encode());
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(q, NodeId(2));
        assert_eq!(
            lqt.match_chunk(&item, ChunkId(0), t(0.0)).len(),
            0,
            "chunk 0 in bloom"
        );
        assert_eq!(lqt.match_chunk(&item, ChunkId(1), t(0.0)).len(), 1);
    }

    #[test]
    fn exhausted_entries_do_not_match() {
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(query(1, QueryKind::Metadata, 10.0), NodeId(2));
        lqt.get_mut(QueryId(1)).expect("present").exhausted = true;
        assert_eq!(lqt.match_metadata(t(0.0)).len(), 0);
    }

    #[test]
    fn bloom_rewriting_round_trip() {
        let mut bloom = BloomFilter::new(BloomParams::optimal(10, 0.01));
        bloom.insert(b"already-have");
        let mut q = query(1, QueryKind::Metadata, 10.0);
        q.bloom = Some(bloom.encode());
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(q, NodeId(2));
        let l = lqt.get_mut(QueryId(1)).expect("present");
        assert!(l.bloom_contains(b"already-have"));
        assert!(!l.bloom_contains(b"fresh-entry"));
        l.bloom_insert(b"fresh-entry");
        assert!(l.bloom_contains(b"fresh-entry"));
    }

    #[test]
    fn malformed_bloom_replaced_with_fresh_empty() {
        let mut q = query(1, QueryKind::Metadata, 10.0);
        q.bloom = Some(vec![1, 2, 3]);
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(q, NodeId(2));
        let l = lqt.get(QueryId(1)).expect("present");
        assert!(l.bloom.is_some(), "metadata queries always get a bloom");
        assert!(!l.bloom_contains(b"anything"));
    }

    #[test]
    fn bloomless_flooded_kinds_get_empty_bloom() {
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(query(1, QueryKind::Metadata, 10.0), NodeId(2));
        lqt.insert(
            query(
                2,
                QueryKind::MdrChunks {
                    item: ItemName::new("vid"),
                    total_chunks: 8,
                },
                10.0,
            ),
            NodeId(2),
        );
        lqt.insert(
            query(
                3,
                QueryKind::Chunks {
                    item: ItemName::new("vid"),
                    chunks: vec![ChunkId(0)],
                },
                10.0,
            ),
            NodeId(2),
        );
        assert!(lqt.get(QueryId(1)).expect("q1").bloom.is_some());
        assert!(lqt.get(QueryId(2)).expect("q2").bloom.is_some());
        assert!(
            lqt.get(QueryId(3)).expect("q3").bloom.is_none(),
            "directed chunk queries dedup via remaining_chunks instead"
        );
    }

    #[test]
    fn chunk_key_is_injective_on_samples() {
        let a = chunk_key(&ItemName::new("vid"), ChunkId(1));
        let b = chunk_key(&ItemName::new("vid"), ChunkId(2));
        let c = chunk_key(&ItemName::new("vid2"), ChunkId(1));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
