//! The Lingering Query Table (§III-A).
//!
//! Unlike a CCN/NDN Interest — consumed by its first matching Data — a
//! lingering query stays in the table until its expiration and keeps routing
//! the continuing stream of responses back toward its sender. The table also
//! holds each query's Bloom filter (cached at insertion, §III-B-2) which
//! en-route rewriting mutates, and the per-query bookkeeping PDR needs
//! (remaining requested chunks, best CDI distances already reported).

use crate::ids::{ChunkId, ItemName, QueryId};
use crate::message::{QueryKind, QueryMessage};
use crate::{NodeId, SimTime};
use pds_bloom::BloomFilter;
use pds_det::DetMap;
use std::collections::VecDeque;

/// Canonical Bloom-filter / dedup key for a chunk of an item (used by MDR
/// redundancy detection and consumer-side chunk tracking).
#[must_use]
pub fn chunk_key(item: &ItemName, chunk: ChunkId) -> Vec<u8> {
    let mut k = Vec::with_capacity(item.as_str().len() + 5);
    k.extend_from_slice(item.as_str().as_bytes());
    k.push(0);
    k.extend_from_slice(&chunk.0.to_le_bytes());
    k
}

/// A dense bitset of chunk ids. Chunk ids are small and dense
/// (`0..total_chunks`), so one bit per chunk replaces a `BTreeSet` node
/// per chunk — a ~100× shrink for the outstanding-chunk tracking every
/// directed chunk query carries, which is what the per-node LQT byte
/// budget counts at city scale.
#[derive(Debug, Clone, Default)]
pub struct ChunkSet {
    words: Vec<u64>,
    len: u32,
}

impl ChunkSet {
    /// Adds a chunk; returns `true` if newly added.
    pub fn insert(&mut self, c: ChunkId) -> bool {
        let (w, b) = (c.0 as usize / 64, c.0 % 64);
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        let Some(word) = self.words.get_mut(w) else {
            return false;
        };
        let mask = 1u64 << b;
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes a chunk; returns `true` if it was present.
    pub fn remove(&mut self, c: &ChunkId) -> bool {
        let (w, b) = (c.0 as usize / 64, c.0 % 64);
        let Some(word) = self.words.get_mut(w) else {
            return false;
        };
        let mask = 1u64 << b;
        if *word & mask != 0 {
            *word &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Whether a chunk is present.
    #[must_use]
    pub fn contains(&self, c: &ChunkId) -> bool {
        let (w, b) = (c.0 as usize / 64, c.0 % 64);
        self.words.get(w).is_some_and(|word| word & (1u64 << b) != 0)
    }

    /// Number of chunks present.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

impl FromIterator<ChunkId> for ChunkSet {
    fn from_iter<I: IntoIterator<Item = ChunkId>>(iter: I) -> Self {
        let mut s = ChunkSet::default();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

/// One lingering query and its mutable en-route state.
#[derive(Debug)]
pub struct Lingering {
    /// The query as last received.
    pub query: QueryMessage,
    /// The neighbor that transmitted it — where responses are routed.
    pub upstream: NodeId,
    /// The query's Bloom filter, decoded once and rewritten en-route.
    pub bloom: Option<BloomFilter>,
    /// For [`QueryKind::Chunks`]: chunks still owed upstream; relaying a
    /// chunk removes it so later copies are not re-relayed.
    pub remaining_chunks: ChunkSet,
    /// For [`QueryKind::Cdi`]: best hop count already reported upstream per
    /// chunk; only improvements are forwarded.
    pub reported_cdi: DetMap<ChunkId, u32>,
    /// One-shot ablation: set after the first forwarded response.
    pub exhausted: bool,
}

impl Lingering {
    /// Whether the query is still alive at `now`.
    #[must_use]
    pub fn unexpired(&self, now: SimTime) -> bool {
        self.query.expires_at > now
    }

    /// Whether `key` is already covered by the query's Bloom filter (i.e.
    /// the consumer has it, or it was already sent toward them).
    #[must_use]
    pub fn bloom_contains(&self, key: &[u8]) -> bool {
        self.bloom.as_ref().is_some_and(|b| b.contains(key))
    }

    /// Records that `key` has been sent toward the consumer.
    pub fn bloom_insert(&mut self, key: &[u8]) {
        if let Some(b) = &mut self.bloom {
            b.insert(key);
        }
    }

    /// Approximate resident bytes of this entry: struct plus the heap
    /// behind it (cached Bloom bits, outstanding-chunk bitset, reported-CDI
    /// map, and the query's own allocations). Drives the table's byte
    /// budget; an estimate, not an exact accounting.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let bloom = self
            .bloom
            .as_ref()
            .map_or(0, |b| b.params().byte_len() + 32);
        let query = self.query.bloom.as_ref().map_or(0, Vec::capacity)
            + match &self.query.kind {
                QueryKind::Cdi { descriptor } => descriptor.encoded_len() * 2,
                QueryKind::Chunks { item, chunks } => {
                    item.as_str().len() + chunks.capacity() * size_of::<ChunkId>()
                }
                QueryKind::MdrChunks { item, .. } => item.as_str().len(),
                QueryKind::Metadata | QueryKind::SmallData => 0,
            };
        size_of::<Self>()
            + bloom
            + query
            + self.remaining_chunks.approx_bytes()
            + self.reported_cdi.capacity() * (size_of::<ChunkId>() + size_of::<u32>() + 8)
    }
}

/// The table of lingering queries, keyed by query id.
///
/// # Examples
///
/// ```
/// use pds_core::{
///     LingeringQueryTable, NodeId, QueryFilter, QueryId, QueryKind, QueryMessage,
/// };
/// use pds_core::SimTime;
///
/// let mut lqt = LingeringQueryTable::new();
/// let q = QueryMessage {
///     id: QueryId(1),
///     kind: QueryKind::Metadata,
///     sender: NodeId(7),
///     expires_at: SimTime::from_secs_f64(20.0),
///     filter: QueryFilter::match_all(),
///     bloom: None,
///     round: 0,
///     ttl_hops: 0,
/// };
/// assert!(lqt.insert(q.clone(), NodeId(7)));
/// assert!(lqt.seen(QueryId(1)), "redundant copies are detected");
/// assert_eq!(lqt.match_metadata(SimTime::ZERO).len(), 1);
/// ```
#[derive(Debug)]
pub struct LingeringQueryTable {
    entries: DetMap<QueryId, Lingering>,
    /// Insertion order, for byte-budget eviction (oldest first). Ids whose
    /// entries were removed through `remove`/`gc` are skipped lazily.
    order: VecDeque<QueryId>,
    /// Per-node cap on the table's approximate resident bytes
    /// ([`LingeringQueryTable::approx_bytes`]); inserting past it evicts
    /// the oldest entries. `usize::MAX` = unbounded.
    byte_budget: usize,
}

impl Default for LingeringQueryTable {
    fn default() -> Self {
        Self {
            entries: DetMap::default(),
            order: VecDeque::new(),
            byte_budget: usize::MAX,
        }
    }
}

impl LingeringQueryTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table that evicts oldest queries once its
    /// approximate footprint exceeds `byte_budget` bytes (the city-scale
    /// per-node memory knob; see `PdsConfig::lqt_byte_budget`).
    #[must_use]
    pub fn with_budget(byte_budget: usize) -> Self {
        Self {
            byte_budget,
            ..Self::default()
        }
    }

    /// Approximate resident bytes across all held entries.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.entries.values().map(Lingering::approx_bytes).sum()
    }

    /// Whether a query with this id has been received (and is still held).
    #[must_use]
    pub fn seen(&self, id: QueryId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Inserts a freshly received query. The Bloom filter is decoded and
    /// cached; malformed filters are treated as absent (the query still
    /// works, just without pruning). For bloom-less metadata / small-data /
    /// MDR queries an empty filter is created, so en-route rewriting can
    /// still suppress duplicate replies from different providers
    /// (§III-B-2). Returns `false` (and leaves the table unchanged) if the
    /// id is already present.
    pub fn insert(&mut self, query: QueryMessage, upstream: NodeId) -> bool {
        if self.entries.contains_key(&query.id) {
            return false;
        }
        // A finite byte budget also bounds the capacity of blooms this
        // node synthesizes for bloom-less queries (decoded wire blooms are
        // kept verbatim): there is no point provisioning a 4096-entry
        // filter per query when the whole table must fit tens of KB.
        let cap_limit = if self.byte_budget == usize::MAX {
            usize::MAX
        } else {
            (self.byte_budget / 16).max(64)
        };
        let bloom = query
            .bloom
            .as_deref()
            .and_then(|b| BloomFilter::decode(b).ok())
            .or_else(|| {
                let capacity = match &query.kind {
                    QueryKind::Metadata | QueryKind::SmallData => Some(4096),
                    QueryKind::MdrChunks { total_chunks, .. } => {
                        Some((*total_chunks as usize * 2).max(64))
                    }
                    _ => None,
                };
                capacity.map(|n| {
                    BloomFilter::with_round(
                        pds_bloom::BloomParams::optimal(n.min(cap_limit), 0.01),
                        query.round,
                    )
                })
            });
        let remaining_chunks: ChunkSet = match &query.kind {
            QueryKind::Chunks { chunks, .. } => chunks.iter().copied().collect(),
            _ => ChunkSet::default(),
        };
        let id = query.id;
        self.entries.insert(
            id,
            Lingering {
                query,
                upstream,
                bloom,
                remaining_chunks,
                reported_cdi: DetMap::default(),
                exhausted: false,
            },
        );
        // A removed-then-reinserted id must not leave a stale front-of-queue
        // occurrence that would evict the live entry early.
        self.order.retain(|&q| q != id);
        self.order.push_back(id);
        self.enforce_budget(id);
        true
    }

    /// Evicts oldest entries (insertion order) until the approximate
    /// footprint fits the byte budget. The entry just inserted (`keep`) is
    /// never evicted: a budget too small for one query would otherwise
    /// make the table reject everything, and dropping the *newest* state
    /// is the one behavior change callers could observe immediately.
    fn enforce_budget(&mut self, keep: QueryId) {
        if self.byte_budget == usize::MAX {
            return;
        }
        let mut total = self.approx_bytes();
        while total > self.byte_budget && self.entries.len() > 1 {
            // Pop lazily past ids already removed via `remove`/`gc`.
            let Some(oldest) = self.order.front().copied() else {
                return;
            };
            if oldest == keep {
                return;
            }
            self.order.pop_front();
            if let Some(evicted) = self.entries.remove(&oldest) {
                total = total.saturating_sub(evicted.approx_bytes());
            }
        }
    }

    /// Mutable access to one entry.
    pub fn get_mut(&mut self, id: QueryId) -> Option<&mut Lingering> {
        self.entries.get_mut(&id)
    }

    /// Shared access to one entry.
    #[must_use]
    pub fn get(&self, id: QueryId) -> Option<&Lingering> {
        self.entries.get(&id)
    }

    /// Removes one entry (one-shot ablation, or consumer-side cleanup).
    pub fn remove(&mut self, id: QueryId) -> Option<Lingering> {
        self.entries.remove(&id)
    }

    /// Unexpired, non-exhausted metadata queries.
    pub fn match_metadata(&mut self, now: SimTime) -> Vec<&mut Lingering> {
        self.match_kind(now, |k| matches!(k, QueryKind::Metadata))
    }

    /// Unexpired, non-exhausted small-data queries.
    pub fn match_small_data(&mut self, now: SimTime) -> Vec<&mut Lingering> {
        self.match_kind(now, |k| matches!(k, QueryKind::SmallData))
    }

    /// Unexpired CDI queries for `item`.
    pub fn match_cdi(&mut self, item: &ItemName, now: SimTime) -> Vec<&mut Lingering> {
        self.match_kind(
            now,
            |k| matches!(k, QueryKind::Cdi { descriptor } if descriptor.item_name().as_ref() == Some(item)),
        )
    }

    /// Unexpired queries that still want chunk `chunk` of `item`: directed
    /// chunk queries with the chunk outstanding, and MDR queries whose Bloom
    /// filter does not cover it.
    pub fn match_chunk(
        &mut self,
        item: &ItemName,
        chunk: ChunkId,
        now: SimTime,
    ) -> Vec<&mut Lingering> {
        let key = chunk_key(item, chunk);
        self.entries
            .values_mut()
            .filter(|l| l.unexpired(now) && !l.exhausted)
            .filter(|l| match &l.query.kind {
                QueryKind::Chunks { item: i, .. } => {
                    i == item && l.remaining_chunks.contains(&chunk)
                }
                QueryKind::MdrChunks { item: i, .. } => i == item && !l.bloom_contains(&key),
                _ => false,
            })
            .collect()
    }

    fn match_kind(
        &mut self,
        now: SimTime,
        pred: impl Fn(&QueryKind) -> bool,
    ) -> Vec<&mut Lingering> {
        self.entries
            .values_mut()
            .filter(|l| l.unexpired(now) && !l.exhausted && pred(&l.query.kind))
            .collect()
    }

    /// Iterates all held entries (diagnostics, tests).
    pub fn iter(&self) -> impl Iterator<Item = &Lingering> {
        self.entries.values()
    }

    /// Drops expired queries.
    pub fn gc(&mut self, now: SimTime) {
        self.entries.retain(|_, l| l.unexpired(now));
        let entries = &self.entries;
        self.order.retain(|q| entries.contains_key(q));
    }

    /// Number of held queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::QueryFilter;
    use pds_bloom::BloomParams;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn query(id: u64, kind: QueryKind, expires: f64) -> QueryMessage {
        QueryMessage {
            id: QueryId(id),
            kind,
            sender: NodeId(1),
            expires_at: t(expires),
            filter: QueryFilter::match_all(),
            bloom: None,
            round: 0,
            ttl_hops: 0,
        }
    }

    #[test]
    fn insert_dedups_by_id() {
        let mut lqt = LingeringQueryTable::new();
        assert!(lqt.insert(query(1, QueryKind::Metadata, 10.0), NodeId(2)));
        assert!(!lqt.insert(query(1, QueryKind::Metadata, 10.0), NodeId(3)));
        assert!(lqt.seen(QueryId(1)));
        assert_eq!(lqt.len(), 1);
        assert_eq!(lqt.get(QueryId(1)).expect("present").upstream, NodeId(2));
    }

    #[test]
    fn expiration_gates_matching_and_gc() {
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(query(1, QueryKind::Metadata, 10.0), NodeId(2));
        assert_eq!(lqt.match_metadata(t(5.0)).len(), 1);
        assert_eq!(
            lqt.match_metadata(t(10.0)).len(),
            0,
            "expires_at is exclusive"
        );
        lqt.gc(t(10.0));
        assert!(lqt.is_empty());
    }

    #[test]
    fn match_is_kind_specific() {
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(query(1, QueryKind::Metadata, 10.0), NodeId(2));
        lqt.insert(query(2, QueryKind::SmallData, 10.0), NodeId(2));
        lqt.insert(
            query(
                3,
                QueryKind::Cdi {
                    descriptor: crate::DataDescriptor::builder().attr("name", "vid").build(),
                },
                10.0,
            ),
            NodeId(2),
        );
        assert_eq!(lqt.match_metadata(t(0.0)).len(), 1);
        assert_eq!(lqt.match_small_data(t(0.0)).len(), 1);
        assert_eq!(lqt.match_cdi(&ItemName::new("vid"), t(0.0)).len(), 1);
        assert_eq!(lqt.match_cdi(&ItemName::new("other"), t(0.0)).len(), 0);
    }

    #[test]
    fn chunk_matching_tracks_remaining() {
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(
            query(
                1,
                QueryKind::Chunks {
                    item: ItemName::new("vid"),
                    chunks: vec![ChunkId(0), ChunkId(1)],
                },
                10.0,
            ),
            NodeId(2),
        );
        let item = ItemName::new("vid");
        assert_eq!(lqt.match_chunk(&item, ChunkId(0), t(0.0)).len(), 1);
        // Mark chunk 0 relayed.
        lqt.get_mut(QueryId(1))
            .expect("present")
            .remaining_chunks
            .remove(&ChunkId(0));
        assert_eq!(lqt.match_chunk(&item, ChunkId(0), t(0.0)).len(), 0);
        assert_eq!(lqt.match_chunk(&item, ChunkId(1), t(0.0)).len(), 1);
        assert_eq!(lqt.match_chunk(&item, ChunkId(9), t(0.0)).len(), 0);
    }

    #[test]
    fn mdr_matching_respects_bloom() {
        let item = ItemName::new("vid");
        let mut bloom = BloomFilter::new(BloomParams::optimal(10, 0.01));
        bloom.insert(&chunk_key(&item, ChunkId(0)));
        let mut q = query(
            1,
            QueryKind::MdrChunks {
                item: item.clone(),
                total_chunks: 4,
            },
            10.0,
        );
        q.bloom = Some(bloom.encode());
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(q, NodeId(2));
        assert_eq!(
            lqt.match_chunk(&item, ChunkId(0), t(0.0)).len(),
            0,
            "chunk 0 in bloom"
        );
        assert_eq!(lqt.match_chunk(&item, ChunkId(1), t(0.0)).len(), 1);
    }

    #[test]
    fn exhausted_entries_do_not_match() {
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(query(1, QueryKind::Metadata, 10.0), NodeId(2));
        lqt.get_mut(QueryId(1)).expect("present").exhausted = true;
        assert_eq!(lqt.match_metadata(t(0.0)).len(), 0);
    }

    #[test]
    fn bloom_rewriting_round_trip() {
        let mut bloom = BloomFilter::new(BloomParams::optimal(10, 0.01));
        bloom.insert(b"already-have");
        let mut q = query(1, QueryKind::Metadata, 10.0);
        q.bloom = Some(bloom.encode());
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(q, NodeId(2));
        let l = lqt.get_mut(QueryId(1)).expect("present");
        assert!(l.bloom_contains(b"already-have"));
        assert!(!l.bloom_contains(b"fresh-entry"));
        l.bloom_insert(b"fresh-entry");
        assert!(l.bloom_contains(b"fresh-entry"));
    }

    #[test]
    fn malformed_bloom_replaced_with_fresh_empty() {
        let mut q = query(1, QueryKind::Metadata, 10.0);
        q.bloom = Some(vec![1, 2, 3]);
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(q, NodeId(2));
        let l = lqt.get(QueryId(1)).expect("present");
        assert!(l.bloom.is_some(), "metadata queries always get a bloom");
        assert!(!l.bloom_contains(b"anything"));
    }

    #[test]
    fn bloomless_flooded_kinds_get_empty_bloom() {
        let mut lqt = LingeringQueryTable::new();
        lqt.insert(query(1, QueryKind::Metadata, 10.0), NodeId(2));
        lqt.insert(
            query(
                2,
                QueryKind::MdrChunks {
                    item: ItemName::new("vid"),
                    total_chunks: 8,
                },
                10.0,
            ),
            NodeId(2),
        );
        lqt.insert(
            query(
                3,
                QueryKind::Chunks {
                    item: ItemName::new("vid"),
                    chunks: vec![ChunkId(0)],
                },
                10.0,
            ),
            NodeId(2),
        );
        assert!(lqt.get(QueryId(1)).expect("q1").bloom.is_some());
        assert!(lqt.get(QueryId(2)).expect("q2").bloom.is_some());
        assert!(
            lqt.get(QueryId(3)).expect("q3").bloom.is_none(),
            "directed chunk queries dedup via remaining_chunks instead"
        );
    }

    #[test]
    fn chunk_set_tracks_membership_like_a_btreeset() {
        let mut s: ChunkSet = [ChunkId(0), ChunkId(3), ChunkId(130)].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert!(s.contains(&ChunkId(0)) && s.contains(&ChunkId(130)));
        assert!(!s.contains(&ChunkId(1)) && !s.contains(&ChunkId(999)));
        assert!(s.remove(&ChunkId(3)));
        assert!(!s.remove(&ChunkId(3)), "double remove is a no-op");
        assert!(!s.insert(ChunkId(0)), "duplicate insert is a no-op");
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        // 131 chunks fit in three words: the whole set is ~24 heap bytes.
        assert!(s.approx_bytes() <= 64);
    }

    #[test]
    fn byte_budget_evicts_oldest_queries() {
        let budget = 8 * 1024;
        let mut lqt = LingeringQueryTable::with_budget(budget);
        for i in 0..64 {
            lqt.insert(query(i, QueryKind::Metadata, 10.0), NodeId(2));
        }
        assert!(
            lqt.approx_bytes() <= budget,
            "footprint {} exceeds budget {budget}",
            lqt.approx_bytes()
        );
        assert!(!lqt.seen(QueryId(0)), "oldest evicted first");
        assert!(lqt.seen(QueryId(63)), "newest always kept");
        assert!(lqt.len() >= 1 && lqt.len() < 64);
    }

    #[test]
    fn unbounded_table_never_evicts() {
        let mut lqt = LingeringQueryTable::new();
        for i in 0..64 {
            lqt.insert(query(i, QueryKind::Metadata, 10.0), NodeId(2));
        }
        assert_eq!(lqt.len(), 64);
        assert!(lqt.seen(QueryId(0)));
    }

    #[test]
    fn chunk_key_is_injective_on_samples() {
        let a = chunk_key(&ItemName::new("vid"), ChunkId(1));
        let b = chunk_key(&ItemName::new("vid"), ChunkId(2));
        let c = chunk_key(&ItemName::new("vid2"), ChunkId(1));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
