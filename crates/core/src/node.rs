//! [`PdsNode`]: the PDS protocol bound to the simulator's application
//! interface — timers, send jitter, codec, and the consumer-facing API the
//! evaluation harness drives through
//! [`World::with_app`](pds_sim::World::with_app).

use crate::config::PdsConfig;
use crate::descriptor::DataDescriptor;
use crate::engine::{phase_of, Outgoing, PdsEngine};
use crate::ids::ChunkId;
use crate::message::PdsMessage;
use crate::predicate::QueryFilter;
use crate::sessions::{DiscoveryReport, RetrievalReport};
use crate::{Application, Context, MessageMeta, SimDuration, SimTime};
use bytes::Bytes;
use pds_obs::{Phase, TraceKind};

const TAG_POLL: u64 = 1;
const TAG_GC: u64 = 2;
const TAG_SEND: u64 = 3;

const GC_INTERVAL: SimDuration = SimDuration::from_secs(1);

/// A PDS node: every device runs one, whether it currently acts as
/// producer, consumer, relay, or all three.
///
/// Construct with locally produced data via [`PdsNode::with_metadata`] /
/// [`PdsNode::with_chunk`]; start consumer operations from scenario code
/// through [`pds_sim::World::with_app`]:
///
/// ```
/// use pds_core::{PdsConfig, PdsNode, QueryFilter};
/// use pds_sim::{Position, SimConfig, SimTime, World};
///
/// let mut world = World::new(SimConfig::default(), 7);
/// let producer = PdsNode::new(PdsConfig::default(), 1).with_metadata(
///     pds_core::DataDescriptor::builder().attr("type", "no2").build(),
///     None,
/// );
/// world.add_node(Position::new(0.0, 0.0), Box::new(producer));
/// let consumer = world.add_node(
///     Position::new(30.0, 0.0),
///     Box::new(PdsNode::new(PdsConfig::default(), 2)),
/// );
/// world.with_app::<PdsNode, _>(consumer, |node, ctx| {
///     node.start_discovery(ctx, QueryFilter::match_all());
/// });
/// world.run_until(SimTime::from_secs_f64(10.0));
/// let report = world
///     .app::<PdsNode>(consumer)
///     .and_then(|n| n.discovery_report())
///     .expect("discovery ran");
/// assert_eq!(report.entries, 1);
/// ```
pub struct PdsNode {
    config: PdsConfig,
    seed: u64,
    engine: Option<PdsEngine>,
    initial_metadata: Vec<(DataDescriptor, Option<Bytes>)>,
    initial_chunks: Vec<(DataDescriptor, ChunkId, Bytes)>,
    pending: Vec<(SimTime, Outgoing)>,
    // Reliable messages awaiting a transport verdict, for failure-driven
    // resends: handle → (sent message, sent-at time for GC).
    in_flight: Vec<(crate::MessageHandle, SimTime, Outgoing)>,
    decode_errors: u64,
    resends: u64,
    // Tracing only: whether a SessionFinished event has already been
    // emitted for the current discovery / retrieval session.
    discovery_finished: bool,
    retrieval_finished: bool,
    // Session correlation ids for causal tracing: a per-node counter
    // (`(node, session)` is globally unique, 0 = none) plus the ids of the
    // currently running discovery and retrieval sessions. Maintained
    // unconditionally — they are plain node-local counters, so they cannot
    // perturb replay digests — but only ever read at trace emission sites.
    next_session: u64,
    discovery_session: u64,
    retrieval_session: u64,
}

impl PdsNode {
    /// Creates a node with the given protocol configuration. `seed` drives
    /// the node's query/response id generation and jitter; give every node
    /// a distinct seed.
    #[must_use]
    pub fn new(config: PdsConfig, seed: u64) -> Self {
        Self {
            config,
            seed,
            engine: None,
            initial_metadata: Vec::new(),
            initial_chunks: Vec::new(),
            pending: Vec::new(),
            in_flight: Vec::new(),
            decode_errors: 0,
            resends: 0,
            discovery_finished: false,
            retrieval_finished: false,
            next_session: 0,
            discovery_session: 0,
            retrieval_session: 0,
        }
    }

    /// Adds a locally produced data item (available from the start).
    #[must_use]
    pub fn with_metadata(mut self, descriptor: DataDescriptor, payload: Option<Bytes>) -> Self {
        self.initial_metadata.push((descriptor, payload));
        self
    }

    /// Adds a locally held chunk of a large item (available from the
    /// start). `item_descriptor` is the whole-item descriptor.
    #[must_use]
    pub fn with_chunk(
        mut self,
        item_descriptor: DataDescriptor,
        chunk: ChunkId,
        data: Bytes,
    ) -> Self {
        self.initial_chunks.push((item_descriptor, chunk, data));
        self
    }

    /// The protocol engine, once the node has started.
    #[must_use]
    pub fn engine(&self) -> Option<&PdsEngine> {
        self.engine.as_ref()
    }

    /// Mutable engine access (e.g. to add data after start).
    pub fn engine_mut(&mut self) -> Option<&mut PdsEngine> {
        self.engine.as_mut()
    }

    /// Report of the node's discovery session, if one was started.
    #[must_use]
    pub fn discovery_report(&self) -> Option<DiscoveryReport> {
        Some(self.engine.as_ref()?.discovery()?.report())
    }

    /// Report of the node's retrieval session, if one was started.
    #[must_use]
    pub fn retrieval_report(&self) -> Option<RetrievalReport> {
        Some(self.engine.as_ref()?.retrieval()?.report())
    }

    /// Messages that failed to decode (diagnostics; should stay 0).
    #[must_use]
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Failure-driven resends performed so far (diagnostics).
    #[must_use]
    pub fn resends(&self) -> u64 {
        self.resends
    }

    /// Creates the engine on first use (whichever comes first: `on_start`
    /// or an external `with_app` call), applying the initial data.
    fn ensure_engine(&mut self, ctx: &Context) -> &mut PdsEngine {
        if self.engine.is_none() {
            let mut engine = PdsEngine::new(ctx.node_id(), self.config.clone(), self.seed);
            for (d, payload) in self.initial_metadata.drain(..) {
                engine.store_mut().insert_own(d, payload);
            }
            for (d, chunk, data) in self.initial_chunks.drain(..) {
                engine.store_mut().insert_chunk(&d, chunk, data);
            }
            self.engine = Some(engine);
        }
        self.engine.as_mut().expect("just created")
    }

    /// Starts a PDD metadata discovery (consumer role).
    pub fn start_discovery(&mut self, ctx: &mut Context, filter: QueryFilter) {
        let now = ctx.now();
        let out = self.ensure_engine(ctx).start_discovery(now, filter);
        self.discovery_finished = false;
        self.next_session += 1;
        self.discovery_session = self.next_session;
        ctx.trace(
            Phase::Pdd,
            TraceKind::SessionStarted {
                session: self.discovery_session,
            },
        );
        self.dispatch(ctx, out);
    }

    /// Starts a small-data retrieval (consumer role).
    pub fn start_small_data_retrieval(&mut self, ctx: &mut Context, filter: QueryFilter) {
        let now = ctx.now();
        let out = self
            .ensure_engine(ctx)
            .start_small_data_retrieval(now, filter);
        self.discovery_finished = false;
        self.next_session += 1;
        self.discovery_session = self.next_session;
        ctx.trace(
            Phase::Pdd,
            TraceKind::SessionStarted {
                session: self.discovery_session,
            },
        );
        self.dispatch(ctx, out);
    }

    /// Starts a two-phase PDR retrieval of a large item (consumer role).
    ///
    /// # Panics
    ///
    /// Panics if `descriptor` lacks `name` or `total_chunks`.
    pub fn start_retrieval(&mut self, ctx: &mut Context, descriptor: DataDescriptor) {
        let now = ctx.now();
        let out = self.ensure_engine(ctx).start_retrieval(now, descriptor);
        self.retrieval_finished = false;
        self.next_session += 1;
        self.retrieval_session = self.next_session;
        ctx.trace(
            Phase::Pdr,
            TraceKind::SessionStarted {
                session: self.retrieval_session,
            },
        );
        self.dispatch(ctx, out);
    }

    /// Starts an MDR baseline retrieval of a large item (consumer role).
    ///
    /// # Panics
    ///
    /// Panics if `descriptor` lacks `name` or `total_chunks`.
    pub fn start_mdr_retrieval(&mut self, ctx: &mut Context, descriptor: DataDescriptor) {
        let now = ctx.now();
        let out = self.ensure_engine(ctx).start_mdr_retrieval(now, descriptor);
        self.retrieval_finished = false;
        self.next_session += 1;
        self.retrieval_session = self.next_session;
        ctx.trace(
            Phase::Mdr,
            TraceKind::SessionStarted {
                session: self.retrieval_session,
            },
        );
        self.dispatch(ctx, out);
    }

    /// Sends (or schedules, for jittered responses) the engine's outgoing
    /// messages.
    fn dispatch(&mut self, ctx: &mut Context, outs: Vec<Outgoing>) {
        let jitter_max = self.config.response_jitter.as_micros();
        for out in outs {
            let max = match out.jitter {
                crate::engine::Jitter::None => 0,
                crate::engine::Jitter::Fast => jitter_max,
                crate::engine::Jitter::Slow => jitter_max * 100,
            };
            if max > 0 {
                let delay = SimDuration::from_micros(ctx.rng().range_u64(0, max.max(1)));
                let due = ctx.now() + delay;
                self.pending.push((due, out));
                ctx.set_timer(delay, TAG_SEND);
            } else {
                self.transmit(ctx, out);
            }
        }
    }

    fn transmit(&mut self, ctx: &mut Context, out: Outgoing) {
        let handle = ctx.broadcast_class(out.message.encode(), &out.intended, out.phase.class());
        if ctx.trace_enabled() {
            // The transport handle doubles as the message's per-origin
            // sequence number, linking this protocol event to every
            // transport/radio event of the carrying message.
            let session = if out.own_session {
                match out.phase {
                    Phase::Pdd => self.discovery_session,
                    Phase::Pdr | Phase::Mdr => self.retrieval_session,
                    _ => 0,
                }
            } else {
                0
            };
            let kind = match &out.message {
                PdsMessage::Query(q) => TraceKind::QuerySent {
                    query: q.id.0,
                    session,
                    seq: handle.0,
                },
                PdsMessage::Response(r) => TraceKind::ResponseSent {
                    response: r.id.0,
                    query: out.answers,
                    seq: handle.0,
                },
            };
            ctx.trace(out.phase, kind);
        }
        // Only directed messages get transport verdicts; track them for
        // failure-driven resends.
        if !out.intended.is_empty() && out.retries_left > 0 {
            self.in_flight.push((handle, ctx.now(), out));
        }
    }

    fn flush_due(&mut self, ctx: &mut Context) {
        let now = ctx.now();
        let mut due = Vec::new();
        self.pending.retain(|(at, out)| {
            if *at <= now {
                due.push(out.clone());
                false
            } else {
                true
            }
        });
        for out in due {
            self.transmit(ctx, out);
        }
    }

    /// Emits `SessionFinished` trace events the first time a consumer
    /// session's controller reports termination. Tracing-only: a no-op
    /// (beyond one branch) when no sink is installed.
    fn note_finishes(&mut self, ctx: &mut Context) {
        if !ctx.trace_enabled() {
            return;
        }
        let Some(engine) = self.engine.as_ref() else {
            return;
        };
        if !self.discovery_finished {
            if let Some(report) = engine.discovery().map(|d| d.report()) {
                if report.finished_at.is_some() {
                    self.discovery_finished = true;
                    ctx.trace(
                        Phase::Pdd,
                        TraceKind::SessionFinished {
                            session: self.discovery_session,
                            delay_us: report.latency.as_micros(),
                            rounds: u64::from(report.rounds),
                            items: report.entries as u64,
                        },
                    );
                }
            }
        }
        if !self.retrieval_finished {
            if let Some(session) = engine.retrieval() {
                let report = session.report();
                if report.finished_at.is_some() {
                    let phase = if session.mdr { Phase::Mdr } else { Phase::Pdr };
                    self.retrieval_finished = true;
                    ctx.trace(
                        phase,
                        TraceKind::SessionFinished {
                            session: self.retrieval_session,
                            delay_us: report.latency.as_micros(),
                            rounds: u64::from(report.rounds),
                            items: u64::from(report.received_chunks),
                        },
                    );
                }
            }
        }
    }
}

impl Application for PdsNode {
    fn on_start(&mut self, ctx: &mut Context) {
        self.ensure_engine(ctx);
        ctx.set_timer(self.config.rounds.poll, TAG_POLL);
        ctx.set_timer(GC_INTERVAL, TAG_GC);
    }

    fn on_message(&mut self, ctx: &mut Context, meta: MessageMeta, payload: Bytes) {
        let message = match PdsMessage::decode(&payload) {
            Ok(m) => m,
            Err(_) => {
                self.decode_errors += 1;
                return;
            }
        };
        let me = ctx.node_id();
        let me_intended = meta.intended.is_empty() || meta.intended.contains(&me);
        let now = ctx.now();
        if ctx.trace_enabled() {
            let from = u64::from(meta.from.0);
            let kind = match &message {
                PdsMessage::Query(q) => TraceKind::QueryReceived {
                    query: q.id.0,
                    from,
                },
                PdsMessage::Response(r) => TraceKind::ResponseReceived {
                    response: r.id.0,
                    from,
                },
            };
            ctx.trace(phase_of(&message), kind);
        }
        let out = self
            .ensure_engine(ctx)
            .handle_message(now, meta.from, me_intended, message);
        self.dispatch(ctx, out);
        self.note_finishes(ctx);
    }

    fn on_send_result(
        &mut self,
        ctx: &mut Context,
        message: crate::MessageHandle,
        delivered: bool,
    ) {
        let Some(idx) = self.in_flight.iter().position(|(h, _, _)| *h == message) else {
            return;
        };
        let (_, _, mut out) = self.in_flight.swap_remove(idx);
        if delivered {
            return;
        }
        if out.retries_left > 0 {
            // The content still exists locally; try the hop again.
            out.retries_left -= 1;
            self.resends += 1;
            self.transmit(ctx, out);
            return;
        }
        // Final failure of a chunk sub-query: nothing is in flight for its
        // chunks any more, so stop suppressing re-division.
        if let PdsMessage::Query(q) = &out.message {
            if let crate::message::QueryKind::Chunks { item, chunks } = &q.kind {
                if let Some(e) = self.engine.as_mut() {
                    e.clear_pending_chunks(item, chunks);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context, tag: u64) {
        match tag {
            TAG_POLL => {
                if let Some(engine) = self.engine.as_mut() {
                    let out = engine.poll(ctx.now());
                    self.dispatch(ctx, out);
                    self.note_finishes(ctx);
                }
                ctx.set_timer(self.config.rounds.poll, TAG_POLL);
            }
            TAG_GC => {
                if let Some(engine) = self.engine.as_mut() {
                    engine.gc(ctx.now());
                }
                // Drop in-flight records that never got a verdict (e.g.
                // unreliable config): bounded memory.
                let now = ctx.now();
                self.in_flight
                    .retain(|(_, at, _)| now.since(*at) < SimDuration::from_secs(120));
                ctx.set_timer(GC_INTERVAL, TAG_GC);
            }
            TAG_SEND => self.flush_due(ctx),
            _ => {}
        }
    }
}

impl std::fmt::Debug for PdsNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PdsNode")
            .field("started", &self.engine.is_some())
            .field("pending_sends", &self.pending.len())
            .field("decode_errors", &self.decode_errors)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // End-to-end tests that drive PdsNode through a simulator World live in
    // tests/node_world.rs: pds-sim is only a dev-dependency (the layering
    // contract, DESIGN.md §13), and unit tests inside the lib would compile
    // a second copy of this crate whose traits the World cannot see.

    #[test]
    fn pds_node_is_send() {
        // Worlds full of PdsNodes move onto sweep worker threads in
        // pds-bench; this fails to compile if the protocol state ever grows
        // a non-Send field (Rc, RefCell, raw pointers, ...).
        fn assert_send<T: Send>() {}
        assert_send::<PdsNode>();
    }
}
