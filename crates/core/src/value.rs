//! Attribute values — the primitive types of data descriptors (§II-B).

use bytes::{Buf, BufMut};
use std::cmp::Ordering;
use std::fmt;

/// A primitive attribute value: string, integer, float or Unix time.
///
/// Values of the same variant are totally ordered (floats compare by IEEE
/// total order of their finite values; descriptors never carry NaN — the
/// builder rejects it). Cross-variant comparisons yield `None`, so a
/// predicate on the wrong type simply does not match.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A UTF-8 string (e.g. a data type name).
    Str(String),
    /// A signed integer (e.g. a chunk count).
    Int(i64),
    /// A float (e.g. a GPS coordinate).
    Float(f64),
    /// Seconds since the Unix epoch (e.g. sample generation time).
    Time(i64),
}

impl AttrValue {
    /// Compares two values of the same variant; `None` across variants.
    #[must_use]
    pub fn partial_cmp_same_type(&self, other: &AttrValue) -> Option<Ordering> {
        match (self, other) {
            (AttrValue::Str(a), AttrValue::Str(b)) => Some(a.cmp(b)),
            (AttrValue::Int(a), AttrValue::Int(b)) => Some(a.cmp(b)),
            (AttrValue::Float(a), AttrValue::Float(b)) => a.partial_cmp(b),
            (AttrValue::Time(a), AttrValue::Time(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Serializes the value (tag byte + body).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AttrValue::Str(s) => {
                out.put_u8(0);
                out.put_u16_le(s.len() as u16);
                out.put_slice(s.as_bytes());
            }
            AttrValue::Int(i) => {
                out.put_u8(1);
                out.put_i64_le(*i);
            }
            AttrValue::Float(f) => {
                out.put_u8(2);
                out.put_f64_le(*f);
            }
            AttrValue::Time(t) => {
                out.put_u8(3);
                out.put_i64_le(*t);
            }
        }
    }

    /// Deserializes a value previously written by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns `None` on truncation, an unknown tag, or invalid UTF-8.
    pub fn decode(buf: &mut impl Buf) -> Option<Self> {
        if buf.remaining() < 1 {
            return None;
        }
        match buf.get_u8() {
            0 => {
                if buf.remaining() < 2 {
                    return None;
                }
                let len = buf.get_u16_le() as usize;
                if buf.remaining() < len {
                    return None;
                }
                let mut bytes = vec![0u8; len];
                buf.copy_to_slice(&mut bytes);
                String::from_utf8(bytes).ok().map(AttrValue::Str)
            }
            1 => (buf.remaining() >= 8).then(|| AttrValue::Int(buf.get_i64_le())),
            2 => (buf.remaining() >= 8).then(|| AttrValue::Float(buf.get_f64_le())),
            3 => (buf.remaining() >= 8).then(|| AttrValue::Time(buf.get_i64_le())),
            _ => None,
        }
    }

    /// Wire size of the encoded form in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        match self {
            AttrValue::Str(s) => 3 + s.len(),
            _ => 9,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => f.write_str(s),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Time(t) => write!(f, "@{t}"),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}

impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}

impl From<u32> for AttrValue {
    fn from(i: u32) -> Self {
        AttrValue::Int(i64::from(i))
    }
}

impl From<f64> for AttrValue {
    fn from(f: f64) -> Self {
        AttrValue::Float(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &AttrValue) -> AttrValue {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(buf.len(), v.encoded_len());
        let mut slice = &buf[..];
        let out = AttrValue::decode(&mut slice).expect("decodes");
        assert!(!slice.has_remaining());
        out
    }

    #[test]
    fn encode_decode_all_variants() {
        for v in [
            AttrValue::Str("hello".into()),
            AttrValue::Int(-42),
            AttrValue::Float(3.25),
            AttrValue::Time(1_451_635_200),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn empty_string_round_trips() {
        assert_eq!(
            roundtrip(&AttrValue::Str(String::new())),
            AttrValue::Str(String::new())
        );
    }

    #[test]
    fn same_type_comparisons() {
        use Ordering::*;
        assert_eq!(
            AttrValue::Int(1).partial_cmp_same_type(&AttrValue::Int(2)),
            Some(Less)
        );
        assert_eq!(
            AttrValue::Str("b".into()).partial_cmp_same_type(&AttrValue::Str("a".into())),
            Some(Greater)
        );
        assert_eq!(
            AttrValue::Float(1.0).partial_cmp_same_type(&AttrValue::Float(1.0)),
            Some(Equal)
        );
        assert_eq!(
            AttrValue::Time(5).partial_cmp_same_type(&AttrValue::Time(9)),
            Some(Less)
        );
    }

    #[test]
    fn cross_type_comparison_is_none() {
        assert_eq!(
            AttrValue::Int(1).partial_cmp_same_type(&AttrValue::Float(1.0)),
            None
        );
        assert_eq!(
            AttrValue::Time(1).partial_cmp_same_type(&AttrValue::Int(1)),
            None
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut buf: &[u8] = &[9, 0, 0];
        assert_eq!(AttrValue::decode(&mut buf), None);
        let mut buf: &[u8] = &[1, 0];
        assert_eq!(AttrValue::decode(&mut buf), None);
        let mut buf: &[u8] = &[];
        assert_eq!(AttrValue::decode(&mut buf), None);
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(AttrValue::from("x"), AttrValue::Str("x".into()));
        assert_eq!(AttrValue::from(3i64), AttrValue::Int(3));
        assert_eq!(AttrValue::from(2.5f64), AttrValue::Float(2.5));
        assert_eq!(AttrValue::from(7u32), AttrValue::Int(7));
    }

    #[test]
    fn float_ordering_is_total_over_finite_values() {
        use Ordering::*;
        let cases = [(-1.5, 0.0, Less), (2.5, 2.5, Equal), (1e9, -1e9, Greater)];
        for (a, b, expect) in cases {
            assert_eq!(
                AttrValue::Float(a).partial_cmp_same_type(&AttrValue::Float(b)),
                Some(expect),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn encoded_len_matches_for_long_strings() {
        let v = AttrValue::Str("x".repeat(500));
        let mut buf = Vec::new();
        v.encode(&mut buf);
        assert_eq!(buf.len(), v.encoded_len());
        let mut slice = &buf[..];
        assert_eq!(AttrValue::decode(&mut slice), Some(v));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(AttrValue::Str("a".into()).to_string(), "a");
        assert_eq!(AttrValue::Time(5).to_string(), "@5");
    }
}
