//! The multi-round discovery controller (§III-B-2).
//!
//! The consumer makes two decisions from response-arrival statistics:
//!
//! 1. **Is the current round finished?** Upon each poll it computes the
//!    ratio of responses received within the recent window `T` to all
//!    responses since the round's query was sent; when that ratio falls to
//!    `T_r` or below, the stream has "diminished" and the round is over. A
//!    round that never produced a response ends after one idle window.
//! 2. **Start another round?** If the fraction of *new* entries this round
//!    (relative to everything received so far) exceeds `T_d`, more data is
//!    likely still out there. With the paper's best value `T_d = 0`, rounds
//!    continue until one returns nothing new.

use crate::config::RoundParams;
use crate::SimTime;
use std::collections::VecDeque;

/// What the consumer should do after a poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundDecision {
    /// Keep waiting for responses.
    Continue,
    /// The round diminished; start the next round.
    StartNextRound,
    /// The round diminished and too little was new; stop discovering.
    Finished,
}

/// Round state machine for one discovery operation.
///
/// # Examples
///
/// ```
/// use pds_core::{RoundController, RoundDecision, RoundParams};
/// use pds_core::SimTime;
///
/// let mut ctrl = RoundController::new(RoundParams::default(), SimTime::ZERO);
/// ctrl.on_response(SimTime::from_secs_f64(0.2), 5);
/// // The stream has been quiet for longer than T = 1 s and brought news:
/// // start another round.
/// assert_eq!(
///     ctrl.poll(SimTime::from_secs_f64(1.5)),
///     RoundDecision::StartNextRound
/// );
/// ```
#[derive(Debug)]
pub struct RoundController {
    params: RoundParams,
    round: u32,
    round_started: SimTime,
    arrivals: VecDeque<SimTime>,
    responses_this_round: u64,
    new_entries_this_round: u64,
    total_entries: u64,
}

impl RoundController {
    /// Creates a controller; the first round starts at `now`.
    #[must_use]
    pub fn new(params: RoundParams, now: SimTime) -> Self {
        Self {
            params,
            round: 0,
            round_started: now,
            arrivals: VecDeque::new(),
            responses_this_round: 0,
            new_entries_this_round: 0,
            total_entries: 0,
        }
    }

    /// The current round number (0-based).
    #[must_use]
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Total distinct entries recorded so far.
    #[must_use]
    pub fn total_entries(&self) -> u64 {
        self.total_entries
    }

    /// Records a response carrying `new_entries` not-seen-before entries.
    pub fn on_response(&mut self, now: SimTime, new_entries: u64) {
        self.arrivals.push_back(now);
        self.responses_this_round += 1;
        self.new_entries_this_round += new_entries;
        self.total_entries += new_entries;
    }

    /// Advances to the next round at `now`.
    pub fn start_next_round(&mut self, now: SimTime) {
        self.round += 1;
        self.round_started = now;
        self.arrivals.clear();
        self.responses_this_round = 0;
        self.new_entries_this_round = 0;
    }

    /// Evaluates the two decisions at `now`.
    pub fn poll(&mut self, now: SimTime) -> RoundDecision {
        if !self.round_finished(now) {
            return RoundDecision::Continue;
        }
        if self.round + 1 >= self.params.max_rounds {
            return RoundDecision::Finished;
        }
        // New-round rule: proportion of new entries this round among all
        // received must exceed T_d. An all-zero first round also stops (the
        // network is empty or unreachable).
        if self.total_entries == 0 {
            return RoundDecision::Finished;
        }
        let proportion = self.new_entries_this_round as f64 / self.total_entries as f64;
        if proportion > self.params.t_d {
            RoundDecision::StartNextRound
        } else {
            RoundDecision::Finished
        }
    }

    fn round_finished(&mut self, now: SimTime) -> bool {
        let window_start = SimTime::from_micros(
            now.as_micros()
                .saturating_sub(self.params.t_window.as_micros()),
        );
        while self.arrivals.front().is_some_and(|&a| a < window_start) {
            self.arrivals.pop_front();
        }
        if self.responses_this_round == 0 {
            // Nothing back yet: wait at least one window before giving up.
            return now.since(self.round_started) >= self.params.t_window;
        }
        let recent = self.arrivals.len() as f64;
        let total = self.responses_this_round as f64;
        recent / total <= self.params.t_r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    fn params() -> RoundParams {
        RoundParams {
            t_window: SimDuration::from_secs(1),
            t_r: 0.0,
            t_d: 0.0,
            poll: SimDuration::from_millis(200),
            max_rounds: 12,
        }
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn continues_while_responses_flow() {
        let mut c = RoundController::new(params(), t(0.0));
        c.on_response(t(0.2), 5);
        c.on_response(t(0.5), 3);
        assert_eq!(c.poll(t(0.6)), RoundDecision::Continue);
        assert_eq!(c.total_entries(), 8);
    }

    #[test]
    fn starts_next_round_when_stream_dries_and_news_arrived() {
        let mut c = RoundController::new(params(), t(0.0));
        c.on_response(t(0.2), 5);
        // Window T = 1 s with no arrivals after 0.2 s: at 1.5 s the recent
        // window is empty → round over; 5 new entries > T_d = 0 → next round.
        assert_eq!(c.poll(t(1.5)), RoundDecision::StartNextRound);
        c.start_next_round(t(1.5));
        assert_eq!(c.round(), 1);
    }

    #[test]
    fn finishes_when_round_brought_nothing_new() {
        let mut c = RoundController::new(params(), t(0.0));
        c.on_response(t(0.2), 5);
        assert_eq!(c.poll(t(1.5)), RoundDecision::StartNextRound);
        c.start_next_round(t(1.5));
        c.on_response(t(1.7), 0); // all redundant
        assert_eq!(c.poll(t(3.0)), RoundDecision::Finished);
    }

    #[test]
    fn empty_network_finishes_after_one_window() {
        let mut c = RoundController::new(params(), t(0.0));
        assert_eq!(c.poll(t(0.5)), RoundDecision::Continue);
        assert_eq!(c.poll(t(1.0)), RoundDecision::Finished);
    }

    #[test]
    fn larger_t_d_stops_earlier() {
        let mut p = params();
        p.t_d = 0.5;
        let mut c = RoundController::new(p, t(0.0));
        c.on_response(t(0.2), 10);
        assert_eq!(c.poll(t(1.5)), RoundDecision::StartNextRound);
        c.start_next_round(t(1.5));
        // 4 new out of 14 total = 0.29 < 0.5 → finished despite new entries.
        c.on_response(t(1.7), 4);
        assert_eq!(c.poll(t(3.0)), RoundDecision::Finished);
    }

    #[test]
    fn positive_t_r_ends_round_while_trickling() {
        let mut p = params();
        p.t_r = 0.2;
        let mut c = RoundController::new(p, t(0.0));
        // 10 responses early, then a trickle: 1 in the last second out of 11
        // total = 0.09 ≤ 0.2 → round considered finished.
        for i in 0..10 {
            c.on_response(t(0.1 + 0.01 * f64::from(i)), 1);
        }
        c.on_response(t(2.0), 1);
        assert_eq!(c.poll(t(2.1)), RoundDecision::StartNextRound);
    }

    #[test]
    fn max_rounds_caps_discovery() {
        let mut p = params();
        p.max_rounds = 2;
        let mut c = RoundController::new(p, t(0.0));
        c.on_response(t(0.2), 5);
        assert_eq!(c.poll(t(1.5)), RoundDecision::StartNextRound);
        c.start_next_round(t(1.5));
        c.on_response(t(1.7), 5);
        assert_eq!(
            c.poll(t(3.0)),
            RoundDecision::Finished,
            "round cap reached even though new entries arrived"
        );
    }

    #[test]
    fn poll_is_idempotent_when_continuing() {
        let mut c = RoundController::new(params(), t(0.0));
        c.on_response(t(0.1), 2);
        assert_eq!(c.poll(t(0.2)), RoundDecision::Continue);
        assert_eq!(c.poll(t(0.2)), RoundDecision::Continue);
        assert_eq!(c.total_entries(), 2);
    }

    #[test]
    fn start_next_round_resets_round_state_but_not_totals() {
        let mut c = RoundController::new(params(), t(0.0));
        c.on_response(t(0.1), 7);
        c.start_next_round(t(2.0));
        assert_eq!(c.round(), 1);
        assert_eq!(c.total_entries(), 7, "totals persist across rounds");
        // Fresh round with no responses: finishes after one idle window,
        // and with no new entries the discovery ends.
        assert_eq!(c.poll(t(2.5)), RoundDecision::Continue);
        assert_eq!(c.poll(t(3.0)), RoundDecision::Finished);
    }

    #[test]
    fn responses_with_zero_new_entries_still_extend_the_round() {
        let mut c = RoundController::new(params(), t(0.0));
        c.on_response(t(0.1), 3);
        // A steady stream of all-duplicate responses keeps the round alive.
        for i in 1..=20 {
            c.on_response(t(0.1 + 0.4 * f64::from(i)), 0);
        }
        assert_eq!(c.poll(t(8.2)), RoundDecision::Continue);
    }

    #[test]
    fn window_prunes_old_arrivals_only() {
        let mut c = RoundController::new(params(), t(0.0));
        c.on_response(t(0.1), 1);
        c.on_response(t(5.0), 1);
        // At 5.2 s, one arrival (5.0) is inside the window of 11 total... of
        // 2 total: ratio 0.5 > 0 → continue.
        assert_eq!(c.poll(t(5.2)), RoundDecision::Continue);
        // At 6.5 s the window is empty → round over.
        assert_eq!(c.poll(t(6.5)), RoundDecision::StartNextRound);
    }
}
