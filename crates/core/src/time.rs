//! Virtual time: instants and durations at microsecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual simulation time, measured in microseconds since the
/// start of the run.
///
/// # Examples
///
/// ```
/// use pds_core::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(250);
/// assert_eq!(t.as_secs_f64(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: Self = Self(0);
    /// The farthest representable instant; useful as an "infinite" horizon.
    pub const MAX: Self = Self(u64::MAX);

    /// Creates an instant from whole microseconds since the start.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }

    /// Creates an instant from fractional seconds since the start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "time must be nonnegative");
        Self((secs * 1e6).round() as u64)
    }

    /// Microseconds since the start of the simulation.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the simulation.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time in microseconds.
///
/// # Examples
///
/// ```
/// use pds_core::SimDuration;
///
/// assert!(SimDuration::from_millis(200) > SimDuration::from_micros(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: Self = Self(0);

    /// Creates a duration from whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }

    /// Creates a duration from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be nonnegative"
        );
        Self((secs * 1e6).round() as u64)
    }

    /// Whole microseconds in this duration.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds in this duration.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    #[must_use]
    pub fn saturating_mul(self, factor: u64) -> Self {
        Self(self.0.saturating_mul(factor))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_round_trips_seconds() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_micros(100);
        let b = SimTime::from_micros(300);
        assert_eq!(b.since(a).as_micros(), 200);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(2), SimDuration::from_micros(2_000));
        assert_eq!(SimDuration::from_secs(3), SimDuration::from_millis(3_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.001),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimTime::MAX > SimTime::ZERO);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs_f64(1.25).to_string(), "1.250000s");
        assert_eq!(SimDuration::from_millis(5).to_string(), "0.005000s");
    }

    #[test]
    fn saturating_mul_caps() {
        let d = SimDuration::from_micros(u64::MAX / 2);
        assert_eq!(d.saturating_mul(4).as_micros(), u64::MAX);
    }
}
