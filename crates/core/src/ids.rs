//! Protocol identifiers.

use std::fmt;
use std::sync::Arc;

/// Globally unique identifier of a query, used to detect redundant copies
/// (the paper's "globally unique query ID"). Generated from per-node
/// randomness, so collisions are negligible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{:016x}", self.0)
    }
}

/// Globally unique identifier of a response message ("a random thus globally
/// unique response ID to detect redundant copies").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResponseId(pub u64);

impl fmt::Display for ResponseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{:016x}", self.0)
    }
}

/// Unique name of a (large, chunked) data item — the value of its `name`
/// attribute. Cheaply cloneable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemName(Arc<str>);

impl ItemName {
    /// Creates an item name.
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        Self(Arc::from(name.as_ref()))
    }

    /// The name as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ItemName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ItemName {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl From<String> for ItemName {
    fn from(s: String) -> Self {
        Self(Arc::from(s))
    }
}

/// Index of a chunk within a large data item (`chunk id` attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub u32);

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_name_round_trips() {
        let n = ItemName::new("concert-video");
        assert_eq!(n.as_str(), "concert-video");
        assert_eq!(n, ItemName::from("concert-video"));
        assert_eq!(n.to_string(), "concert-video");
    }

    #[test]
    fn ids_format_distinctly() {
        assert!(QueryId(0xab).to_string().starts_with('q'));
        assert!(ResponseId(0xab).to_string().starts_with('r'));
        assert_eq!(ChunkId(3).to_string(), "c3");
    }

    #[test]
    fn item_name_is_cheap_to_clone() {
        let a = ItemName::new("x");
        let b = a.clone();
        assert_eq!(a, b);
    }
}
