//! Chunk Distribution Information — per-chunk distance-vector routing state
//! (§IV-A).
//!
//! Like distance-vector routing, but the destination is a *data chunk*
//! rather than an address: each entry records via which neighbor the
//! nearest known copy of a chunk can be reached and at what hop count.
//! Entries for chunks the node does not itself hold expire, so obsolete
//! routes disappear.

use crate::ids::{ChunkId, ItemName};
use crate::{NodeId, SimTime};
use pds_det::DetMap;
use std::collections::BTreeMap;

/// One CDI route: chunk reachable `hops` away via `neighbor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdiEntry {
    /// Next hop toward the nearest known copy.
    pub neighbor: NodeId,
    /// Distance in hops (0 = the chunk is local).
    pub hops: u32,
    /// When this route lapses.
    pub expires_at: SimTime,
}

/// The CDI table of one node.
///
/// # Examples
///
/// ```
/// use pds_core::{CdiTable, ChunkId, ItemName, NodeId};
/// use pds_core::SimTime;
///
/// let mut cdi = CdiTable::new();
/// let item = ItemName::new("clip");
/// cdi.observe(&item, ChunkId(0), NodeId(3), 2, SimTime::from_secs_f64(30.0));
/// assert_eq!(cdi.best_hops(&item, ChunkId(0), SimTime::ZERO), Some(2));
/// ```
#[derive(Debug, Default)]
pub struct CdiTable {
    // item → chunk → neighbor → entry  (all min-hop neighbors are kept, so
    // the assignment step can balance load across them).
    routes: DetMap<ItemName, BTreeMap<ChunkId, BTreeMap<NodeId, CdiEntry>>>,
}

impl CdiTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes that `chunk` of `item` is reachable via `neighbor` at
    /// `hops`. Keeps the entry if it ties or beats the neighbor's previous
    /// distance; prunes strictly worse same-neighbor state. Entries from
    /// other neighbors are kept (the per-chunk minimum is computed on read),
    /// so a later, closer route simply shadows them.
    pub fn observe(
        &mut self,
        item: &ItemName,
        chunk: ChunkId,
        neighbor: NodeId,
        hops: u32,
        expires_at: SimTime,
    ) {
        let per_neighbor = self
            .routes
            .entry(item.clone())
            .or_default()
            .entry(chunk)
            .or_default();
        match per_neighbor.get_mut(&neighbor) {
            Some(e) if e.hops < hops && e.expires_at > expires_at => {}
            Some(e) => {
                if hops <= e.hops {
                    e.hops = hops;
                }
                e.expires_at = e.expires_at.max(expires_at);
            }
            None => {
                per_neighbor.insert(
                    neighbor,
                    CdiEntry {
                        neighbor,
                        hops,
                        expires_at,
                    },
                );
            }
        }
    }

    /// The smallest known hop count to `chunk` of `item` at `now`.
    #[must_use]
    pub fn best_hops(&self, item: &ItemName, chunk: ChunkId, now: SimTime) -> Option<u32> {
        self.routes
            .get(item)?
            .get(&chunk)?
            .values()
            .filter(|e| e.expires_at > now)
            .map(|e| e.hops)
            .min()
    }

    /// All unexpired `(neighbor, hops)` routes for `chunk` of `item`,
    /// ascending by neighbor id. Used to build the assignment problem.
    #[must_use]
    pub fn candidates(&self, item: &ItemName, chunk: ChunkId, now: SimTime) -> Vec<(NodeId, u32)> {
        self.routes
            .get(item)
            .and_then(|m| m.get(&chunk))
            .map(|per_neighbor| {
                per_neighbor
                    .values()
                    .filter(|e| e.expires_at > now)
                    .map(|e| (e.neighbor, e.hops))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Per-chunk minimum hop counts for `item` — the `(ChunkId, HopCount)`
    /// pairs a CDI response carries (§IV-A).
    #[must_use]
    pub fn summary(&self, item: &ItemName, now: SimTime) -> Vec<(ChunkId, u32)> {
        self.routes
            .get(item)
            .map(|chunks| {
                chunks
                    .iter()
                    .filter_map(|(&c, per_neighbor)| {
                        per_neighbor
                            .values()
                            .filter(|e| e.expires_at > now)
                            .map(|e| e.hops)
                            .min()
                            .map(|h| (c, h))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Chunks of `item` with at least one unexpired route.
    #[must_use]
    pub fn covered_chunks(&self, item: &ItemName, now: SimTime) -> Vec<ChunkId> {
        self.summary(item, now)
            .into_iter()
            .map(|(c, _)| c)
            .collect()
    }

    /// Drops expired routes (and empty item groups).
    pub fn gc(&mut self, now: SimTime) {
        for chunks in self.routes.values_mut() {
            for per_neighbor in chunks.values_mut() {
                per_neighbor.retain(|_, e| e.expires_at > now);
            }
            chunks.retain(|_, per_neighbor| !per_neighbor.is_empty());
        }
        self.routes.retain(|_, chunks| !chunks.is_empty());
    }

    /// Total number of stored routes (diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes
            .values()
            .flat_map(|c| c.values())
            .map(BTreeMap::len)
            .sum()
    }

    /// Whether the table holds no routes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn item() -> ItemName {
        ItemName::new("vid")
    }

    #[test]
    fn observe_and_read_back() {
        let mut cdi = CdiTable::new();
        cdi.observe(&item(), ChunkId(0), NodeId(1), 2, t(10.0));
        assert_eq!(cdi.best_hops(&item(), ChunkId(0), t(0.0)), Some(2));
        assert_eq!(
            cdi.candidates(&item(), ChunkId(0), t(0.0)),
            vec![(NodeId(1), 2)]
        );
        assert_eq!(cdi.best_hops(&item(), ChunkId(1), t(0.0)), None);
    }

    #[test]
    fn closer_route_improves_same_neighbor() {
        let mut cdi = CdiTable::new();
        cdi.observe(&item(), ChunkId(0), NodeId(1), 3, t(10.0));
        cdi.observe(&item(), ChunkId(0), NodeId(1), 1, t(10.0));
        assert_eq!(cdi.best_hops(&item(), ChunkId(0), t(0.0)), Some(1));
        // A worse later report does not regress the stored distance.
        cdi.observe(&item(), ChunkId(0), NodeId(1), 4, t(20.0));
        assert_eq!(cdi.best_hops(&item(), ChunkId(0), t(0.0)), Some(1));
    }

    #[test]
    fn multiple_neighbors_all_kept() {
        let mut cdi = CdiTable::new();
        cdi.observe(&item(), ChunkId(0), NodeId(1), 1, t(10.0));
        cdi.observe(&item(), ChunkId(0), NodeId(2), 1, t(10.0));
        cdi.observe(&item(), ChunkId(0), NodeId(3), 4, t(10.0));
        let c = cdi.candidates(&item(), ChunkId(0), t(0.0));
        assert_eq!(c.len(), 3);
        assert_eq!(cdi.best_hops(&item(), ChunkId(0), t(0.0)), Some(1));
    }

    #[test]
    fn expiry_hides_and_gc_removes() {
        let mut cdi = CdiTable::new();
        cdi.observe(&item(), ChunkId(0), NodeId(1), 1, t(5.0));
        cdi.observe(&item(), ChunkId(1), NodeId(2), 2, t(50.0));
        assert_eq!(cdi.best_hops(&item(), ChunkId(0), t(6.0)), None);
        assert_eq!(cdi.best_hops(&item(), ChunkId(1), t(6.0)), Some(2));
        assert_eq!(cdi.len(), 2);
        cdi.gc(t(6.0));
        assert_eq!(cdi.len(), 1);
        assert!(!cdi.is_empty());
        cdi.gc(t(100.0));
        assert!(cdi.is_empty());
    }

    #[test]
    fn observe_extends_expiry() {
        let mut cdi = CdiTable::new();
        cdi.observe(&item(), ChunkId(0), NodeId(1), 1, t(5.0));
        cdi.observe(&item(), ChunkId(0), NodeId(1), 1, t(50.0));
        assert_eq!(cdi.best_hops(&item(), ChunkId(0), t(10.0)), Some(1));
    }

    #[test]
    fn summary_reports_minima() {
        let mut cdi = CdiTable::new();
        cdi.observe(&item(), ChunkId(0), NodeId(1), 2, t(10.0));
        cdi.observe(&item(), ChunkId(0), NodeId(2), 1, t(10.0));
        cdi.observe(&item(), ChunkId(3), NodeId(1), 0, t(10.0));
        let mut s = cdi.summary(&item(), t(0.0));
        s.sort();
        assert_eq!(s, vec![(ChunkId(0), 1), (ChunkId(3), 0)]);
        assert_eq!(
            cdi.covered_chunks(&item(), t(0.0)),
            vec![ChunkId(0), ChunkId(3)]
        );
    }

    #[test]
    fn gc_is_idempotent() {
        let mut cdi = CdiTable::new();
        cdi.observe(&item(), ChunkId(0), NodeId(1), 1, t(5.0));
        cdi.gc(t(10.0));
        let after_first = cdi.len();
        cdi.gc(t(10.0));
        assert_eq!(cdi.len(), after_first);
        assert!(cdi.is_empty());
    }

    #[test]
    fn candidates_are_sorted_by_neighbor_id() {
        let mut cdi = CdiTable::new();
        cdi.observe(&item(), ChunkId(0), NodeId(9), 2, t(10.0));
        cdi.observe(&item(), ChunkId(0), NodeId(3), 2, t(10.0));
        cdi.observe(&item(), ChunkId(0), NodeId(6), 2, t(10.0));
        let ids: Vec<u32> = cdi
            .candidates(&item(), ChunkId(0), t(0.0))
            .into_iter()
            .map(|(n, _)| n.0)
            .collect();
        assert_eq!(ids, vec![3, 6, 9], "deterministic order for assignment");
    }

    #[test]
    fn items_are_independent() {
        let mut cdi = CdiTable::new();
        cdi.observe(&ItemName::new("a"), ChunkId(0), NodeId(1), 1, t(10.0));
        assert_eq!(cdi.best_hops(&ItemName::new("b"), ChunkId(0), t(0.0)), None);
        assert!(cdi.summary(&ItemName::new("b"), t(0.0)).is_empty());
    }
}
