//! Deterministic pseudo-randomness for reproducible simulation runs.

/// A small, fast, deterministic PRNG (xoshiro256++ seeded via splitmix64).
///
/// Every random decision in a simulation run flows from a single `u64` seed,
/// so identical (seed, scenario) pairs replay identically — the property the
/// test suite and the 5-seed experiment averaging rely on.
///
/// # Examples
///
/// ```
/// use pds_core::SimRng;
///
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // Expand the seed with splitmix64 so similar seeds diverge.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent generator for a named subsystem, leaving `self`
    /// unperturbed in terms of stream overlap.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> Self {
        let s = self.next_u64() ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Self::new(s)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let [a, b, c, d] = self.state;
        let result = a.wrapping_add(d).rotate_left(23).wrapping_add(a);
        let t = b << 17;
        let mut s = [a, b, c, d];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        lo + self.next_f64() * (hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// An exponentially distributed draw with the given mean — inter-arrival
    /// times of Poisson processes (mobility join/leave/move events).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_u64(0, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SimRng::new(5);
        let mean: f64 = (0..10_000).map(|_| r.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
            let y = r.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&y));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(4);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn chance_probability_estimate() {
        let mut r = SimRng::new(8);
        let hits = (0..20_000).filter(|_| r.chance(0.25)).count() as f64 / 20_000.0;
        assert!((hits - 0.25).abs() < 0.02, "hits = {hits}");
    }

    #[test]
    fn exponential_mean_estimate() {
        let mut r = SimRng::new(11);
        let mean: f64 = (0..20_000).map(|_| r.exponential(2.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 2.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn forks_are_independent_streams() {
        let mut base = SimRng::new(77);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(21);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
