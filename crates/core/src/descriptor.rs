//! Data descriptors — self-describing metadata entries (§II-B).

use crate::ids::{ChunkId, ItemName};
use crate::value::AttrValue;
use bytes::Buf;
use std::cmp::Ordering;
use std::fmt;

/// Well-known attribute names.
pub mod attrs {
    /// Namespace where the data type is defined.
    pub const NAMESPACE: &str = "ns";
    /// Data type (e.g. `no2`, `video`, or the system types `metadata`/`cdi`).
    pub const TYPE: &str = "type";
    /// Unique item name for large chunked items.
    pub const NAME: &str = "name";
    /// Number of chunks of a large item.
    pub const TOTAL_CHUNKS: &str = "total_chunks";
    /// Chunk index, present only on chunk descriptors.
    pub const CHUNK_ID: &str = "chunk_id";
    /// Generation time.
    pub const TIME: &str = "time";
}

/// An interned attribute name: the six well-known names every descriptor
/// in the system uses are enum atoms (no heap allocation, one byte),
/// and only genuinely custom names pay for an owned string.
///
/// A city-scale world holds millions of descriptor attributes — almost
/// all of them named `ns`/`type`/`name`/`time`/`chunk_id`/`total_chunks`.
/// As `String` keys those cost ~24 bytes of struct plus a heap block
/// each; as atoms they cost nothing. Ordering and equality are defined
/// by the *name string* (see [`AttrName::as_str`]), so sorted iteration,
/// canonical encodings and [`EntryKey`]s are byte-identical to the
/// string-keyed representation this replaces.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AttrName {
    /// `chunk_id`
    ChunkId,
    /// `name`
    Name,
    /// `ns`
    Ns,
    /// `time`
    Time,
    /// `total_chunks`
    TotalChunks,
    /// `type`
    Type,
    /// Any other attribute name.
    Other(Box<str>),
}

impl AttrName {
    /// The name as a string slice — the canonical form that defines
    /// ordering, equality and the wire encoding.
    #[must_use]
    pub fn as_str(&self) -> &str {
        match self {
            AttrName::ChunkId => attrs::CHUNK_ID,
            AttrName::Name => attrs::NAME,
            AttrName::Ns => attrs::NAMESPACE,
            AttrName::Time => attrs::TIME,
            AttrName::TotalChunks => attrs::TOTAL_CHUNKS,
            AttrName::Type => attrs::TYPE,
            AttrName::Other(s) => s,
        }
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        match s {
            attrs::CHUNK_ID => AttrName::ChunkId,
            attrs::NAME => AttrName::Name,
            attrs::NAMESPACE => AttrName::Ns,
            attrs::TIME => AttrName::Time,
            attrs::TOTAL_CHUNKS => AttrName::TotalChunks,
            attrs::TYPE => AttrName::Type,
            other => AttrName::Other(other.into()),
        }
    }
}

impl From<String> for AttrName {
    fn from(s: String) -> Self {
        AttrName::from(s.as_str())
    }
}

impl PartialOrd for AttrName {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AttrName {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Canonical identity of a metadata entry: the byte encoding of its
/// descriptor. Used as the Bloom-filter element and dedup key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntryKey(pub Vec<u8>);

impl EntryKey {
    /// The key bytes (what gets inserted into Bloom filters).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

/// A data descriptor: a set of named attribute values describing one data
/// item (or one chunk of a large item).
///
/// Attributes are kept sorted by name, so equal descriptors have equal
/// canonical encodings ([`DataDescriptor::entry_key`]).
///
/// # Examples
///
/// ```
/// use pds_core::{AttrValue, DataDescriptor};
///
/// let video = DataDescriptor::builder()
///     .attr("ns", "events")
///     .attr("type", "video")
///     .attr("name", "parade-finale")
///     .attr("total_chunks", AttrValue::Int(80))
///     .build();
/// assert_eq!(video.total_chunks(), Some(80));
/// assert_eq!(video.item_name().unwrap().as_str(), "parade-finale");
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataDescriptor {
    /// Sorted by name, unique — a flat vec, not a tree: descriptors have
    /// a handful of attributes, and one contiguous allocation (with
    /// interned [`AttrName`] atoms) replaces a B-tree node per map.
    attrs: Vec<(AttrName, AttrValue)>,
}

impl DataDescriptor {
    /// Starts building a descriptor.
    #[must_use]
    pub fn builder() -> DescriptorBuilder {
        DescriptorBuilder::default()
    }

    /// Looks up an attribute by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&AttrValue> {
        self.attrs
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .and_then(|i| self.attrs.get(i).map(|(_, v)| v))
    }

    /// Iterates attributes in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of attributes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the descriptor has no attributes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The `name` attribute as an [`ItemName`], if present and a string.
    #[must_use]
    pub fn item_name(&self) -> Option<ItemName> {
        match self.get(attrs::NAME) {
            Some(AttrValue::Str(s)) => Some(ItemName::new(s)),
            _ => None,
        }
    }

    /// The `total_chunks` attribute, if present and an integer.
    #[must_use]
    pub fn total_chunks(&self) -> Option<u32> {
        match self.get(attrs::TOTAL_CHUNKS) {
            Some(AttrValue::Int(n)) if *n >= 0 => u32::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The `chunk_id` attribute, if present — i.e. this describes a chunk
    /// rather than a whole item.
    #[must_use]
    pub fn chunk_id(&self) -> Option<ChunkId> {
        match self.get(attrs::CHUNK_ID) {
            Some(AttrValue::Int(n)) if *n >= 0 => u32::try_from(*n).ok().map(ChunkId),
            _ => None,
        }
    }

    /// The descriptor of chunk `id`: this descriptor plus a `chunk_id`
    /// attribute (the paper: "the descriptor of each chunk is simply the
    /// data item descriptor appended by a chunk id attribute").
    #[must_use]
    pub fn chunk_descriptor(&self, id: ChunkId) -> DataDescriptor {
        let mut attrs = self.attrs.clone();
        insert_sorted(&mut attrs, AttrName::ChunkId, AttrValue::Int(i64::from(id.0)));
        DataDescriptor { attrs }
    }

    /// This descriptor with any `chunk_id` removed — the whole-item
    /// descriptor a chunk belongs to.
    #[must_use]
    pub fn item_descriptor(&self) -> DataDescriptor {
        let mut attrs = self.attrs.clone();
        attrs.retain(|(k, _)| !matches!(k, AttrName::ChunkId));
        DataDescriptor { attrs }
    }

    /// Canonical encoding, used as identity (Bloom elements, dedup keys).
    #[must_use]
    pub fn entry_key(&self) -> EntryKey {
        EntryKey(self.encode())
    }

    /// Serializes the descriptor.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.push(self.attrs.len() as u8);
        for (k, v) in &self.attrs {
            let k = k.as_str();
            out.push(k.len() as u8);
            out.extend_from_slice(k.as_bytes());
            v.encode(&mut out);
        }
        out
    }

    /// Wire size of the encoded form.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        1 + self
            .attrs
            .iter()
            .map(|(k, v)| 1 + k.as_str().len() + v.encoded_len())
            .sum::<usize>()
    }

    /// Deserializes a descriptor.
    ///
    /// Returns `None` on truncation or malformed content.
    pub fn decode(buf: &mut impl Buf) -> Option<Self> {
        if buf.remaining() < 1 {
            return None;
        }
        let n = buf.get_u8() as usize;
        let mut attrs = Vec::with_capacity(n);
        for _ in 0..n {
            if buf.remaining() < 1 {
                return None;
            }
            let klen = buf.get_u8() as usize;
            if buf.remaining() < klen {
                return None;
            }
            let mut kb = vec![0u8; klen];
            buf.copy_to_slice(&mut kb);
            let key = String::from_utf8(kb).ok()?;
            let value = AttrValue::decode(buf)?;
            insert_sorted(&mut attrs, AttrName::from(key), value);
        }
        Some(DataDescriptor { attrs })
    }
}

impl fmt::Display for DataDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

/// Inserts (or replaces) `name` in a name-sorted attribute vec.
fn insert_sorted(attrs: &mut Vec<(AttrName, AttrValue)>, name: AttrName, value: AttrValue) {
    match attrs.binary_search_by(|(k, _)| k.as_str().cmp(name.as_str())) {
        Ok(i) => {
            if let Some(slot) = attrs.get_mut(i) {
                slot.1 = value;
            }
        }
        Err(i) => attrs.insert(i, (name, value)),
    }
}

/// Incremental builder for [`DataDescriptor`].
#[derive(Debug, Default)]
pub struct DescriptorBuilder {
    attrs: Vec<(AttrName, AttrValue)>,
}

impl DescriptorBuilder {
    /// Adds (or replaces) an attribute.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty or longer than 255 bytes, or if a float
    /// value is NaN (NaN would break total ordering and canonical identity).
    #[must_use]
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        let name = name.into();
        assert!(
            !name.is_empty() && name.len() <= 255,
            "attribute name must be 1–255 bytes"
        );
        let value = value.into();
        if let AttrValue::Float(f) = value {
            assert!(!f.is_nan(), "attribute value must not be NaN");
        }
        insert_sorted(&mut self.attrs, AttrName::from(name), value);
        self
    }

    /// Finishes the descriptor.
    #[must_use]
    pub fn build(self) -> DataDescriptor {
        DataDescriptor { attrs: self.attrs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataDescriptor {
        DataDescriptor::builder()
            .attr(attrs::NAMESPACE, "env")
            .attr(attrs::TYPE, "no2")
            .attr(attrs::TIME, AttrValue::Time(100))
            .attr("x", 1.5)
            .build()
    }

    #[test]
    fn builder_sets_and_replaces() {
        let d = DataDescriptor::builder()
            .attr("a", 1i64)
            .attr("a", 2i64)
            .build();
        assert_eq!(d.get("a"), Some(&AttrValue::Int(2)));
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn encode_decode_round_trips() {
        let d = sample();
        let bytes = d.encode();
        assert_eq!(bytes.len(), d.encoded_len());
        let mut slice = &bytes[..];
        let back = DataDescriptor::decode(&mut slice).expect("decodes");
        assert_eq!(back, d);
    }

    #[test]
    fn entry_key_is_canonical() {
        // Attribute insertion order must not matter.
        let a = DataDescriptor::builder()
            .attr("x", 1i64)
            .attr("y", 2i64)
            .build();
        let b = DataDescriptor::builder()
            .attr("y", 2i64)
            .attr("x", 1i64)
            .build();
        assert_eq!(a.entry_key(), b.entry_key());
        let c = DataDescriptor::builder()
            .attr("x", 1i64)
            .attr("y", 3i64)
            .build();
        assert_ne!(a.entry_key(), c.entry_key());
    }

    #[test]
    fn chunk_descriptor_appends_chunk_id() {
        let item = DataDescriptor::builder()
            .attr(attrs::NAME, "vid")
            .attr(attrs::TOTAL_CHUNKS, AttrValue::Int(4))
            .build();
        let chunk = item.chunk_descriptor(ChunkId(2));
        assert_eq!(chunk.chunk_id(), Some(ChunkId(2)));
        assert_eq!(chunk.item_descriptor(), item);
        assert_eq!(item.chunk_id(), None);
        assert_eq!(chunk.total_chunks(), Some(4));
        assert_eq!(chunk.item_name(), Some(ItemName::new("vid")));
    }

    #[test]
    fn entry_size_is_compact() {
        // The paper budgets ~30 bytes per metadata entry; short attribute
        // names keep ours in the same regime.
        let d = DataDescriptor::builder()
            .attr("ns", "e")
            .attr("type", "no2")
            .attr("time", AttrValue::Time(1_451_635_200))
            .build();
        assert!(
            d.encoded_len() <= 48,
            "entry too large: {} bytes",
            d.encoded_len()
        );
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = DataDescriptor::builder().attr("x", f64::NAN);
    }

    #[test]
    #[should_panic(expected = "1–255")]
    fn empty_name_rejected() {
        let _ = DataDescriptor::builder().attr("", 1i64);
    }

    #[test]
    fn decode_rejects_truncated() {
        let d = sample();
        let bytes = d.encode();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let mut slice = &bytes[..cut];
            assert_eq!(DataDescriptor::decode(&mut slice), None, "cut at {cut}");
        }
    }

    #[test]
    fn display_lists_attributes() {
        let s = sample().to_string();
        assert!(s.contains("type=no2"));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }
}
