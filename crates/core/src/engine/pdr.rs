//! Peer Data Retrieval: two-phase retrieval of large chunked items (§IV).
//!
//! Phase 1 floods a CDI query and collects Chunk Distribution Information —
//! per-chunk distance-vector routes built on demand. Phase 2 divides the
//! wanted chunks among nearest neighbors (min-max assignment), sends each a
//! directed chunk query, and lets every en-route node serve what it holds
//! and recursively divide the remainder. A watchdog re-requests chunks that
//! stall and re-floods CDI queries when routes are missing.

use super::{Outgoing, PdsEngine, MAX_CHUNK_QUERY_DEPTH};
use crate::assign::min_max_assign;
use crate::descriptor::DataDescriptor;
use crate::ids::{ChunkId, ItemName};
use crate::message::{QueryKind, QueryMessage, ResponseKind, ResponseMessage};
use crate::predicate::QueryFilter;
use crate::sessions::{RetrievalPhase, RetrievalSession};
use crate::{NodeId, SimTime};
use bytes::Bytes;
use pds_det::DetMap;
use std::collections::BTreeSet;

impl PdsEngine {
    // ---- consumer API -----------------------------------------------------

    /// Starts a two-phase PDR retrieval of the large item `descriptor`
    /// describes. Returns the phase-1 CDI query flood.
    ///
    /// A descriptor without `name` or `total_chunks` attributes cannot
    /// drive a chunked retrieval; such a request is refused (no messages,
    /// no session) and asserts in debug builds.
    pub fn start_retrieval(&mut self, now: SimTime, descriptor: DataDescriptor) -> Vec<Outgoing> {
        let (Some(item), Some(total)) = (descriptor.item_name(), descriptor.total_chunks()) else {
            debug_assert!(
                false,
                "retrieval descriptor must carry `name` and `total_chunks`"
            );
            return Vec::new();
        };
        let received: BTreeSet<ChunkId> = self.store.chunk_ids(&item).into_iter().collect();
        let done = received.len() as u32 >= total;
        let phase = if done {
            RetrievalPhase::Done
        } else {
            RetrievalPhase::CdiCollection
        };
        let session = RetrievalSession {
            item: item.clone(),
            descriptor: descriptor.clone(),
            total_chunks: total,
            received,
            bytes_received: 0,
            phase,
            started_at: now,
            phase_started_at: now,
            last_progress_at: now,
            finished_at: if done { Some(now) } else { None },
            recovery_attempts: 0,
            mdr: false,
            controller: None,
            rounds_sent: 0,
            transitions: vec![(now, phase)],
        };
        self.retrieval = Some(session);
        if done {
            return Vec::new();
        }
        vec![self.cdi_query(now, descriptor)]
    }

    fn cdi_query(&mut self, now: SimTime, descriptor: DataDescriptor) -> Outgoing {
        let id = self.new_query_id();
        let query = QueryMessage {
            id,
            kind: QueryKind::Cdi { descriptor },
            sender: self.id,
            expires_at: now + self.config.query_lifetime,
            filter: QueryFilter::match_all(),
            bloom: None,
            round: 0,
            ttl_hops: self.config.query_hop_limit.unwrap_or(0),
        };
        self.register_own_query(&query);
        Outgoing::query(query, Vec::new()).for_session()
    }

    /// Phase transitions, chunk-query waves and recovery (consumer side).
    pub(crate) fn poll_retrieval(&mut self, now: SimTime) -> Vec<Outgoing> {
        let Some(session) = &self.retrieval else {
            return Vec::new();
        };
        if session.mdr {
            return self.poll_mdr(now);
        }
        match session.phase {
            RetrievalPhase::Done => Vec::new(),
            RetrievalPhase::CdiCollection => self.poll_cdi_phase(now),
            RetrievalPhase::ChunkRetrieval => self.poll_chunk_phase(now),
        }
    }

    fn poll_cdi_phase(&mut self, now: SimTime) -> Vec<Outgoing> {
        let p = self.config.pdr;
        let Some(session) = self.retrieval.as_ref() else {
            return Vec::new();
        };
        let elapsed = now.since(session.phase_started_at);
        let item = session.item.clone();
        let descriptor = session.descriptor.clone();
        let total = session.total_chunks;
        let have: BTreeSet<ChunkId> = session.received.clone();

        let covered: BTreeSet<ChunkId> = self
            .cdi
            .covered_chunks(&item, now)
            .into_iter()
            .chain(have.iter().copied())
            .collect();
        let full = covered.len() as u32 >= total;
        if (full && elapsed >= p.phase1_min) || elapsed >= p.phase1_timeout {
            if covered.len() as u32 > have.len() as u32 {
                // Enough routes: move to phase 2 and send the first wave.
                if let Some(s) = &mut self.retrieval {
                    s.phase = RetrievalPhase::ChunkRetrieval;
                    s.phase_started_at = now;
                    s.rounds_sent += 1;
                    s.transitions.push((now, RetrievalPhase::ChunkRetrieval));
                }
                return self.chunk_query_wave(now, &item, true);
            }
            // No routes at all: re-flood the CDI query (recovery) or give up.
            let give_up = match self.retrieval.as_mut() {
                Some(s) => {
                    s.recovery_attempts += 1;
                    s.phase_started_at = now;
                    s.recovery_attempts > p.max_recovery
                }
                None => return Vec::new(),
            };
            if give_up {
                self.finish_retrieval(now);
                return Vec::new();
            }
            return vec![self.cdi_query(now, descriptor)];
        }
        Vec::new()
    }

    fn poll_chunk_phase(&mut self, now: SimTime) -> Vec<Outgoing> {
        let p = self.config.pdr;
        let (missing, stalled, descriptor, item) = {
            let Some(s) = self.retrieval.as_ref() else {
                return Vec::new();
            };
            let missing: Vec<ChunkId> = (0..s.total_chunks)
                .map(ChunkId)
                .filter(|c| !s.received.contains(c))
                .collect();
            let threshold = p.watchdog + p.watchdog_per_chunk.saturating_mul(missing.len() as u64);
            let stalled = now.since(s.last_progress_at.max(s.phase_started_at)) >= threshold;
            (missing, stalled, s.descriptor.clone(), s.item.clone())
        };
        if missing.is_empty() {
            self.finish_retrieval(now);
            return Vec::new();
        }
        if !stalled {
            return Vec::new();
        }
        // Recovery: re-request missing chunks; if some have no routes,
        // also re-flood the CDI query.
        let give_up = match self.retrieval.as_mut() {
            Some(s) => {
                s.recovery_attempts += 1;
                s.last_progress_at = now;
                s.rounds_sent += 1;
                s.recovery_attempts > p.max_recovery
            }
            None => return Vec::new(),
        };
        if give_up {
            self.finish_retrieval(now);
            return Vec::new();
        }
        // Recovery re-requests only chunks with no recent outstanding
        // sub-query; chunks legitimately in flight are left alone.
        let mut out = self.chunk_query_wave(now, &item, false);
        let unroutable = missing
            .iter()
            .any(|&c| self.cdi.candidates(&item, c, now).is_empty());
        if unroutable {
            out.push(self.cdi_query(now, descriptor));
        }
        out
    }

    /// Builds the consumer's directed chunk queries for all missing chunks
    /// with known routes, balancing load with the min-max heuristic.
    fn chunk_query_wave(&mut self, now: SimTime, item: &ItemName, force: bool) -> Vec<Outgoing> {
        let Some(session) = self.retrieval.as_ref() else {
            return Vec::new();
        };
        let missing: Vec<ChunkId> = (0..session.total_chunks)
            .map(ChunkId)
            .filter(|c| !session.received.contains(c))
            .collect();
        // Chunk queries must outlive the (serialized) transfer they route:
        // scale the lingering horizon with the amount requested.
        let expires = now
            + self.config.query_lifetime
            + self
                .config
                .pdr
                .watchdog_per_chunk
                .saturating_mul(missing.len() as u64 * 2);
        self.divide_chunks(now, item, &missing, None, expires, 0, force)
    }

    /// The recursive query division shared by the consumer and en-route
    /// nodes: assign chunks to neighbors per CDI, one directed sub-query per
    /// neighbor (§IV-B). `force` (consumer recovery) re-requests chunks even
    /// when a sub-query is already outstanding; en-route division skips
    /// them — the in-flight copy will satisfy every lingering upstream.
    #[allow(clippy::too_many_arguments)] // the division context is irreducible
    fn divide_chunks(
        &mut self,
        now: SimTime,
        item: &ItemName,
        chunks: &[ChunkId],
        exclude: Option<NodeId>,
        expires_at: SimTime,
        depth: u32,
        force: bool,
    ) -> Vec<Outgoing> {
        if depth > MAX_CHUNK_QUERY_DEPTH {
            return Vec::new();
        }
        let me = self.id;
        let candidates: Vec<(ChunkId, Vec<(NodeId, u32)>)> = chunks
            .iter()
            .filter(|&&c| {
                force
                    || self
                        .pending_chunk
                        .get(&(item.clone(), c))
                        .is_none_or(|&e| e <= now)
            })
            .map(|&c| {
                let cands: Vec<(NodeId, u32)> = self
                    .cdi
                    .candidates(item, c, now)
                    .into_iter()
                    .filter(|&(n, _)| Some(n) != exclude && n != me)
                    .collect();
                (c, cands)
            })
            .collect();
        let plan = min_max_assign(&candidates, self.config.assign);
        let mut out = Vec::new();
        for (neighbor, assigned) in plan {
            for &c in &assigned {
                self.pending_chunk
                    .insert((item.clone(), c), now + super::PENDING_CHUNK_HORIZON);
            }
            let id = self.new_query_id();
            let query = Outgoing::query(
                QueryMessage {
                    id,
                    kind: QueryKind::Chunks {
                        item: item.clone(),
                        chunks: assigned,
                    },
                    sender: me,
                    expires_at,
                    filter: QueryFilter::match_all(),
                    bloom: None,
                    round: depth,
                    ttl_hops: 0,
                },
                vec![neighbor],
            );
            // Depth-0 waves come from the consumer's own session; deeper
            // waves are en-route re-division at relays.
            out.push(if depth == 0 {
                query.for_session()
            } else {
                query
            });
        }
        out
    }

    fn finish_retrieval(&mut self, now: SimTime) {
        if let Some(s) = &mut self.retrieval {
            if s.phase != RetrievalPhase::Done {
                s.transitions.push((now, RetrievalPhase::Done));
            }
            s.phase = RetrievalPhase::Done;
            if s.finished_at.is_none() {
                s.finished_at = Some(now);
            }
        }
    }

    // ---- CDI query / response (phase 1) -------------------------------------

    /// A node receiving a CDI query responds if it holds chunks or unexpired
    /// CDI entries of the item, then floods the query on (§IV-A).
    pub(crate) fn handle_cdi_query(
        &mut self,
        now: SimTime,
        _from: NodeId,
        me_intended: bool,
        q: QueryMessage,
        descriptor: &DataDescriptor,
    ) -> Vec<Outgoing> {
        self.lqt.insert(q.clone(), q.sender);
        let Some(item) = descriptor.item_name() else {
            return Vec::new();
        };
        // Learning the item's existence from the query itself is free
        // metadata.
        self.store
            .cache_metadata(descriptor.clone(), now + self.config.metadata_ttl);

        let mut out = Vec::new();
        let pairs = self.cdi_summary_with_local(&item, now);
        if !pairs.is_empty() {
            let send: Vec<(ChunkId, u32)> = match self.lqt.get_mut(q.id) {
                Some(lingering) => {
                    let mut kept = Vec::new();
                    for (c, h) in pairs {
                        if lingering.reported_cdi.get(&c).is_none_or(|&r| h < r) {
                            lingering.reported_cdi.insert(c, h);
                            kept.push((c, h));
                        }
                    }
                    kept
                }
                None => Vec::new(),
            };
            if !send.is_empty() {
                let r = ResponseMessage {
                    id: self.new_response_id(),
                    sender: self.id,
                    kind: ResponseKind::Cdi { item, pairs: send },
                };
                out.push(Outgoing::response(r, vec![q.sender], true).answering(q.id));
            }
        }
        if me_intended {
            out.extend(self.forward_flood(&q));
        }
        out
    }

    /// Per-chunk minimum distances as this node sees them: held chunks at
    /// hop 0, otherwise the best unexpired CDI route.
    fn cdi_summary_with_local(&self, item: &ItemName, now: SimTime) -> Vec<(ChunkId, u32)> {
        let mut best: DetMap<ChunkId, u32> = self.cdi.summary(item, now).into_iter().collect();
        for c in self.store.chunk_ids(item) {
            best.insert(c, 0);
        }
        let mut v: Vec<(ChunkId, u32)> = best.into_iter().collect();
        v.sort_unstable_by_key(|&(c, _)| c);
        v
    }

    /// Handles a CDI response: update routes (hop+1 via the transmitter),
    /// then relay improvements toward matching lingering CDI queries
    /// (§IV-A).
    pub(crate) fn handle_cdi_response(
        &mut self,
        now: SimTime,
        from: NodeId,
        me_intended: bool,
        _r: &ResponseMessage,
        item: &ItemName,
        pairs: &[(ChunkId, u32)],
    ) -> Vec<Outgoing> {
        let ttl = self.config.cdi_ttl;
        for &(c, h) in pairs {
            self.cdi
                .observe(item, c, from, h.saturating_add(1), now + ttl);
        }
        if !me_intended {
            return Vec::new();
        }
        let me = self.id;
        let summary = self.cdi_summary_with_local(item, now);
        let mut sends: Vec<(NodeId, Vec<(ChunkId, u32)>)> = Vec::new();
        {
            let matching = self.lqt.match_cdi(item, now);
            let mut per_upstream: DetMap<NodeId, Vec<(ChunkId, u32)>> = DetMap::default();
            for l in matching {
                if l.upstream == me {
                    continue;
                }
                let mut improved = Vec::new();
                for &(c, h) in &summary {
                    if l.reported_cdi.get(&c).is_none_or(|&r| h < r) {
                        l.reported_cdi.insert(c, h);
                        improved.push((c, h));
                    }
                }
                if !improved.is_empty() {
                    per_upstream.entry(l.upstream).or_default().extend(improved);
                }
            }
            for (upstream, mut pairs) in per_upstream {
                pairs.sort_unstable_by_key(|&(c, _)| c);
                pairs.dedup();
                sends.push((upstream, pairs));
            }
        }
        sends.sort_unstable_by_key(|&(n, _)| n);
        let mut out = Vec::new();
        for (upstream, pairs) in sends {
            let r = ResponseMessage {
                id: self.new_response_id(),
                sender: me,
                kind: ResponseKind::Cdi {
                    item: item.clone(),
                    pairs,
                },
            };
            out.push(Outgoing::response(r, vec![upstream], false));
        }
        out
    }

    // ---- chunk query / response (phase 2) -----------------------------------

    /// Handles a directed chunk query: serve held chunks, recursively divide
    /// the rest among nearest neighbors (§IV-B). Only the intended receiver
    /// creates the lingering routing entry — if overhearers did too, a chunk
    /// passing them on its real delivery path would be relayed to upstreams
    /// that already received it on their own path, multiplying every chunk
    /// transmission by the overheard-branch count.
    pub(crate) fn handle_chunk_query(
        &mut self,
        now: SimTime,
        _from: NodeId,
        me_intended: bool,
        q: QueryMessage,
        item: &ItemName,
        chunks: &[ChunkId],
    ) -> Vec<Outgoing> {
        if !me_intended {
            return Vec::new();
        }
        self.lqt.insert(q.clone(), q.sender);
        let mut out = Vec::new();
        let mut remaining = Vec::new();
        let item_descriptor = self
            .store
            .item_descriptor_by_name(item)
            .cloned()
            .unwrap_or_else(|| {
                DataDescriptor::builder()
                    .attr(crate::descriptor::attrs::NAME, item.as_str())
                    .build()
            });
        for &c in chunks {
            if let Some(data) = self.store.fetch_chunk(item, c) {
                if let Some(l) = self.lqt.get_mut(q.id) {
                    l.remaining_chunks.remove(&c);
                }
                let r = ResponseMessage {
                    id: self.new_response_id(),
                    sender: self.id,
                    kind: ResponseKind::Chunk {
                        descriptor: item_descriptor.clone(),
                        chunk: c,
                        data,
                    },
                };
                out.push(Outgoing::response(r, vec![q.sender], false).answering(q.id));
            } else {
                remaining.push(c);
            }
        }
        if !remaining.is_empty() {
            out.extend(self.divide_chunks(
                now,
                item,
                &remaining,
                Some(q.sender),
                q.expires_at,
                q.round + 1,
                false,
            ));
        }
        out
    }

    /// Handles a chunk response: cache the chunk (every receiver, §III-A-2's
    /// opportunistic caching applied to data), update CDI, feed our own
    /// retrieval, and relay toward lingering queries that still want it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_chunk_response(
        &mut self,
        now: SimTime,
        from: NodeId,
        me_intended: bool,
        r: &ResponseMessage,
        descriptor: &DataDescriptor,
        chunk: ChunkId,
        data: Bytes,
    ) -> Vec<Outgoing> {
        let item_descriptor = descriptor.item_descriptor();
        let Some(item) = item_descriptor.item_name() else {
            return Vec::new();
        };
        // Opportunistic caching: we now hold the chunk; the transmitter
        // holds it one hop away.
        self.store
            .cache_chunk(&item_descriptor, chunk, data.clone());
        self.cdi
            .observe(&item, chunk, from, 1, now + self.config.cdi_ttl);
        self.pending_chunk.remove(&(item.clone(), chunk));

        // Feed our own retrieval session (intended or overheard alike).
        self.absorb_chunk(now, me_intended, &item, chunk, data.len() as u64);

        if !me_intended {
            return Vec::new();
        }
        // Relay toward lingering queries that still owe this chunk
        // upstream; remove it from their remaining sets (or insert into MDR
        // blooms) so later copies are not re-relayed.
        let me = self.id;
        let mut receivers: BTreeSet<NodeId> = BTreeSet::new();
        {
            let key = crate::lqt::chunk_key(&item, chunk);
            for l in self.lqt.match_chunk(&item, chunk, now) {
                if l.upstream == me {
                    continue;
                }
                receivers.insert(l.upstream);
                match &l.query.kind {
                    QueryKind::Chunks { .. } => {
                        l.remaining_chunks.remove(&chunk);
                    }
                    QueryKind::MdrChunks { .. } => {
                        // MDR's redundancy detection is intrinsic to the
                        // baseline (§VI-B-3), independent of the PDD
                        // rewrite ablation.
                        l.bloom_insert(&key);
                    }
                    _ => {}
                }
            }
        }
        if receivers.is_empty() {
            return Vec::new();
        }
        vec![Outgoing::response(
            ResponseMessage {
                id: r.id,
                sender: me,
                kind: ResponseKind::Chunk {
                    descriptor: descriptor.clone(),
                    chunk,
                    data,
                },
            },
            receivers.into_iter().collect(),
            false,
        )]
    }

    pub(crate) fn absorb_chunk(
        &mut self,
        now: SimTime,
        me_intended: bool,
        item: &ItemName,
        chunk: ChunkId,
        bytes: u64,
    ) {
        let Some(s) = &mut self.retrieval else {
            return;
        };
        if &s.item != item || s.is_finished() {
            return;
        }
        let new = s.received.insert(chunk);
        if new {
            s.bytes_received += bytes;
            s.last_progress_at = now;
        }
        if let Some(ctrl) = &mut s.controller {
            if me_intended {
                ctrl.on_response(now, u64::from(new));
            }
        }
    }
}
