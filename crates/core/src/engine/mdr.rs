//! The Multi-round Data Retrieval (MDR) baseline (§VI-B-3).
//!
//! MDR retrieves a large item exactly like PDD retrieves metadata: the
//! consumer floods a query for all chunks it does not yet have (a Bloom
//! filter of received chunk keys), every node holding uncovered chunks
//! replies, and multi-round control repeats until a round returns nothing
//! new. There is no CDI and no nearest-copy selection — the redundancy this
//! causes with multiple cached copies is exactly what Figs. 13/14 measure.

use super::{Outgoing, PdsEngine};
use crate::descriptor::DataDescriptor;
use crate::ids::{ChunkId, ItemName};
use crate::lqt::chunk_key;
use crate::message::{QueryKind, QueryMessage, ResponseKind, ResponseMessage};
use crate::predicate::QueryFilter;
use crate::rounds::{RoundController, RoundDecision};
use crate::sessions::{RetrievalPhase, RetrievalSession};
use crate::{NodeId, SimDuration, SimTime};
use pds_bloom::{BloomFilter, BloomParams};
use std::collections::BTreeSet;

impl PdsEngine {
    /// Starts an MDR retrieval of the item `descriptor` describes.
    ///
    /// As for [`PdsEngine::start_retrieval`], a descriptor without `name`
    /// or `total_chunks` is refused (no messages, no session) and asserts
    /// in debug builds.
    pub fn start_mdr_retrieval(
        &mut self,
        now: SimTime,
        descriptor: DataDescriptor,
    ) -> Vec<Outgoing> {
        let (Some(item), Some(total)) = (descriptor.item_name(), descriptor.total_chunks()) else {
            debug_assert!(
                false,
                "retrieval descriptor must carry `name` and `total_chunks`"
            );
            return Vec::new();
        };
        let received: BTreeSet<ChunkId> = self.store.chunk_ids(&item).into_iter().collect();
        let done = received.len() as u32 >= total;
        let phase = if done {
            RetrievalPhase::Done
        } else {
            RetrievalPhase::ChunkRetrieval
        };
        let session = RetrievalSession {
            item: item.clone(),
            descriptor,
            total_chunks: total,
            received,
            bytes_received: 0,
            phase,
            started_at: now,
            phase_started_at: now,
            last_progress_at: now,
            finished_at: if done { Some(now) } else { None },
            recovery_attempts: 0,
            mdr: true,
            controller: None,
            rounds_sent: 1,
            transitions: vec![(now, phase)],
        };
        self.retrieval = Some(session);
        let params = self.mdr_round_params();
        if let Some(s) = &mut self.retrieval {
            s.controller = Some(RoundController::new(params, now));
        }
        if done {
            return Vec::new();
        }
        vec![self.mdr_query(now, &item, total, 0)]
    }

    /// MDR round parameters: chunk responses are ~170 fragments and take
    /// seconds per hop, so the "stream diminished" window must be far wider
    /// than PDD's metadata-sized default.
    fn mdr_round_params(&self) -> crate::config::RoundParams {
        let mut p = self.config.rounds;
        p.t_window = p
            .t_window
            .saturating_mul(30)
            .max(SimDuration::from_secs(30));
        p
    }

    fn mdr_query(&mut self, now: SimTime, item: &ItemName, total: u32, round: u32) -> Outgoing {
        let received: Vec<ChunkId> = self
            .retrieval
            .as_ref()
            .map(|s| s.received.iter().copied().collect())
            .unwrap_or_default();
        let bloom = if received.is_empty() {
            None
        } else {
            let params = BloomParams::optimal((total as usize * 2).max(64), self.config.bloom_fpp);
            let mut b = BloomFilter::with_round(params, round);
            for c in &received {
                b.insert(&chunk_key(item, *c));
            }
            Some(b.encode())
        };
        let id = self.new_query_id();
        let query = QueryMessage {
            id,
            kind: QueryKind::MdrChunks {
                item: item.clone(),
                total_chunks: total,
            },
            sender: self.id,
            expires_at: now + self.config.query_lifetime,
            filter: QueryFilter::match_all(),
            bloom,
            round,
            ttl_hops: self.config.query_hop_limit.unwrap_or(0),
        };
        self.register_own_query(&query);
        Outgoing::query(query, Vec::new()).for_session()
    }

    /// Round control for MDR (mirrors PDD's multi-round discovery).
    pub(crate) fn poll_mdr(&mut self, now: SimTime) -> Vec<Outgoing> {
        let (decision, item, total) = {
            let Some(s) = &mut self.retrieval else {
                return Vec::new();
            };
            if s.is_finished() {
                return Vec::new();
            }
            let done = s.received.len() as u32 >= s.total_chunks;
            let decision = if done {
                RoundDecision::Finished
            } else {
                s.controller
                    .as_mut()
                    .map_or(RoundDecision::Finished, |c| c.poll(now))
            };
            (decision, s.item.clone(), s.total_chunks)
        };
        match decision {
            RoundDecision::Continue => Vec::new(),
            RoundDecision::Finished => {
                if let Some(s) = &mut self.retrieval {
                    if s.phase != RetrievalPhase::Done {
                        s.transitions.push((now, RetrievalPhase::Done));
                    }
                    s.phase = RetrievalPhase::Done;
                    if s.finished_at.is_none() {
                        s.finished_at = Some(now);
                    }
                }
                Vec::new()
            }
            RoundDecision::StartNextRound => {
                let round = {
                    let ctrl = self.retrieval.as_mut().and_then(|s| {
                        s.rounds_sent += 1;
                        s.controller.as_mut()
                    });
                    let Some(ctrl) = ctrl else {
                        return Vec::new();
                    };
                    ctrl.start_next_round(now);
                    ctrl.round()
                };
                vec![self.mdr_query(now, &item, total, round)]
            }
        }
    }

    /// Handles an MDR chunk query: reply every held chunk the consumer does
    /// not yet have (per the query's Bloom filter), rewrite the lingering
    /// filter with what was sent, and flood the query on.
    pub(crate) fn handle_mdr_query(
        &mut self,
        _now: SimTime,
        _from: NodeId,
        me_intended: bool,
        q: QueryMessage,
        item: &ItemName,
        _total_chunks: u32,
    ) -> Vec<Outgoing> {
        self.lqt.insert(q.clone(), q.sender);
        let mut out = Vec::new();
        let held = self.store.chunk_ids(item);
        let item_descriptor = self
            .store
            .item_descriptor_by_name(item)
            .cloned()
            .unwrap_or_else(|| {
                DataDescriptor::builder()
                    .attr(crate::descriptor::attrs::NAME, item.as_str())
                    .build()
            });
        let mut to_send = Vec::new();
        if let Some(lingering) = self.lqt.get_mut(q.id) {
            for c in held {
                let key = chunk_key(item, c);
                if lingering.bloom_contains(&key) {
                    continue;
                }
                lingering.bloom_insert(&key);
                to_send.push(c);
            }
        }
        for c in to_send {
            let Some(data) = self.store.fetch_chunk(item, c) else {
                continue;
            };
            let r = ResponseMessage {
                id: self.new_response_id(),
                sender: self.id,
                kind: ResponseKind::Chunk {
                    descriptor: item_descriptor.clone(),
                    chunk: c,
                    data,
                },
            };
            out.push(Outgoing::response_slow(r, vec![q.sender]).answering(q.id));
        }
        if me_intended {
            out.extend(self.forward_flood(&q));
        }
        out
    }
}
