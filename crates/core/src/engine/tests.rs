//! Engine-level protocol tests: Algorithms 1/2, mixedcast, rewriting,
//! lingering queries, CDI propagation, recursive chunk retrieval and the
//! MDR baseline — all over an instantaneous message pump, no radio.

use super::*;
use crate::config::PdsConfig;
use crate::descriptor::DataDescriptor;
use crate::ids::{ChunkId, ItemName};
use crate::message::{PdsMessage, QueryKind, ResponseKind};
use crate::predicate::{Predicate, QueryFilter, Relation};
use crate::sessions::RetrievalPhase;
use crate::{NodeId, SimDuration, SimTime};
use bytes::Bytes;

fn t(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

fn entry(n: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "no2")
        .attr("seq", i64::from(n))
        .build()
}

fn video(name: &str, total: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "video")
        .attr("name", name)
        .attr("total_chunks", i64::from(total))
        .build()
}

fn engines(n: usize, config: &PdsConfig) -> Vec<PdsEngine> {
    (0..n)
        .map(|i| PdsEngine::new(NodeId(i as u32), config.clone(), 1000 + i as u64))
        .collect()
}

/// Delivers messages instantaneously along `adjacency` until quiescent.
/// Adjacency is symmetric neighbor lists by engine index.
fn pump(
    engines: &mut [PdsEngine],
    adjacency: &[Vec<usize>],
    initial: Vec<(usize, Outgoing)>,
    now: SimTime,
) {
    let mut queue: Vec<(usize, Outgoing)> = initial;
    let mut steps = 0;
    while let Some((sender, out)) = queue.pop() {
        steps += 1;
        assert!(steps < 100_000, "message pump did not quiesce");
        let from = NodeId(sender as u32);
        for &nbr in &adjacency[sender] {
            let me = NodeId(nbr as u32);
            let me_intended = out.intended.is_empty() || out.intended.contains(&me);
            let produced = engines[nbr].handle_message(now, from, me_intended, out.message.clone());
            for p in produced {
                queue.push((nbr, p));
            }
        }
    }
}

/// A line topology 0-1-2-…-(n-1).
fn line(n: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|i| {
            let mut v = Vec::new();
            if i > 0 {
                v.push(i - 1);
            }
            if i + 1 < n {
                v.push(i + 1);
            }
            v
        })
        .collect()
}

/// Runs a full multi-round discovery at engine 0, advancing polls until the
/// session finishes. Message exchange within a round is instantaneous.
fn run_discovery(engines: &mut [PdsEngine], adjacency: &[Vec<usize>]) -> usize {
    let mut now = t(0.0);
    let start = engines[0].start_discovery(now, QueryFilter::match_all());
    pump(
        engines,
        adjacency,
        start.into_iter().map(|o| (0, o)).collect(),
        now,
    );
    for _ in 0..40 {
        now += SimDuration::from_millis(400);
        let out = engines[0].poll(now);
        pump(
            engines,
            adjacency,
            out.into_iter().map(|o| (0, o)).collect(),
            now,
        );
        if engines[0].discovery().expect("session").is_finished() {
            break;
        }
    }
    assert!(engines[0].discovery().expect("session").is_finished());
    engines[0].discovery().expect("session").collected.len()
}

#[test]
fn discovery_collects_everything_on_a_line() {
    let config = PdsConfig::default();
    let mut es = engines(4, &config);
    for (i, e) in es.iter_mut().enumerate() {
        for k in 0..10u32 {
            e.store_mut().insert_own(entry(i as u32 * 10 + k), None);
        }
    }
    let adj = line(4);
    let collected = run_discovery(&mut es, &adj);
    assert_eq!(collected, 40, "all entries from all 4 nodes discovered");
    // Opportunistic caching: the relay (node 1) saw everything that was
    // transmitted — the other 3 nodes' entries (its own included). The
    // consumer's own 10 entries never go on the air (it answers its own
    // query locally), so the relay holds 30.
    assert_eq!(es[1].store().metadata_len(), 30);
}

#[test]
fn discovery_respects_filters() {
    let config = PdsConfig::default();
    let mut es = engines(2, &config);
    es[1].store_mut().insert_own(
        DataDescriptor::builder()
            .attr("type", "no2")
            .attr("seq", 1i64)
            .build(),
        None,
    );
    es[1].store_mut().insert_own(
        DataDescriptor::builder()
            .attr("type", "co2")
            .attr("seq", 2i64)
            .build(),
        None,
    );
    let adj = line(2);
    let now = t(0.0);
    let filter = QueryFilter::new(vec![Predicate::new("type", Relation::Eq, "no2")]);
    let start = es[0].start_discovery(now, filter);
    pump(
        &mut es,
        &adj,
        start.into_iter().map(|o| (0, o)).collect(),
        now,
    );
    let s = es[0].discovery().expect("session");
    assert_eq!(s.collected.len(), 1, "only the no2 entry matches");
}

#[test]
fn duplicate_query_copies_are_discarded() {
    let config = PdsConfig::default();
    let mut es = engines(2, &config);
    es[1].store_mut().insert_own(entry(1), None);
    let now = t(0.0);
    let start = es[0].start_discovery(now, QueryFilter::match_all());
    let PdsMessage::Query(q) = start[0].message.clone() else {
        panic!()
    };
    let first = es[1].handle_message(now, NodeId(0), true, PdsMessage::Query(q.clone()));
    assert!(!first.is_empty(), "first copy answered");
    let second = es[1].handle_message(now, NodeId(0), true, PdsMessage::Query(q));
    assert!(second.is_empty(), "redundant copy discarded (LQT lookup)");
}

#[test]
fn duplicate_response_copies_are_discarded() {
    let config = PdsConfig::default();
    let mut es = engines(2, &config);
    let now = t(0.0);
    // A lingering query so the response would otherwise be relayed.
    let start = es[0].start_discovery(now, QueryFilter::match_all());
    let PdsMessage::Query(q) = start[0].message.clone() else {
        panic!()
    };
    es[1].handle_message(now, NodeId(0), true, PdsMessage::Query(q));
    let r = ResponseMessage {
        id: crate::ids::ResponseId(77),
        sender: NodeId(9),
        kind: ResponseKind::Metadata {
            entries: vec![entry(1)],
        },
    };
    let first = es[1].handle_message(now, NodeId(9), true, PdsMessage::Response(r.clone()));
    assert!(!first.is_empty(), "first copy relayed");
    let second = es[1].handle_message(now, NodeId(9), true, PdsMessage::Response(r));
    assert!(second.is_empty(), "redundant copy discarded (RR lookup)");
}

#[test]
fn lingering_query_routes_multiple_responses() {
    // Relay node 1 holds a lingering query from node 0; two providers
    // return responses at different times — both are relayed (unlike a
    // one-shot Interest).
    let config = PdsConfig::default();
    let mut es = engines(2, &config);
    let now = t(0.0);
    let start = es[0].start_discovery(now, QueryFilter::match_all());
    let PdsMessage::Query(q) = start[0].message.clone() else {
        panic!()
    };
    es[1].handle_message(now, NodeId(0), true, PdsMessage::Query(q));
    for (rid, seq) in [(1u64, 1u32), (2, 2)] {
        let r = ResponseMessage {
            id: crate::ids::ResponseId(rid),
            sender: NodeId(8),
            kind: ResponseKind::Metadata {
                entries: vec![entry(seq)],
            },
        };
        let out = es[1].handle_message(now, NodeId(8), true, PdsMessage::Response(r));
        let relayed = out
            .iter()
            .filter(|o| matches!(o.message, PdsMessage::Response(_)))
            .count();
        assert_eq!(relayed, 1, "response {rid} relayed by lingering query");
        assert_eq!(out[0].intended, vec![NodeId(0)]);
    }
}

#[test]
fn one_shot_ablation_consumes_query() {
    let config = PdsConfig {
        one_shot_queries: true,
        ..PdsConfig::default()
    };
    let mut es = engines(2, &config);
    let now = t(0.0);
    let start = es[0].start_discovery(now, QueryFilter::match_all());
    let PdsMessage::Query(q) = start[0].message.clone() else {
        panic!()
    };
    es[1].handle_message(now, NodeId(0), true, PdsMessage::Query(q));
    let r1 = ResponseMessage {
        id: crate::ids::ResponseId(1),
        sender: NodeId(8),
        kind: ResponseKind::Metadata {
            entries: vec![entry(1)],
        },
    };
    let out1 = es[1].handle_message(now, NodeId(8), true, PdsMessage::Response(r1));
    assert!(!out1.is_empty(), "first response relayed");
    let r2 = ResponseMessage {
        id: crate::ids::ResponseId(2),
        sender: NodeId(8),
        kind: ResponseKind::Metadata {
            entries: vec![entry(2)],
        },
    };
    let out2 = es[1].handle_message(now, NodeId(8), true, PdsMessage::Response(r2));
    assert!(out2.is_empty(), "one-shot query already consumed");
}

#[test]
fn mixedcast_joins_overlapping_consumers() {
    // Node 2 holds lingering queries from consumers 0 and 1; one response
    // with entries for both is relayed as a single joint message.
    let config = PdsConfig::default();
    let mut es = engines(3, &config);
    let now = t(0.0);
    for consumer in [0usize, 1] {
        let start = es[consumer].start_discovery(now, QueryFilter::match_all());
        let PdsMessage::Query(q) = start[0].message.clone() else {
            panic!()
        };
        es[2].handle_message(now, NodeId(consumer as u32), true, PdsMessage::Query(q));
    }
    let r = ResponseMessage {
        id: crate::ids::ResponseId(5),
        sender: NodeId(9),
        kind: ResponseKind::Metadata {
            entries: vec![entry(1), entry(2)],
        },
    };
    let out = es[2].handle_message(now, NodeId(9), true, PdsMessage::Response(r));
    let responses: Vec<_> = out
        .iter()
        .filter(|o| matches!(o.message, PdsMessage::Response(_)))
        .collect();
    assert_eq!(responses.len(), 1, "mixedcast: one joint response");
    let mut intended = responses[0].intended.clone();
    intended.sort();
    assert_eq!(intended, vec![NodeId(0), NodeId(1)]);
}

#[test]
fn mixedcast_disabled_sends_per_consumer() {
    let config = PdsConfig {
        mixedcast: false,
        ..PdsConfig::default()
    };
    let mut es = engines(3, &config);
    let now = t(0.0);
    for consumer in [0usize, 1] {
        let start = es[consumer].start_discovery(now, QueryFilter::match_all());
        let PdsMessage::Query(q) = start[0].message.clone() else {
            panic!()
        };
        es[2].handle_message(now, NodeId(consumer as u32), true, PdsMessage::Query(q));
    }
    let r = ResponseMessage {
        id: crate::ids::ResponseId(5),
        sender: NodeId(9),
        kind: ResponseKind::Metadata {
            entries: vec![entry(1)],
        },
    };
    let out = es[2].handle_message(now, NodeId(9), true, PdsMessage::Response(r));
    let responses: Vec<_> = out
        .iter()
        .filter(|o| matches!(o.message, PdsMessage::Response(_)))
        .collect();
    assert_eq!(responses.len(), 2, "one response per consumer");
}

#[test]
fn rewriting_prunes_already_seen_entries() {
    let config = PdsConfig::default();
    let mut es = engines(2, &config);
    let now = t(0.0);
    let start = es[0].start_discovery(now, QueryFilter::match_all());
    let PdsMessage::Query(q) = start[0].message.clone() else {
        panic!()
    };
    es[1].handle_message(now, NodeId(0), true, PdsMessage::Query(q));
    // First provider returns e1+e2; both relayed and recorded in the bloom.
    let r1 = ResponseMessage {
        id: crate::ids::ResponseId(1),
        sender: NodeId(8),
        kind: ResponseKind::Metadata {
            entries: vec![entry(1), entry(2)],
        },
    };
    let out1 = es[1].handle_message(now, NodeId(8), true, PdsMessage::Response(r1));
    assert_eq!(out1.len(), 1);
    // Second provider returns e2+e3; only e3 survives pruning.
    let r2 = ResponseMessage {
        id: crate::ids::ResponseId(2),
        sender: NodeId(7),
        kind: ResponseKind::Metadata {
            entries: vec![entry(2), entry(3)],
        },
    };
    let out2 = es[1].handle_message(now, NodeId(7), true, PdsMessage::Response(r2));
    assert_eq!(out2.len(), 1);
    let PdsMessage::Response(relayed) = &out2[0].message else {
        panic!()
    };
    let ResponseKind::Metadata { entries } = &relayed.kind else {
        panic!()
    };
    assert_eq!(entries.len(), 1, "duplicate entry pruned en-route");
    assert_eq!(entries[0], entry(3));
}

#[test]
fn rewriting_disabled_forwards_duplicates() {
    let config = PdsConfig {
        rewrite: false,
        ..PdsConfig::default()
    };
    let mut es = engines(2, &config);
    let now = t(0.0);
    let start = es[0].start_discovery(now, QueryFilter::match_all());
    let PdsMessage::Query(q) = start[0].message.clone() else {
        panic!()
    };
    es[1].handle_message(now, NodeId(0), true, PdsMessage::Query(q));
    for rid in [1u64, 2] {
        let r = ResponseMessage {
            id: crate::ids::ResponseId(rid),
            sender: NodeId(8),
            kind: ResponseKind::Metadata {
                entries: vec![entry(1)],
            },
        };
        let out = es[1].handle_message(now, NodeId(8), true, PdsMessage::Response(r));
        assert_eq!(out.len(), 1, "ablation: duplicate forwarded anyway");
    }
}

#[test]
fn query_bloom_rewritten_before_forwarding() {
    // Node 1 holds e1 and forwards the query; the forwarded bloom must
    // cover e1 so node 2 (also holding e1, plus e2) only returns e2.
    let config = PdsConfig::default();
    let mut es = engines(3, &config);
    es[1].store_mut().insert_own(entry(1), None);
    es[2].store_mut().insert_own(entry(1), None);
    es[2].store_mut().insert_own(entry(2), None);
    let now = t(0.0);
    let start = es[0].start_discovery(now, QueryFilter::match_all());
    let PdsMessage::Query(q) = start[0].message.clone() else {
        panic!()
    };
    let out1 = es[1].handle_message(now, NodeId(0), true, PdsMessage::Query(q));
    let forwarded = out1
        .iter()
        .find_map(|o| match &o.message {
            PdsMessage::Query(fq) => Some(fq.clone()),
            PdsMessage::Response(_) => None,
        })
        .expect("query forwarded");
    assert_eq!(forwarded.sender, NodeId(1), "sender rewritten per hop");
    assert!(forwarded.bloom.is_some(), "bloom attached by rewriting");
    let out2 = es[2].handle_message(now, NodeId(1), true, PdsMessage::Query(forwarded));
    let response = out2
        .iter()
        .find_map(|o| match &o.message {
            PdsMessage::Response(r) => Some(r.clone()),
            PdsMessage::Query(_) => None,
        })
        .expect("node 2 responds");
    let ResponseKind::Metadata { entries } = &response.kind else {
        panic!()
    };
    assert_eq!(entries.len(), 1, "e1 pruned by the rewritten query bloom");
    assert_eq!(entries[0], entry(2));
}

#[test]
fn small_data_retrieval_delivers_payloads() {
    let config = PdsConfig::default();
    let mut es = engines(3, &config);
    for k in 0..5u32 {
        let d = entry(k);
        es[2]
            .store_mut()
            .insert_own(d, Some(Bytes::from(vec![k as u8; 64])));
    }
    let adj = line(3);
    let now = t(0.0);
    let start = es[0].start_small_data_retrieval(now, QueryFilter::match_all());
    pump(
        &mut es,
        &adj,
        start.into_iter().map(|o| (0, o)).collect(),
        now,
    );
    let s = es[0].discovery().expect("session");
    assert_eq!(s.collected.len(), 5);
    // Payloads landed in the consumer's store.
    for k in 0..5u32 {
        assert!(es[0].store().small_payload(&entry(k)).is_some());
    }
    // The relay opportunistically cached payloads too.
    assert!(es[1].store().small_payload(&entry(0)).is_some());
}

// ---- PDR ------------------------------------------------------------------

/// Full PDR run on a topology; returns the consumer's report.
fn run_pdr(
    es: &mut [PdsEngine],
    adj: &[Vec<usize>],
    descriptor: DataDescriptor,
    mdr: bool,
) -> crate::sessions::RetrievalReport {
    let mut now = t(0.0);
    let start = if mdr {
        es[0].start_mdr_retrieval(now, descriptor)
    } else {
        es[0].start_retrieval(now, descriptor)
    };
    pump(es, adj, start.into_iter().map(|o| (0, o)).collect(), now);
    for _ in 0..80 {
        now += SimDuration::from_millis(400);
        let out = es[0].poll(now);
        pump(es, adj, out.into_iter().map(|o| (0, o)).collect(), now);
        if es[0].retrieval().expect("session").is_finished() {
            break;
        }
    }
    es[0].retrieval().expect("session").report()
}

fn seed_chunks(e: &mut PdsEngine, desc: &DataDescriptor, ids: &[u32]) {
    for &c in ids {
        e.store_mut()
            .insert_chunk(desc, ChunkId(c), Bytes::from(vec![c as u8; 512]));
    }
}

#[test]
fn pdr_retrieves_across_multiple_hops() {
    let config = PdsConfig::default();
    let mut es = engines(3, &config);
    let desc = video("vid", 4);
    seed_chunks(&mut es[2], &desc, &[0, 1, 2, 3]);
    let adj = line(3);
    let report = run_pdr(&mut es, &adj, desc.clone(), false);
    assert!(
        (report.recall - 1.0).abs() < 1e-9,
        "recall = {}",
        report.recall
    );
    assert_eq!(report.received_chunks, 4);
    // Opportunistic caching: the relay holds the chunks now.
    assert_eq!(es[1].store().chunk_ids(&ItemName::new("vid")).len(), 4);
    assert_eq!(es[0].store().chunk_ids(&ItemName::new("vid")).len(), 4);
}

#[test]
fn pdr_cdi_learns_distances() {
    let config = PdsConfig::default();
    let mut es = engines(3, &config);
    let desc = video("vid", 2);
    seed_chunks(&mut es[2], &desc, &[0, 1]);
    let adj = line(3);
    let now = t(0.0);
    let start = es[0].start_retrieval(now, desc);
    pump(
        &mut es,
        &adj,
        start.into_iter().map(|o| (0, o)).collect(),
        now,
    );
    let item = ItemName::new("vid");
    // Node 1 sees the chunks one hop away (via node 2); node 0 two hops
    // (via node 1).
    assert_eq!(es[1].cdi().best_hops(&item, ChunkId(0), now), Some(1));
    assert_eq!(es[0].cdi().best_hops(&item, ChunkId(0), now), Some(2));
    assert_eq!(
        es[0].cdi().candidates(&item, ChunkId(0), now),
        vec![(NodeId(1), 2)]
    );
}

#[test]
fn pdr_splits_load_between_equal_providers() {
    // Consumer 0 with two neighbors (1 and 2) both holding all 6 chunks:
    // the wave must split the requests.
    let config = PdsConfig::default();
    let mut es = engines(3, &config);
    let desc = video("vid", 6);
    seed_chunks(&mut es[1], &desc, &[0, 1, 2, 3, 4, 5]);
    seed_chunks(&mut es[2], &desc, &[0, 1, 2, 3, 4, 5]);
    let adj = vec![vec![1, 2], vec![0], vec![0]]; // star centered at 0
    let mut now = t(0.0);
    let start = es[0].start_retrieval(now, desc);
    pump(
        &mut es,
        &adj,
        start.into_iter().map(|o| (0, o)).collect(),
        now,
    );
    now += SimDuration::from_millis(400);
    let wave = es[0].poll(now);
    let chunk_queries: Vec<_> = wave
        .iter()
        .filter_map(|o| match &o.message {
            PdsMessage::Query(q) => match &q.kind {
                QueryKind::Chunks { chunks, .. } => Some((o.intended.clone(), chunks.len())),
                _ => None,
            },
            PdsMessage::Response(_) => None,
        })
        .collect();
    assert_eq!(chunk_queries.len(), 2, "one sub-query per neighbor");
    assert_eq!(chunk_queries[0].1 + chunk_queries[1].1, 6);
    assert_eq!(chunk_queries[0].1, 3, "min-max heuristic balances 3/3");
    pump(
        &mut es,
        &adj,
        wave.into_iter().map(|o| (0, o)).collect(),
        now,
    );
    assert_eq!(
        es[0].retrieval().expect("session").received.len(),
        6,
        "all chunks arrive"
    );
}

#[test]
fn pdr_partial_copies_are_combined() {
    // Different chunks live on different providers; PDR must fetch each
    // from whoever has it.
    let config = PdsConfig::default();
    let mut es = engines(4, &config);
    let desc = video("vid", 4);
    seed_chunks(&mut es[1], &desc, &[0, 1]);
    seed_chunks(&mut es[3], &desc, &[2, 3]);
    // 0 - 1 - 2 - 3 line; chunks 2,3 are three hops away.
    let adj = line(4);
    let report = run_pdr(&mut es, &adj, desc, false);
    assert!(
        (report.recall - 1.0).abs() < 1e-9,
        "recall = {}",
        report.recall
    );
}

#[test]
fn pdr_already_cached_item_finishes_instantly() {
    let config = PdsConfig::default();
    let mut es = engines(1, &config);
    let desc = video("vid", 2);
    seed_chunks(&mut es[0], &desc, &[0, 1]);
    let out = es[0].start_retrieval(t(0.0), desc);
    assert!(out.is_empty(), "nothing to send");
    let s = es[0].retrieval().expect("session");
    assert!(s.is_finished());
    assert!((s.report().recall - 1.0).abs() < 1e-9);
}

#[test]
fn pdr_recovers_when_cdi_is_initially_empty() {
    // No provider at first; one appears before the recovery re-flood.
    let config = PdsConfig::default();
    let mut es = engines(2, &config);
    let desc = video("vid", 1);
    let adj = line(2);
    let mut now = t(0.0);
    let start = es[0].start_retrieval(now, desc.clone());
    pump(
        &mut es,
        &adj,
        start.into_iter().map(|o| (0, o)).collect(),
        now,
    );
    // Provider appears late.
    seed_chunks(&mut es[1], &desc, &[0]);
    // Poll past phase1_timeout: the consumer re-floods the CDI query.
    for _ in 0..30 {
        now += SimDuration::from_millis(500);
        let out = es[0].poll(now);
        pump(
            &mut es,
            &adj,
            out.into_iter().map(|o| (0, o)).collect(),
            now,
        );
        if es[0].retrieval().expect("session").is_finished() {
            break;
        }
    }
    let report = es[0].retrieval().expect("session").report();
    assert!(
        (report.recall - 1.0).abs() < 1e-9,
        "recall = {}",
        report.recall
    );
    assert!(
        report.recovery_attempts >= 1,
        "needed at least one recovery"
    );
}

#[test]
fn pdr_gives_up_after_recovery_budget() {
    let mut config = PdsConfig::default();
    config.pdr.max_recovery = 2;
    let mut es = engines(2, &config);
    let desc = video("vid", 1); // nobody has it
    let adj = line(2);
    let mut now = t(0.0);
    let start = es[0].start_retrieval(now, desc);
    pump(
        &mut es,
        &adj,
        start.into_iter().map(|o| (0, o)).collect(),
        now,
    );
    for _ in 0..60 {
        now += SimDuration::from_millis(500);
        let out = es[0].poll(now);
        pump(
            &mut es,
            &adj,
            out.into_iter().map(|o| (0, o)).collect(),
            now,
        );
        if es[0].retrieval().expect("session").is_finished() {
            break;
        }
    }
    let report = es[0].retrieval().expect("session").report();
    assert_eq!(report.phase, RetrievalPhase::Done);
    assert_eq!(report.received_chunks, 0, "item does not exist");
}

// ---- MDR -------------------------------------------------------------------

#[test]
fn mdr_retrieves_across_multiple_hops() {
    let config = PdsConfig::default();
    let mut es = engines(3, &config);
    let desc = video("vid", 4);
    seed_chunks(&mut es[2], &desc, &[0, 1, 2, 3]);
    let adj = line(3);
    let report = run_pdr(&mut es, &adj, desc, true);
    assert!(
        (report.recall - 1.0).abs() < 1e-9,
        "recall = {}",
        report.recall
    );
}

#[test]
fn mdr_bloom_suppresses_duplicate_providers() {
    // Two providers behind the same relay hold the same chunk; the relay
    // must forward it only once (redundancy detection, §VI-B-3).
    let config = PdsConfig::default();
    let mut es = engines(4, &config);
    let desc = video("vid", 1);
    seed_chunks(&mut es[2], &desc, &[0]);
    seed_chunks(&mut es[3], &desc, &[0]);
    // Star: 0 - 1, 1 - 2, 1 - 3 (driven manually below).
    let now = t(0.0);
    let start = es[0].start_mdr_retrieval(now, desc);
    let PdsMessage::Query(q) = start[0].message.clone() else {
        panic!()
    };
    // Relay processes the flood.
    let out1 = es[1].handle_message(now, NodeId(0), true, PdsMessage::Query(q));
    let fq = out1
        .iter()
        .find_map(|o| match &o.message {
            PdsMessage::Query(fq) => Some(fq.clone()),
            PdsMessage::Response(_) => None,
        })
        .expect("forwarded");
    // Both providers answer with the same chunk.
    let r2 = es[2].handle_message(now, NodeId(1), true, PdsMessage::Query(fq.clone()));
    let r3 = es[3].handle_message(now, NodeId(1), true, PdsMessage::Query(fq));
    let chunk_resp = |outs: &[Outgoing]| {
        outs.iter()
            .find_map(|o| match &o.message {
                PdsMessage::Response(r) => Some(r.clone()),
                PdsMessage::Query(_) => None,
            })
            .expect("provider responds")
    };
    let relay1 = es[1].handle_message(now, NodeId(2), true, PdsMessage::Response(chunk_resp(&r2)));
    assert_eq!(relay1.len(), 1, "first copy relayed to consumer");
    let relay2 = es[1].handle_message(now, NodeId(3), true, PdsMessage::Response(chunk_resp(&r3)));
    assert!(
        relay2.is_empty(),
        "second copy suppressed by the rewritten bloom"
    );
}

#[test]
fn cdi_relay_forwards_only_improvements() {
    // Relay 1 holds a lingering CDI query from consumer 0. Two CDI
    // responses arrive: the second repeats a known distance (pruned) but
    // improves another chunk (forwarded).
    let config = PdsConfig::default();
    let mut es = engines(2, &config);
    let now = t(0.0);
    let desc = video("vid", 2);
    let cdi_query = crate::message::QueryMessage {
        id: crate::ids::QueryId(500),
        kind: QueryKind::Cdi {
            descriptor: desc.clone(),
        },
        sender: NodeId(0),
        expires_at: t(30.0),
        filter: crate::predicate::QueryFilter::match_all(),
        bloom: None,
        round: 0,
        ttl_hops: 0,
    };
    es[1].handle_message(now, NodeId(0), true, PdsMessage::Query(cdi_query));
    let cdi_resp = |rid: u64, pairs: Vec<(ChunkId, u32)>| {
        PdsMessage::Response(ResponseMessage {
            id: crate::ids::ResponseId(rid),
            sender: NodeId(7),
            kind: ResponseKind::Cdi {
                item: ItemName::new("vid"),
                pairs,
            },
        })
    };
    // First: chunk 0 at distance 2 (observed as 3 via node 7).
    let out1 = es[1].handle_message(now, NodeId(7), true, cdi_resp(1, vec![(ChunkId(0), 2)]));
    let relayed1 = out1
        .iter()
        .filter(|o| matches!(o.message, PdsMessage::Response(_)))
        .count();
    assert_eq!(relayed1, 1, "first report forwarded");
    // Second: chunk 0 unchanged (pruned), chunk 1 new (forwarded).
    let out2 = es[1].handle_message(
        now,
        NodeId(7),
        true,
        cdi_resp(2, vec![(ChunkId(0), 2), (ChunkId(1), 0)]),
    );
    let pairs: Vec<_> = out2
        .iter()
        .filter_map(|o| match &o.message {
            PdsMessage::Response(r) => match &r.kind {
                ResponseKind::Cdi { pairs, .. } => Some(pairs.clone()),
                _ => None,
            },
            _ => None,
        })
        .collect();
    assert_eq!(pairs.len(), 1);
    assert_eq!(
        pairs[0],
        vec![(ChunkId(1), 1)],
        "only the improvement travels"
    );
}

#[test]
fn hop_limit_bounds_discovery_radius() {
    let config = PdsConfig {
        query_hop_limit: Some(2),
        ..PdsConfig::default()
    };
    let mut es = engines(5, &config);
    for (i, e) in es.iter_mut().enumerate() {
        e.store_mut().insert_own(entry(i as u32), None);
    }
    let adj = line(5);
    let collected = run_discovery(&mut es, &adj);
    // Consumer at node 0: hop limit 2 reaches nodes 1 and 2 only (plus its
    // own entry).
    assert_eq!(collected, 3, "entries beyond 2 hops stay undiscovered");
}

#[test]
fn unlimited_hops_reach_everything() {
    let config = PdsConfig::default();
    let mut es = engines(5, &config);
    for (i, e) in es.iter_mut().enumerate() {
        e.store_mut().insert_own(entry(i as u32), None);
    }
    let adj = line(5);
    assert_eq!(run_discovery(&mut es, &adj), 5);
}

#[test]
fn zero_forward_probability_stops_at_one_hop() {
    let config = PdsConfig {
        forward_probability: 0.0,
        ..PdsConfig::default()
    };
    let mut es = engines(4, &config);
    for (i, e) in es.iter_mut().enumerate() {
        e.store_mut().insert_own(entry(i as u32), None);
    }
    let adj = line(4);
    let collected = run_discovery(&mut es, &adj);
    assert_eq!(
        collected, 2,
        "with p=0 only direct neighbors answer (own + node 1)"
    );
}

#[test]
fn bounded_cache_still_completes_retrieval() {
    // Relays can only cache one chunk at a time; the transfer must still
    // complete (caching is an optimization, not a correctness requirement).
    let config = PdsConfig {
        chunk_cache: crate::store::ChunkCacheConfig {
            capacity_bytes: Some(600),
            policy: crate::store::EvictionPolicy::Lru,
        },
        ..PdsConfig::default()
    };
    let mut es = engines(3, &config);
    let desc = video("vid", 4);
    seed_chunks(&mut es[2], &desc, &[0, 1, 2, 3]);
    let adj = line(3);
    let report = run_pdr(&mut es, &adj, desc, false);
    assert!(
        (report.recall - 1.0).abs() < 1e-9,
        "recall = {}",
        report.recall
    );
    // The relay's cache stayed within budget.
    assert!(es[1].store().cached_chunk_bytes() <= 600);
    assert!(
        es[1].store().chunk_ids(&ItemName::new("vid")).len() < 4,
        "bounded cache cannot hold the whole item"
    );
}

#[test]
fn pending_chunk_marks_are_garbage_collected() {
    let config = PdsConfig::default();
    let mut es = engines(3, &config);
    let desc = video("vid", 2);
    seed_chunks(&mut es[2], &desc, &[0, 1]);
    let adj = line(3);
    let now = t(0.0);
    let start = es[0].start_retrieval(now, desc);
    pump(
        &mut es,
        &adj,
        start.into_iter().map(|o| (0, o)).collect(),
        now,
    );
    // Trigger the wave so node 1 divides and marks chunks pending.
    let wave = es[0].poll(t(0.4));
    pump(
        &mut es,
        &adj,
        wave.into_iter().map(|o| (0, o)).collect(),
        t(0.4),
    );
    // Whatever pending marks remain anywhere, gc at a late time clears them.
    for e in &mut es {
        e.gc(t(1_000.0));
        assert!(e.pending_chunk.is_empty(), "pending marks must expire");
    }
}

#[test]
fn small_data_one_shot_ablation_consumes_query() {
    let config = PdsConfig {
        one_shot_queries: true,
        ..PdsConfig::default()
    };
    let mut es = engines(2, &config);
    let now = t(0.0);
    let start = es[0].start_small_data_retrieval(now, QueryFilter::match_all());
    let PdsMessage::Query(q) = start[0].message.clone() else {
        panic!()
    };
    es[1].handle_message(now, NodeId(0), true, PdsMessage::Query(q));
    let resp = |rid: u64, seq: u32| {
        PdsMessage::Response(ResponseMessage {
            id: crate::ids::ResponseId(rid),
            sender: NodeId(8),
            kind: ResponseKind::SmallData {
                items: vec![(entry(seq), Bytes::from_static(b"v"))],
            },
        })
    };
    let out1 = es[1].handle_message(now, NodeId(8), true, resp(1, 1));
    assert!(!out1.is_empty(), "first small-data response relayed");
    let out2 = es[1].handle_message(now, NodeId(8), true, resp(2, 2));
    assert!(out2.is_empty(), "one-shot small-data query consumed");
}

#[test]
fn forward_probability_is_respected_statistically() {
    // With p = 0.5, a relay's decision to forward the flood should be a
    // coin flip: over many fresh queries, forwards land near half.
    let config = PdsConfig {
        forward_probability: 0.5,
        ..PdsConfig::default()
    };
    let mut relay = PdsEngine::new(NodeId(1), config, 7);
    let mut forwards = 0;
    let trials = 200;
    for i in 0..trials {
        let q = crate::message::QueryMessage {
            id: crate::ids::QueryId(10_000 + i),
            kind: QueryKind::Metadata,
            sender: NodeId(0),
            expires_at: t(30.0),
            filter: QueryFilter::match_all(),
            bloom: None,
            round: 0,
            ttl_hops: 0,
        };
        let out = relay.handle_message(t(0.0), NodeId(0), true, PdsMessage::Query(q));
        if out
            .iter()
            .any(|o| matches!(o.message, PdsMessage::Query(_)))
        {
            forwards += 1;
        }
    }
    assert!(
        (60..=140).contains(&forwards),
        "p=0.5 should forward about half: {forwards}/{trials}"
    );
}

#[test]
fn gc_reclaims_protocol_state() {
    let config = PdsConfig::default();
    let mut es = engines(2, &config);
    let now = t(0.0);
    let start = es[0].start_discovery(now, QueryFilter::match_all());
    let PdsMessage::Query(q) = start[0].message.clone() else {
        panic!()
    };
    es[1].handle_message(now, NodeId(0), true, PdsMessage::Query(q));
    es[1].store_mut().cache_metadata(entry(1), t(5.0));
    assert_eq!(es[1].lqt().len(), 1);
    assert_eq!(es[1].store().metadata_len(), 1);
    let late = t(1_000.0);
    es[1].gc(late);
    assert_eq!(es[1].lqt().len(), 0, "lingering query expired");
    assert_eq!(es[1].store().metadata_len(), 0, "cached entry expired");
}
