//! Peer Data Discovery: Algorithm 1 (query processing) and Algorithm 2
//! (response processing) with mixedcast and en-route rewriting (§III), plus
//! the small-data retrieval flow that shares them (§IV).

use super::{Outgoing, PdsEngine};
use crate::descriptor::DataDescriptor;
use crate::lqt::Lingering;
use crate::message::{QueryKind, QueryMessage, ResponseKind, ResponseMessage};
use crate::predicate::QueryFilter;
use crate::rounds::{RoundController, RoundDecision};
use crate::sessions::DiscoverySession;
use crate::{NodeId, SimTime};
use bytes::Bytes;
use pds_bloom::{BloomFilter, BloomParams};
use pds_det::DetMap;
use std::collections::BTreeSet;

impl PdsEngine {
    // ---- consumer API -----------------------------------------------------

    /// Starts a metadata discovery scoped by `filter` (PDD). Returns the
    /// first flooded query. Progress is driven by [`PdsEngine::poll`];
    /// results accumulate in [`PdsEngine::discovery`].
    pub fn start_discovery(&mut self, now: SimTime, filter: QueryFilter) -> Vec<Outgoing> {
        self.start_discovery_inner(now, filter, false)
    }

    /// Starts a small-data retrieval: like discovery, but responses carry
    /// payloads, which land in the data store (§IV: "the latter follows
    /// almost the same process as metadata discovery").
    pub fn start_small_data_retrieval(
        &mut self,
        now: SimTime,
        filter: QueryFilter,
    ) -> Vec<Outgoing> {
        self.start_discovery_inner(now, filter, true)
    }

    fn start_discovery_inner(
        &mut self,
        now: SimTime,
        filter: QueryFilter,
        small_data: bool,
    ) -> Vec<Outgoing> {
        let id = self.new_query_id();
        // The consumer's own matching entries are known from the start.
        let collected: DetMap<_, _> = self
            .store
            .match_metadata(&filter, now)
            .into_iter()
            .map(|d| (d.entry_key(), d.clone()))
            .collect();
        let session = DiscoverySession {
            filter: filter.clone(),
            small_data,
            collected,
            controller: RoundController::new(self.config.rounds, now),
            started_at: now,
            last_new_at: now,
            finished_at: None,
            current_query: id,
            rounds_sent: 1,
            round_log: vec![(now, 1)],
        };
        self.discovery = Some(session);
        let query = QueryMessage {
            id,
            kind: if small_data {
                QueryKind::SmallData
            } else {
                QueryKind::Metadata
            },
            sender: self.id,
            expires_at: now + self.config.query_lifetime,
            filter,
            bloom: None,
            round: 0,
            ttl_hops: self.config.query_hop_limit.unwrap_or(0),
        };
        self.register_own_query(&query);
        vec![Outgoing::query(query, Vec::new()).for_session()]
    }

    /// Round control (§III-B-2): decides whether the round diminished and
    /// whether to start another, and builds the next round's query with a
    /// Bloom filter of everything collected (fresh hash family per round,
    /// §V-3).
    pub(crate) fn poll_discovery(&mut self, now: SimTime) -> Vec<Outgoing> {
        let Some(session) = &mut self.discovery else {
            return Vec::new();
        };
        if session.is_finished() {
            return Vec::new();
        }
        match session.controller.poll(now) {
            RoundDecision::Continue => Vec::new(),
            RoundDecision::Finished => {
                session.finished_at = Some(now);
                Vec::new()
            }
            RoundDecision::StartNextRound => {
                session.controller.start_next_round(now);
                session.rounds_sent += 1;
                session.round_log.push((now, session.rounds_sent));
                let round = session.controller.round();
                let params = BloomParams::optimal(
                    session.collected.len().max(2048) * 2,
                    self.config.bloom_fpp,
                );
                let mut bloom = BloomFilter::with_round(params, round);
                for key in session.collected.keys() {
                    bloom.insert(key.as_bytes());
                }
                let filter = session.filter.clone();
                let small_data = session.small_data;
                let id = self.new_query_id();
                if let Some(s) = &mut self.discovery {
                    s.current_query = id;
                }
                let query = QueryMessage {
                    id,
                    kind: if small_data {
                        QueryKind::SmallData
                    } else {
                        QueryKind::Metadata
                    },
                    sender: self.id,
                    expires_at: now + self.config.query_lifetime,
                    filter,
                    bloom: Some(bloom.encode()),
                    round,
                    ttl_hops: self.config.query_hop_limit.unwrap_or(0),
                };
                self.register_own_query(&query);
                vec![Outgoing::query(query, Vec::new()).for_session()]
            }
        }
    }

    // ---- Algorithm 1: query processing -------------------------------------

    /// Handles a metadata / small-data query: LQT insert, DS lookup (respond
    /// with matching entries not covered by the query's Bloom filter,
    /// rewriting it), receiver check, forwarding (§III-A-1).
    pub(crate) fn handle_discovery_query(
        &mut self,
        now: SimTime,
        _from: NodeId,
        me_intended: bool,
        q: QueryMessage,
    ) -> Vec<Outgoing> {
        let small_data = matches!(q.kind, QueryKind::SmallData);
        self.lqt.insert(q.clone(), q.sender);
        let mut out = Vec::new();

        // DS lookup: respond with matching local entries, pruned by the
        // query's Bloom filter; rewrite the query (and our lingering copy)
        // with what we send so downstream nodes do not repeat it.
        let rewrite = self.config.rewrite;
        let matching: Vec<DataDescriptor> = self
            .store
            .match_metadata(&q.filter, now)
            .into_iter()
            .cloned()
            .collect();
        let mut sent_entries = Vec::new();
        let mut sent_items: Vec<(DataDescriptor, Bytes)> = Vec::new();
        if let Some(lingering) = self.lqt.get_mut(q.id) {
            for entry in matching {
                let key = entry.entry_key();
                if rewrite && lingering.bloom_contains(key.as_bytes()) {
                    continue;
                }
                if small_data {
                    // Only items whose payload we hold can be served.
                    let Some(payload) = self.store.small_payload(&entry) else {
                        continue;
                    };
                    if rewrite {
                        lingering.bloom_insert(key.as_bytes());
                    }
                    sent_items.push((entry, payload));
                } else {
                    if rewrite {
                        lingering.bloom_insert(key.as_bytes());
                    }
                    sent_entries.push(entry);
                }
            }
        }
        if !sent_entries.is_empty() {
            let r = ResponseMessage {
                id: self.new_response_id(),
                sender: self.id,
                kind: ResponseKind::Metadata {
                    entries: sent_entries,
                },
            };
            out.push(Outgoing::response(r, vec![q.sender], true).answering(q.id));
        }
        if !sent_items.is_empty() {
            let r = ResponseMessage {
                id: self.new_response_id(),
                sender: self.id,
                kind: ResponseKind::SmallData { items: sent_items },
            };
            out.push(Outgoing::response(r, vec![q.sender], true).answering(q.id));
        }

        // Receiver check + forwarding: flooded queries are relayed by every
        // intended receiver (empty list = everyone), with the rewritten
        // Bloom filter.
        if me_intended {
            out.extend(self.forward_flood(&q));
        }
        out
    }

    // ---- Algorithm 2: response processing ----------------------------------

    pub(crate) fn handle_metadata_response(
        &mut self,
        now: SimTime,
        _from: NodeId,
        me_intended: bool,
        r: &ResponseMessage,
        entries: Vec<DataDescriptor>,
    ) -> Vec<Outgoing> {
        // DS lookup: opportunistically cache every entry (§III-A-2).
        let ttl = self.config.metadata_ttl;
        for e in &entries {
            self.store.cache_metadata(e.clone(), now + ttl);
        }
        // Consumer absorption: collect entries matching our own discovery.
        self.absorb_discovery(now, me_intended, &entries, false);

        // Receiver check: only intended receivers relay.
        if !me_intended {
            return Vec::new();
        }
        self.relay_metadata(now, r, entries)
    }

    pub(crate) fn handle_small_data_response(
        &mut self,
        now: SimTime,
        _from: NodeId,
        me_intended: bool,
        r: &ResponseMessage,
        items: Vec<(DataDescriptor, Bytes)>,
    ) -> Vec<Outgoing> {
        let ttl = self.config.metadata_ttl;
        for (d, payload) in &items {
            self.store.cache_metadata(d.clone(), now + ttl);
            self.store.cache_small_payload(d, payload.clone());
        }
        let descriptors: Vec<DataDescriptor> = items.iter().map(|(d, _)| d.clone()).collect();
        self.absorb_discovery(now, me_intended, &descriptors, true);
        if !me_intended {
            return Vec::new();
        }

        // Mixedcast relay, with payloads attached.
        let me = self.id;
        let mixedcast = self.config.mixedcast;
        let rewrite = self.config.rewrite;
        let one_shot = self.config.one_shot_queries;
        let mut matching: Vec<&mut Lingering> = self
            .lqt
            .match_small_data(now)
            .into_iter()
            .filter(|l| l.upstream != me)
            .collect();
        if matching.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        if mixedcast {
            let mut receivers: BTreeSet<NodeId> = BTreeSet::new();
            let mut kept = Vec::new();
            let mut used = Vec::new();
            for (d, payload) in &items {
                let key = d.entry_key();
                let mut needed = false;
                for l in matching.iter_mut() {
                    if !l.query.filter.matches(d) {
                        continue;
                    }
                    if rewrite && l.bloom_contains(key.as_bytes()) {
                        continue;
                    }
                    needed = true;
                    receivers.insert(l.upstream);
                    used.push(l.query.id);
                    if rewrite {
                        l.bloom_insert(key.as_bytes());
                    }
                }
                if needed {
                    kept.push((d.clone(), payload.clone()));
                }
            }
            if !kept.is_empty() {
                let id = if kept.len() == items.len() {
                    r.id
                } else {
                    self.new_response_id()
                };
                out.push(Outgoing::response(
                    ResponseMessage {
                        id,
                        sender: me,
                        kind: ResponseKind::SmallData { items: kept },
                    },
                    receivers.into_iter().collect(),
                    false,
                ));
                if one_shot {
                    for qid in used {
                        self.lqt.remove(qid);
                    }
                }
            }
        } else {
            let mut responses = Vec::new();
            for l in matching.iter_mut() {
                let kept: Vec<(DataDescriptor, Bytes)> = items
                    .iter()
                    .filter(|(d, _)| l.query.filter.matches(d))
                    .filter(|(d, _)| !(rewrite && l.bloom_contains(d.entry_key().as_bytes())))
                    .cloned()
                    .collect();
                if kept.is_empty() {
                    continue;
                }
                if rewrite {
                    for (d, _) in &kept {
                        l.bloom_insert(d.entry_key().as_bytes());
                    }
                }
                responses.push((l.upstream, l.query.id, kept));
            }
            for (upstream, qid, kept) in responses {
                let id = self.new_response_id();
                out.push(
                    Outgoing::response(
                        ResponseMessage {
                            id,
                            sender: me,
                            kind: ResponseKind::SmallData { items: kept },
                        },
                        vec![upstream],
                        false,
                    )
                    .answering(qid),
                );
                if one_shot {
                    self.lqt.remove(qid);
                }
            }
        }
        out
    }

    /// The mixedcast relay for metadata entries: one joint response carries
    /// the union of entries needed by any downstream consumer, each entry
    /// transmitted once; lingering-query Bloom filters are rewritten with
    /// what was sent (§III-B-1, §III-B-2).
    fn relay_metadata(
        &mut self,
        now: SimTime,
        r: &ResponseMessage,
        entries: Vec<DataDescriptor>,
    ) -> Vec<Outgoing> {
        let me = self.id;
        let mixedcast = self.config.mixedcast;
        let rewrite = self.config.rewrite;
        let one_shot = self.config.one_shot_queries;
        let mut matching: Vec<&mut Lingering> = self
            .lqt
            .match_metadata(now)
            .into_iter()
            .filter(|l| l.upstream != me)
            .collect();
        if matching.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        if mixedcast {
            let mut receivers: BTreeSet<NodeId> = BTreeSet::new();
            let mut kept = Vec::new();
            let mut used = Vec::new();
            for entry in &entries {
                let key = entry.entry_key();
                let mut needed = false;
                for l in matching.iter_mut() {
                    if !l.query.filter.matches(entry) {
                        continue;
                    }
                    if rewrite && l.bloom_contains(key.as_bytes()) {
                        continue;
                    }
                    needed = true;
                    receivers.insert(l.upstream);
                    used.push(l.query.id);
                    if rewrite {
                        l.bloom_insert(key.as_bytes());
                    }
                }
                if needed {
                    kept.push(entry.clone());
                }
            }
            if !kept.is_empty() {
                // Same response id when the payload is unchanged (so
                // duplicate copies of the same relay dedup downstream);
                // fresh id when pruning rewrote the content.
                let id = if kept.len() == entries.len() {
                    r.id
                } else {
                    self.new_response_id()
                };
                out.push(Outgoing::response(
                    ResponseMessage {
                        id,
                        sender: me,
                        kind: ResponseKind::Metadata { entries: kept },
                    },
                    receivers.into_iter().collect(),
                    false,
                ));
                if one_shot {
                    for qid in used {
                        self.lqt.remove(qid);
                    }
                }
            }
        } else {
            // Ablation: one response per matching lingering query.
            let mut responses = Vec::new();
            for l in matching.iter_mut() {
                let kept: Vec<DataDescriptor> = entries
                    .iter()
                    .filter(|e| l.query.filter.matches(e))
                    .filter(|e| !(rewrite && l.bloom_contains(e.entry_key().as_bytes())))
                    .cloned()
                    .collect();
                if kept.is_empty() {
                    continue;
                }
                if rewrite {
                    for e in &kept {
                        l.bloom_insert(e.entry_key().as_bytes());
                    }
                }
                responses.push((l.upstream, l.query.id, kept));
            }
            for (upstream, qid, kept) in responses {
                let id = self.new_response_id();
                out.push(
                    Outgoing::response(
                        ResponseMessage {
                            id,
                            sender: me,
                            kind: ResponseKind::Metadata { entries: kept },
                        },
                        vec![upstream],
                        false,
                    )
                    .answering(qid),
                );
                if one_shot {
                    self.lqt.remove(qid);
                }
            }
        }
        out
    }

    /// Feeds received entries into our own discovery session, if one is
    /// running and the kind matches.
    fn absorb_discovery(
        &mut self,
        now: SimTime,
        me_intended: bool,
        entries: &[DataDescriptor],
        small_data: bool,
    ) {
        let Some(session) = &mut self.discovery else {
            return;
        };
        if session.small_data != small_data || session.is_finished() {
            return;
        }
        let mut new_count = 0u64;
        for e in entries {
            if !session.filter.matches(e) {
                continue;
            }
            if let pds_det::MapEntry::Vacant(slot) = session.collected.entry(e.entry_key()) {
                slot.insert(e.clone());
                new_count += 1;
            }
        }
        if new_count > 0 {
            session.last_new_at = now;
        }
        // Round dynamics track the response stream addressed to us.
        if me_intended {
            session.controller.on_response(now, new_count);
        }
    }
}
