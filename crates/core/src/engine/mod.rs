//! The PDS protocol engine: a pure, radio-agnostic state machine.
//!
//! The engine owns a node's Data Store, Lingering Query Table, CDI table and
//! recent-response cache, and turns incoming messages (plus virtual time)
//! into outgoing messages. All side effects are returned as [`Outgoing`]
//! values; [`PdsNode`](crate::PdsNode) performs the actual radio I/O. This
//! split makes Algorithms 1 and 2 of the paper directly unit-testable.

mod mdr;
mod pdd;
mod pdr;
#[cfg(test)]
mod tests;

use crate::cdi::CdiTable;
use crate::config::PdsConfig;
use crate::ids::{ChunkId, ItemName, QueryId, ResponseId};
use crate::lqt::LingeringQueryTable;
use crate::message::{PdsMessage, QueryKind, QueryMessage, ResponseKind, ResponseMessage};
use crate::sessions::{DiscoverySession, RetrievalSession};
use crate::store::DataStore;
use crate::{NodeId, SimRng, SimTime};
use pds_det::DetMap;
use pds_obs::Phase;

/// Maximum recursion depth of chunk-query division (guards against
/// transient CDI routing loops; carried in the query's `round` field).
pub(crate) const MAX_CHUNK_QUERY_DEPTH: u32 = 16;
/// How long received response ids are remembered for redundant-copy
/// detection.
const RECENT_RESPONSE_HORIZON_SECS: u64 = 60;
/// How long an outstanding sub-query suppresses re-division of the same
/// chunk. Long enough to absorb the duplicate-query burst of one wave,
/// short enough that recovery re-requests pass.
const PENDING_CHUNK_HORIZON: crate::SimDuration = crate::SimDuration::from_secs(8);

/// How much random delay to apply before transmitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Jitter {
    /// Send immediately (directed queries, path relays).
    None,
    /// Short jitter (the configured response jitter): spreads simultaneous
    /// small responders after a flood.
    Fast,
    /// Long jitter (~100× response jitter): spreads simultaneous *chunk*
    /// responders — when a flooded MDR query makes every holder serve
    /// 256 KB messages at once, staggering lets en-route Bloom rewriting
    /// suppress later duplicates instead of jamming the medium.
    Slow,
}

/// A message the engine wants transmitted.
#[derive(Debug, Clone)]
pub struct Outgoing {
    /// The message.
    pub message: PdsMessage,
    /// Intended next-hop receivers; empty = all neighbors (flood,
    /// unreliable).
    pub intended: Vec<NodeId>,
    /// Randomized send delay class.
    pub jitter: Jitter,
    /// How many times the node re-submits this message if the per-hop
    /// transport reports delivery failure (the data still exists locally —
    /// a relay that failed to push a cached chunk upstream just tries
    /// again).
    pub retries_left: u8,
    /// Protocol phase this message belongs to (PDD / PDR / MDR); drives the
    /// frame traffic class for per-phase overhead accounting and trace
    /// attribution.
    pub phase: Phase,
    /// True when the message originates from this node's *own* consumer
    /// session (discovery or retrieval) rather than a relay / flood
    /// forward. Drives the session correlation id in `QuerySent` traces;
    /// no protocol behavior depends on it.
    pub own_session: bool,
    /// Raw id of the query this response answers (0 = not a direct answer,
    /// e.g. a batched relay serving several lingering queries). Drives
    /// `ResponseSent` trace correlation; no protocol behavior depends on
    /// it.
    pub answers: u64,
}

/// The protocol phase a message's overhead is attributed to, derived from
/// its wire kind. MDR chunk *responses* travel as ordinary `Chunk`
/// responses and are classified where they originate (see
/// [`Outgoing::response_slow`]); relay hops re-derive from the wire kind,
/// so relayed MDR chunk data counts as PDR — a documented approximation
/// (DESIGN.md §9).
pub(crate) fn phase_of(message: &PdsMessage) -> Phase {
    match message {
        PdsMessage::Query(q) => match q.kind {
            QueryKind::Metadata | QueryKind::SmallData => Phase::Pdd,
            QueryKind::Cdi { .. } | QueryKind::Chunks { .. } => Phase::Pdr,
            QueryKind::MdrChunks { .. } => Phase::Mdr,
        },
        PdsMessage::Response(r) => match r.kind {
            ResponseKind::Metadata { .. } | ResponseKind::SmallData { .. } => Phase::Pdd,
            ResponseKind::Cdi { .. } | ResponseKind::Chunk { .. } => Phase::Pdr,
        },
    }
}

impl Outgoing {
    pub(crate) fn query(q: QueryMessage, intended: Vec<NodeId>) -> Self {
        let message = PdsMessage::Query(q);
        let phase = phase_of(&message);
        Self {
            message,
            intended,
            jitter: Jitter::None,
            retries_left: 2,
            phase,
            own_session: false,
            answers: 0,
        }
    }

    pub(crate) fn response(r: ResponseMessage, intended: Vec<NodeId>, jitter: bool) -> Self {
        let message = PdsMessage::Response(r);
        let phase = phase_of(&message);
        Self {
            message,
            intended,
            jitter: if jitter { Jitter::Fast } else { Jitter::None },
            retries_left: 2,
            phase,
            own_session: false,
            answers: 0,
        }
    }

    /// Slow-jittered chunk response — only the MDR baseline uses this
    /// (staggering flooded chunk responders), so the phase is MDR even
    /// though the wire kind is a plain `Chunk` response.
    pub(crate) fn response_slow(r: ResponseMessage, intended: Vec<NodeId>) -> Self {
        Self {
            message: PdsMessage::Response(r),
            intended,
            jitter: Jitter::Slow,
            retries_left: 2,
            phase: Phase::Mdr,
            own_session: false,
            answers: 0,
        }
    }

    /// Marks the message as originated by this node's own consumer session
    /// (see [`Outgoing::own_session`]).
    pub(crate) fn for_session(mut self) -> Self {
        self.own_session = true;
        self
    }

    /// Records the query this response directly answers (see
    /// [`Outgoing::answers`]).
    pub(crate) fn answering(mut self, q: QueryId) -> Self {
        self.answers = q.0;
        self
    }
}

/// The per-node PDS protocol state machine.
///
/// See the [crate documentation](crate) for the protocol overview. Typical
/// embedding: feed [`PdsEngine::handle_message`] every received message,
/// call [`PdsEngine::poll`] periodically (round control, phase transitions,
/// recovery), and [`PdsEngine::gc`] occasionally; transmit every returned
/// [`Outgoing`].
#[derive(Debug)]
pub struct PdsEngine {
    pub(crate) id: NodeId,
    pub(crate) config: PdsConfig,
    pub(crate) store: DataStore,
    pub(crate) lqt: LingeringQueryTable,
    pub(crate) cdi: CdiTable,
    recent_responses: DetMap<ResponseId, SimTime>,
    /// Chunks this node has an outstanding sub-query for (value = that
    /// query's expiry). Prevents every new upstream from spawning another
    /// sub-query tree for the same chunk — without it the recursive
    /// division builds looping query subgraphs and each arriving chunk is
    /// relayed to dozens of upstreams.
    pub(crate) pending_chunk: DetMap<(ItemName, ChunkId), SimTime>,
    pub(crate) rng: SimRng,
    pub(crate) discovery: Option<DiscoverySession>,
    pub(crate) retrieval: Option<RetrievalSession>,
}

impl PdsEngine {
    /// Creates an engine for node `id`. `seed` drives query/response id
    /// generation (ids must be globally unique, so give each node a
    /// distinct seed).
    #[must_use]
    pub fn new(id: NodeId, config: PdsConfig, seed: u64) -> Self {
        let mut store = DataStore::new();
        store.set_chunk_cache(config.chunk_cache);
        let lqt_budget = config.lqt_byte_budget;
        Self {
            id,
            config,
            store,
            lqt: LingeringQueryTable::with_budget(lqt_budget),
            cdi: CdiTable::new(),
            recent_responses: DetMap::default(),
            pending_chunk: DetMap::default(),
            rng: SimRng::new(seed ^ 0x7064_735f_656e_6769),
            discovery: None,
            retrieval: None,
        }
    }

    /// This node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The protocol configuration.
    #[must_use]
    pub fn config(&self) -> &PdsConfig {
        &self.config
    }

    /// The node's data store (read access).
    #[must_use]
    pub fn store(&self) -> &DataStore {
        &self.store
    }

    /// The node's data store (write access, e.g. to seed locally produced
    /// data).
    pub fn store_mut(&mut self) -> &mut DataStore {
        &mut self.store
    }

    /// The node's CDI table.
    #[must_use]
    pub fn cdi(&self) -> &CdiTable {
        &self.cdi
    }

    /// The node's lingering query table.
    #[must_use]
    pub fn lqt(&self) -> &LingeringQueryTable {
        &self.lqt
    }

    /// The running or finished discovery session, if any.
    #[must_use]
    pub fn discovery(&self) -> Option<&DiscoverySession> {
        self.discovery.as_ref()
    }

    /// The running or finished retrieval session, if any.
    #[must_use]
    pub fn retrieval(&self) -> Option<&RetrievalSession> {
        self.retrieval.as_ref()
    }

    /// Processes one received message. `from` is the transmitting neighbor;
    /// `me_intended` is whether this node was in the transport's intended
    /// receiver list (or the list was empty). Returns messages to transmit.
    pub fn handle_message(
        &mut self,
        now: SimTime,
        from: NodeId,
        me_intended: bool,
        message: PdsMessage,
    ) -> Vec<Outgoing> {
        match message {
            PdsMessage::Query(q) => self.handle_query(now, from, me_intended, q),
            PdsMessage::Response(r) => self.handle_response(now, from, me_intended, r),
        }
    }

    /// Periodic driver: round control for discovery, phase transitions and
    /// recovery for retrieval. Call at the configured poll cadence.
    pub fn poll(&mut self, now: SimTime) -> Vec<Outgoing> {
        let mut out = self.poll_discovery(now);
        out.extend(self.poll_retrieval(now));
        out
    }

    /// Garbage collection: expired metadata, lingering queries, CDI routes
    /// and stale response-dedup state.
    pub fn gc(&mut self, now: SimTime) {
        self.store.gc(now);
        self.lqt.gc(now);
        self.cdi.gc(now);
        let horizon = RECENT_RESPONSE_HORIZON_SECS * 1_000_000;
        self.recent_responses
            .retain(|_, &mut t| now.as_micros().saturating_sub(t.as_micros()) < horizon);
        self.pending_chunk.retain(|_, &mut t| t > now);
    }

    // ---- shared plumbing --------------------------------------------------

    fn handle_query(
        &mut self,
        now: SimTime,
        from: NodeId,
        me_intended: bool,
        q: QueryMessage,
    ) -> Vec<Outgoing> {
        // LQT lookup (Algorithm 1): redundant copies are discarded.
        if self.lqt.seen(q.id) {
            return Vec::new();
        }
        if q.expires_at <= now {
            return Vec::new();
        }
        match q.kind.clone() {
            QueryKind::Metadata | QueryKind::SmallData => {
                self.handle_discovery_query(now, from, me_intended, q)
            }
            QueryKind::Cdi { descriptor } => {
                self.handle_cdi_query(now, from, me_intended, q, &descriptor)
            }
            QueryKind::Chunks { item, chunks } => {
                self.handle_chunk_query(now, from, me_intended, q, &item, &chunks)
            }
            QueryKind::MdrChunks { item, total_chunks } => {
                self.handle_mdr_query(now, from, me_intended, q, &item, total_chunks)
            }
        }
    }

    fn handle_response(
        &mut self,
        now: SimTime,
        from: NodeId,
        me_intended: bool,
        r: ResponseMessage,
    ) -> Vec<Outgoing> {
        // RR lookup (Algorithm 2): redundant copies are discarded.
        if self.recent_responses.contains_key(&r.id) {
            return Vec::new();
        }
        self.recent_responses.insert(r.id, now);
        match r.kind.clone() {
            ResponseKind::Metadata { entries } => {
                self.handle_metadata_response(now, from, me_intended, &r, entries)
            }
            ResponseKind::SmallData { items } => {
                self.handle_small_data_response(now, from, me_intended, &r, items)
            }
            ResponseKind::Cdi { item, pairs } => {
                self.handle_cdi_response(now, from, me_intended, &r, &item, &pairs)
            }
            ResponseKind::Chunk {
                descriptor,
                chunk,
                data,
            } => self.handle_chunk_response(now, from, me_intended, &r, &descriptor, chunk, data),
        }
    }

    pub(crate) fn new_query_id(&mut self) -> QueryId {
        QueryId(self.rng.next_u64())
    }

    pub(crate) fn new_response_id(&mut self) -> ResponseId {
        ResponseId(self.rng.next_u64())
    }

    /// Clears the outstanding-sub-query marks for `chunks` (the transport
    /// reported the sub-query undeliverable, so nothing is in flight and
    /// re-division must not be suppressed).
    pub fn clear_pending_chunks(&mut self, item: &ItemName, chunks: &[ChunkId]) {
        for c in chunks {
            self.pending_chunk.remove(&(item.clone(), *c));
        }
    }

    /// Registers the consumer's own flooded query in its LQT (upstream =
    /// self) so echoed copies relayed back by neighbors are recognized and
    /// discarded. Without this, the originator would treat its own query as
    /// foreign, create a lingering entry pointing outward, and advertise
    /// routes *back toward itself* — poisoning CDI distance vectors.
    pub(crate) fn register_own_query(&mut self, q: &QueryMessage) {
        let me = self.id;
        self.lqt.insert(q.clone(), me);
    }

    /// Forwards a flooded query: sender rewritten to this node, Bloom filter
    /// refreshed from the (possibly rewritten) lingering copy (§III-B-2).
    /// Returns `None` when the query's hop budget is spent or the node's
    /// probabilistic-flooding coin says no (broadcast-storm reduction,
    /// §VII).
    pub(crate) fn forward_flood(&mut self, q: &QueryMessage) -> Option<Outgoing> {
        if q.ttl_hops == 1 {
            return None; // budget spent at this hop
        }
        if self.config.forward_probability < 1.0
            && !self.rng.chance(self.config.forward_probability)
        {
            return None;
        }
        let mut fq = q.clone();
        fq.sender = self.id;
        if fq.ttl_hops > 0 {
            fq.ttl_hops -= 1;
        }
        if self.config.rewrite {
            if let Some(l) = self.lqt.get(q.id) {
                if let Some(b) = &l.bloom {
                    fq.bloom = Some(b.encode());
                }
            }
        }
        Some(Outgoing::query(fq, Vec::new()))
    }
}
