//! End-to-end tests driving [`PdsNode`] through the simulator kernel.
//!
//! These live as an integration test (not a unit test inside `src/node.rs`)
//! because `pds-sim` is a *dev*-dependency of `pds-core`: unit tests would
//! compile a second copy of the crate whose types do not unify with the one
//! the simulator links against. Here there is a single `pds_core` lib, so
//! `PdsNode: Application` is the same trait the `World` drives.

use bytes::Bytes;
use pds_core::{ChunkId, DataDescriptor, ItemName, PdsConfig, PdsNode, QueryFilter};
use pds_sim::{NodeId, Position, SimConfig, SimTime, World};

fn entry(n: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "no2")
        .attr("seq", i64::from(n))
        .build()
}

fn video(total: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "video")
        .attr("name", "clip")
        .attr("total_chunks", i64::from(total))
        .build()
}

fn secs(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

/// 3×3 grid, 5 entries per node, consumer at the center.
fn grid_world(seed: u64) -> (World, Vec<NodeId>, NodeId) {
    use pds_mobility::grid;
    let mut world = World::new(SimConfig::default(), seed);
    let positions = grid::positions(3, 3, grid::SPACING_M);
    let mut ids = Vec::new();
    for (i, pos) in positions.iter().enumerate() {
        let mut node = PdsNode::new(PdsConfig::default(), 100 + i as u64);
        for k in 0..5u32 {
            node = node.with_metadata(entry(i as u32 * 10 + k), None);
        }
        ids.push(world.add_node(*pos, Box::new(node)));
    }
    let consumer = ids[grid::center_index(3, 3)];
    (world, ids, consumer)
}

#[test]
fn discovery_on_a_radio_grid_reaches_full_recall() {
    let (mut world, _ids, consumer) = grid_world(42);
    world.run_until(secs(0.5));
    world.with_app::<PdsNode, _>(consumer, |node, ctx| {
        node.start_discovery(ctx, QueryFilter::match_all());
    });
    world.run_until(secs(20.0));
    let node = world.app::<PdsNode>(consumer).expect("alive");
    let report = node.discovery_report().expect("session");
    assert!(report.finished_at.is_some(), "discovery terminated");
    assert_eq!(report.entries, 45, "all 9 nodes × 5 entries discovered");
    assert_eq!(node.decode_errors(), 0);
}

#[test]
fn retrieval_over_radio_fetches_all_chunks() {
    let mut world = World::new(SimConfig::default(), 7);
    let chunk = |c: u32| Bytes::from(vec![c as u8; 8 * 1024]);
    // Provider two hops from the consumer on a line.
    let provider = PdsNode::new(PdsConfig::default(), 1)
        .with_chunk(video(4), ChunkId(0), chunk(0))
        .with_chunk(video(4), ChunkId(1), chunk(1))
        .with_chunk(video(4), ChunkId(2), chunk(2))
        .with_chunk(video(4), ChunkId(3), chunk(3));
    world.add_node(Position::new(0.0, 0.0), Box::new(provider));
    world.add_node(
        Position::new(60.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 2)),
    );
    let consumer = world.add_node(
        Position::new(120.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 3)),
    );
    world.run_until(secs(0.5));
    world.with_app::<PdsNode, _>(consumer, |node, ctx| {
        node.start_retrieval(ctx, video(4));
    });
    world.run_until(secs(30.0));
    let node = world.app::<PdsNode>(consumer).expect("alive");
    let report = node.retrieval_report().expect("session");
    assert!(
        (report.recall - 1.0).abs() < 1e-9,
        "recall = {} after {:?}",
        report.recall,
        report
    );
    // The consumer's store holds the reassembled item.
    let engine = node.engine().expect("started");
    assert_eq!(engine.store().chunk_ids(&ItemName::new("clip")).len(), 4);
}

#[test]
fn mdr_over_radio_fetches_all_chunks() {
    let mut world = World::new(SimConfig::default(), 9);
    let provider = PdsNode::new(PdsConfig::default(), 1)
        .with_chunk(video(2), ChunkId(0), Bytes::from(vec![0u8; 4096]))
        .with_chunk(video(2), ChunkId(1), Bytes::from(vec![1u8; 4096]));
    world.add_node(Position::new(0.0, 0.0), Box::new(provider));
    let consumer = world.add_node(
        Position::new(60.0, 0.0),
        Box::new(PdsNode::new(PdsConfig::default(), 2)),
    );
    world.run_until(secs(0.5));
    world.with_app::<PdsNode, _>(consumer, |node, ctx| {
        node.start_mdr_retrieval(ctx, video(2));
    });
    world.run_until(secs(20.0));
    let report = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::retrieval_report)
        .expect("session");
    assert!(
        (report.recall - 1.0).abs() < 1e-9,
        "recall = {}",
        report.recall
    );
}

#[test]
fn sequential_consumer_benefits_from_caching() {
    let (mut world, ids, consumer) = grid_world(11);
    world.run_until(secs(0.5));
    world.with_app::<PdsNode, _>(consumer, |node, ctx| {
        node.start_discovery(ctx, QueryFilter::match_all());
    });
    world.run_until(secs(20.0));
    let first = world
        .app::<PdsNode>(consumer)
        .and_then(PdsNode::discovery_report)
        .expect("first session");
    assert_eq!(first.entries, 45);
    // A corner node asks next; caches make it faster.
    let second_consumer = ids[0];
    world.with_app::<PdsNode, _>(second_consumer, |node, ctx| {
        node.start_discovery(ctx, QueryFilter::match_all());
    });
    world.run_until(secs(40.0));
    let second = world
        .app::<PdsNode>(second_consumer)
        .and_then(PdsNode::discovery_report)
        .expect("second session");
    assert_eq!(second.entries, 45);
    assert!(
        second.latency <= first.latency,
        "cached entries should not be slower: {:?} vs {:?}",
        second.latency,
        first.latency
    );
}
