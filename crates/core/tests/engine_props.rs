//! Property-based protocol tests: on *any* connected topology with lossless
//! instantaneous links, discovery terminates with full recall and PDR
//! retrieves every chunk. Random trees come from Prüfer sequences, so
//! connectivity holds by construction.

use bytes::Bytes;
use pds_core::{
    AttrValue, ChunkId, DataDescriptor, Outgoing, PdsConfig, PdsEngine, PdsMessage, QueryFilter,
};
use pds_sim::{NodeId, SimDuration, SimTime};
use proptest::prelude::*;

fn t(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

/// Decodes a Prüfer sequence into a tree's adjacency lists (n ≥ 2 nodes).
fn prufer_tree(n: usize, seq: &[usize]) -> Vec<Vec<usize>> {
    assert!(n >= 2);
    assert_eq!(seq.len(), n - 2);
    let mut degree = vec![1usize; n];
    for &s in seq {
        degree[s % n] += 1;
    }
    let mut adj = vec![Vec::new(); n];
    let add = |adj: &mut Vec<Vec<usize>>, a: usize, b: usize| {
        adj[a].push(b);
        adj[b].push(a);
    };
    for &s in seq {
        let s = s % n;
        let leaf = (0..n).find(|&i| degree[i] == 1).expect("leaf exists");
        add(&mut adj, leaf, s);
        degree[leaf] -= 1;
        degree[s] -= 1;
    }
    let remaining: Vec<usize> = (0..n).filter(|&i| degree[i] == 1).collect();
    assert_eq!(remaining.len(), 2);
    add(&mut adj, remaining[0], remaining[1]);
    adj
}

/// Instantaneous lossless pump over the adjacency.
fn pump(
    engines: &mut [PdsEngine],
    adj: &[Vec<usize>],
    initial: Vec<(usize, Outgoing)>,
    now: SimTime,
) {
    let mut queue = initial;
    let mut steps = 0usize;
    while let Some((sender, out)) = queue.pop() {
        steps += 1;
        assert!(steps < 500_000, "pump did not quiesce");
        for &nbr in &adj[sender] {
            let me = NodeId(nbr as u32);
            let me_intended = out.intended.is_empty() || out.intended.contains(&me);
            let produced = engines[nbr].handle_message(
                now,
                NodeId(sender as u32),
                me_intended,
                out.message.clone(),
            );
            for p in produced {
                queue.push((nbr, p));
            }
        }
    }
}

fn entry(owner: usize, k: usize) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "s")
        .attr("o", owner as i64)
        .attr("k", AttrValue::Int(k as i64))
        .build()
}

fn video(total: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("type", "video")
        .attr("name", "clip")
        .attr("total_chunks", i64::from(total))
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Discovery on any tree topology terminates with 100 % recall and the
    /// wire codec round-trips every transmitted message.
    #[test]
    fn discovery_full_recall_on_any_tree(
        n in 2usize..10,
        seq in proptest::collection::vec(0usize..100, 8),
        per_node in 1usize..4,
        consumer_pick in 0usize..100,
    ) {
        let seq: Vec<usize> = seq.into_iter().take(n - 2).collect();
        let adj = prufer_tree(n, &seq);
        let mut engines: Vec<PdsEngine> = (0..n)
            .map(|i| PdsEngine::new(NodeId(i as u32), PdsConfig::default(), 50_000 + i as u64))
            .collect();
        for (i, e) in engines.iter_mut().enumerate() {
            for k in 0..per_node {
                e.store_mut().insert_own(entry(i, k), None);
            }
        }
        let consumer = consumer_pick % n;
        let mut now = t(0.0);
        let start = engines[consumer].start_discovery(now, QueryFilter::match_all());
        // Codec sanity: everything sent must decode to itself.
        for o in &start {
            let bytes = o.message.encode();
            prop_assert_eq!(PdsMessage::decode(&bytes).expect("decodes"), o.message.clone());
        }
        pump(&mut engines, &adj, start.into_iter().map(|o| (consumer, o)).collect(), now);
        for _ in 0..40 {
            now += SimDuration::from_millis(400);
            let out = engines[consumer].poll(now);
            pump(&mut engines, &adj, out.into_iter().map(|o| (consumer, o)).collect(), now);
            if engines[consumer].discovery().expect("session").is_finished() {
                break;
            }
        }
        let session = engines[consumer].discovery().expect("session");
        prop_assert!(session.is_finished(), "discovery must terminate");
        prop_assert_eq!(session.entries().len(), n * per_node, "full recall on a lossless tree");
    }

    /// PDR on any tree topology retrieves every chunk, wherever they sit.
    #[test]
    fn retrieval_full_recall_on_any_tree(
        n in 2usize..8,
        seq in proptest::collection::vec(0usize..100, 8),
        total in 1u32..6,
        placement_seed in any::<u64>(),
    ) {
        let seq: Vec<usize> = seq.into_iter().take(n - 2).collect();
        let adj = prufer_tree(n, &seq);
        let mut engines: Vec<PdsEngine> = (0..n)
            .map(|i| PdsEngine::new(NodeId(i as u32), PdsConfig::default(), 60_000 + i as u64))
            .collect();
        // Scatter chunks (consumer is node 0; holders are 1..n).
        let desc = video(total);
        let mut s = placement_seed;
        for c in 0..total {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let holder = if n > 1 { 1 + (s as usize % (n - 1)) } else { 0 };
            engines[holder].store_mut().insert_chunk(
                &desc,
                ChunkId(c),
                Bytes::from(vec![c as u8; 256]),
            );
        }
        let mut now = t(0.0);
        let start = engines[0].start_retrieval(now, desc);
        pump(&mut engines, &adj, start.into_iter().map(|o| (0, o)).collect(), now);
        for _ in 0..80 {
            now += SimDuration::from_millis(400);
            let out = engines[0].poll(now);
            pump(&mut engines, &adj, out.into_iter().map(|o| (0, o)).collect(), now);
            if engines[0].retrieval().expect("session").is_finished() {
                break;
            }
        }
        let report = engines[0].retrieval().expect("session").report();
        prop_assert!(
            (report.recall - 1.0).abs() < 1e-9,
            "recall {} on tree {:?} with {} chunks",
            report.recall,
            adj,
            total
        );
    }
}
