//! Digest-level proof that the sweep executor is parallelism-transparent:
//! running the same jobs at 1 worker and at 4 workers must produce the
//! same per-job replay digests and traffic stats, in the same (input)
//! order. Requires `--features replay-digest`.

#![cfg(feature = "replay-digest")]

use pds_bench::{GridScenario, SweepRunner, Workload};
use pds_sim::SimTime;

/// One small discovery run; returns the kernel's replay digest plus the
/// global traffic stats.
fn run_job(seed: u64) -> (u64, pds_sim::Stats) {
    let mut sc = GridScenario::paper_default(seed);
    sc.rows = 4;
    sc.cols = 4;
    let wl = Workload::new(sc.node_count()).with_metadata(50, 1, seed);
    let mut built = sc.build(&wl);
    let consumer = built.consumer;
    built.start_discovery(consumer);
    built.run_until_done(&[consumer], SimTime::from_secs_f64(30.0));
    (built.world.replay_digest(), built.world.stats().clone())
}

#[test]
fn parallel_sweep_matches_sequential_digests() {
    const SEEDS: [u64; 6] = [11, 22, 33, 44, 55, 66];
    let sequential = SweepRunner::new(1).run(SEEDS.len(), |i| run_job(SEEDS[i]));
    let parallel = SweepRunner::new(4).run(SEEDS.len(), |i| run_job(SEEDS[i]));
    assert_eq!(
        sequential, parallel,
        "replay digests or stats diverged between 1 and 4 workers"
    );
    // The digests also distinguish the seeds from each other — equality
    // above is not vacuous.
    let first = sequential[0].0;
    assert!(
        sequential.iter().skip(1).any(|(d, _)| *d != first),
        "different seeds should produce different digests"
    );
}
