//! Criterion wrappers over the figure experiments at reduced (quick) scale:
//! one bench per table/figure of the paper, so regressions in protocol
//! performance (not just wall-clock) show up in CI history. Each bench
//! asserts the experiment still produces non-empty tables.

use criterion::{criterion_group, criterion_main, Criterion};
use pds_bench::experiments::{self, RunConfig};
use std::hint::black_box;

fn bench_experiment(c: &mut Criterion, name: &'static str) {
    let cfg = RunConfig::quick();
    let exp = experiments::all()
        .into_iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("unknown experiment {name}"));
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function(name, |b| {
        b.iter(|| {
            let tables = (exp.run)(&cfg);
            assert!(!tables.is_empty() && tables.iter().all(|t| !t.rows.is_empty()));
            black_box(tables.len())
        });
    });
    group.finish();
}

fn fig03(c: &mut Criterion) {
    bench_experiment(c, "fig3");
}
fn leaky(c: &mut Criterion) {
    bench_experiment(c, "leaky-sweep");
}
fn ack(c: &mut Criterion) {
    bench_experiment(c, "ack-sweep");
}
fn saturation(c: &mut Criterion) {
    bench_experiment(c, "saturation");
}
fn fig04(c: &mut Criterion) {
    bench_experiment(c, "fig4");
}
fn fig05(c: &mut Criterion) {
    bench_experiment(c, "fig5");
}
fn fig06(c: &mut Criterion) {
    bench_experiment(c, "fig6");
}
fn fig07(c: &mut Criterion) {
    bench_experiment(c, "fig7");
}
fn fig08(c: &mut Criterion) {
    bench_experiment(c, "fig8");
}
fn fig09(c: &mut Criterion) {
    bench_experiment(c, "fig9");
}
fn fig11(c: &mut Criterion) {
    bench_experiment(c, "fig11");
}
fn fig12(c: &mut Criterion) {
    bench_experiment(c, "fig12");
}
fn fig13(c: &mut Criterion) {
    bench_experiment(c, "fig13");
}
fn fig15(c: &mut Criterion) {
    bench_experiment(c, "fig15");
}
fn fig16(c: &mut Criterion) {
    bench_experiment(c, "fig16");
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_secs(1));
    targets = fig03, leaky, ack, saturation, fig04, fig05, fig06, fig07, fig08, fig09,
        fig11, fig12, fig13, fig15, fig16
);
criterion_main!(benches);
