//! Ablation benches for the design choices DESIGN.md calls out: lingering
//! queries vs one-shot interests, mixedcast on/off, en-route rewriting
//! on/off, and min-max vs greedy chunk assignment. Each bench measures the
//! *message overhead* (the paper's cost metric) of a fixed scenario under
//! both settings and reports the run; the printed ratio is the ablation
//! result.

use criterion::{criterion_group, criterion_main, Criterion};
use pds_bench::scenario::{GridScenario, Workload};
use pds_core::{AssignStrategy, PdsConfig};
use pds_sim::SimTime;
use std::hint::black_box;

/// Discovery overhead (bytes) on a 5×5 grid with the given protocol config.
fn discovery_overhead(pds: PdsConfig, seed: u64) -> u64 {
    let mut sc = GridScenario::paper_default(seed);
    sc.rows = 5;
    sc.cols = 5;
    sc.pds = pds;
    let wl = Workload::new(sc.node_count()).with_metadata(800, 2, seed);
    let mut built = sc.build(&wl);
    let consumer = built.consumer;
    built.start_discovery(consumer);
    built.run_until_done(&[consumer], SimTime::from_secs_f64(60.0));
    built.world.stats().bytes_sent
}

/// Retrieval overhead (bytes) of a 2 MB item, redundancy 3.
fn retrieval_overhead(pds: PdsConfig, seed: u64) -> u64 {
    let mut sc = GridScenario::paper_default(seed);
    sc.rows = 5;
    sc.cols = 5;
    sc.pds = pds;
    let center = pds_mobility::grid::center_index(5, 5);
    let wl = Workload::new(sc.node_count()).with_chunked_item(
        "clip",
        2_000_000,
        256 * 1024,
        3,
        center,
        seed,
    );
    let mut built = sc.build(&wl);
    let consumer = built.consumer;
    built.start_retrieval(consumer);
    built.run_until_done(&[consumer], SimTime::from_secs_f64(120.0));
    built.world.stats().bytes_sent
}

fn ablation_lingering(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/lingering-queries");
    g.sample_size(10);
    g.bench_function("lingering(paper)", |b| {
        b.iter(|| black_box(discovery_overhead(PdsConfig::default(), 1)));
    });
    g.bench_function("one-shot(ndn-style)", |b| {
        let cfg = PdsConfig {
            one_shot_queries: true,
            ..PdsConfig::default()
        };
        b.iter(|| black_box(discovery_overhead(cfg.clone(), 1)));
    });
    g.finish();
}

fn ablation_mixedcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/mixedcast");
    g.sample_size(10);
    g.bench_function("mixedcast(paper)", |b| {
        b.iter(|| black_box(discovery_overhead(PdsConfig::default(), 2)));
    });
    g.bench_function("per-consumer", |b| {
        let cfg = PdsConfig {
            mixedcast: false,
            ..PdsConfig::default()
        };
        b.iter(|| black_box(discovery_overhead(cfg.clone(), 2)));
    });
    g.finish();
}

fn ablation_rewriting(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/en-route-rewriting");
    g.sample_size(10);
    g.bench_function("rewriting(paper)", |b| {
        b.iter(|| black_box(discovery_overhead(PdsConfig::default(), 3)));
    });
    g.bench_function("no-rewriting", |b| {
        let cfg = PdsConfig {
            rewrite: false,
            ..PdsConfig::default()
        };
        b.iter(|| black_box(discovery_overhead(cfg.clone(), 3)));
    });
    g.finish();
}

fn ablation_assignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/chunk-assignment");
    g.sample_size(10);
    g.bench_function("minmax(paper)", |b| {
        b.iter(|| black_box(retrieval_overhead(PdsConfig::default(), 4)));
    });
    g.bench_function("greedy", |b| {
        let cfg = PdsConfig {
            assign: AssignStrategy::Greedy,
            ..PdsConfig::default()
        };
        b.iter(|| black_box(retrieval_overhead(cfg.clone(), 4)));
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_secs(1));
    targets = ablation_lingering, ablation_mixedcast, ablation_rewriting, ablation_assignment
);
criterion_main!(benches);
