//! Micro-benchmarks of the hot data structures: Bloom filters, descriptor
//! codecs, predicate matching, the GAP heuristic and the event kernel.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pds_bloom::{BloomFilter, BloomParams};
use pds_core::{
    min_max_assign, AssignStrategy, AttrValue, ChunkId, DataDescriptor, NodeId, PdsMessage,
    Predicate, QueryFilter, Relation, ResponseId, ResponseKind, ResponseMessage,
};
use std::hint::black_box;

fn descriptor(i: usize) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("ns", "e")
        .attr("type", "no2")
        .attr("time", AttrValue::Time(1_480_000_000 + i as i64))
        .build()
}

fn bloom_benches(c: &mut Criterion) {
    let params = BloomParams::optimal(5_000, 0.01);
    c.bench_function("bloom/insert_5k", |b| {
        b.iter_batched(
            || BloomFilter::new(params),
            |mut f| {
                for i in 0..5_000u32 {
                    f.insert(&i.to_le_bytes());
                }
                f
            },
            BatchSize::SmallInput,
        );
    });
    let mut filled = BloomFilter::new(params);
    for i in 0..5_000u32 {
        filled.insert(&i.to_le_bytes());
    }
    c.bench_function("bloom/contains", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(filled.contains(&i.to_le_bytes()))
        });
    });
    c.bench_function("bloom/encode_decode", |b| {
        b.iter(|| {
            let bytes = filled.encode();
            black_box(BloomFilter::decode(&bytes).expect("roundtrip"))
        });
    });
}

fn codec_benches(c: &mut Criterion) {
    let entries: Vec<DataDescriptor> = (0..1_000).map(descriptor).collect();
    let response = PdsMessage::Response(ResponseMessage {
        id: ResponseId(1),
        sender: NodeId(0),
        kind: ResponseKind::Metadata { entries },
    });
    c.bench_function("codec/encode_1k_entries", |b| {
        b.iter(|| black_box(response.encode()));
    });
    let bytes = response.encode();
    c.bench_function("codec/decode_1k_entries", |b| {
        b.iter(|| black_box(PdsMessage::decode(&bytes).expect("decodes")));
    });
}

fn predicate_benches(c: &mut Criterion) {
    let filter = QueryFilter::new(vec![
        Predicate::new("type", Relation::Eq, "no2"),
        Predicate::range(
            "time",
            AttrValue::Time(1_480_000_000),
            AttrValue::Time(1_480_010_000),
        ),
    ]);
    let entries: Vec<DataDescriptor> = (0..1_000).map(descriptor).collect();
    c.bench_function("predicate/match_1k", |b| {
        b.iter(|| {
            let n = entries.iter().filter(|d| filter.matches(d)).count();
            black_box(n)
        });
    });
}

fn assign_benches(c: &mut Criterion) {
    // The paper's regime: |N| and |C| ~ 10 per query.
    let chunks: Vec<(ChunkId, Vec<(NodeId, u32)>)> = (0..10)
        .map(|i| {
            (
                ChunkId(i),
                (0..10).map(|n| (NodeId(n), 1 + (i + n) % 4)).collect(),
            )
        })
        .collect();
    c.bench_function("assign/minmax_10x10", |b| {
        b.iter(|| black_box(min_max_assign(&chunks, AssignStrategy::MinMax)));
    });
    // A large wave: 80 chunks, 8 neighbors (a 20 MB item).
    let big: Vec<(ChunkId, Vec<(NodeId, u32)>)> = (0..80)
        .map(|i| {
            (
                ChunkId(i),
                (0..8).map(|n| (NodeId(n), 1 + (i * 7 + n) % 5)).collect(),
            )
        })
        .collect();
    c.bench_function("assign/minmax_80x8", |b| {
        b.iter(|| black_box(min_max_assign(&big, AssignStrategy::MinMax)));
    });
}

fn kernel_benches(c: &mut Criterion) {
    use bytes::Bytes;
    use pds_sim::{Application, Context, MessageMeta, Position, SimConfig, SimTime, World};
    struct Chatter;
    impl Application for Chatter {
        fn on_start(&mut self, ctx: &mut Context) {
            ctx.set_timer(pds_sim::SimDuration::from_millis(10), 0);
        }
        fn on_message(&mut self, _: &mut Context, _: MessageMeta, _: Bytes) {}
        fn on_timer(&mut self, ctx: &mut Context, _tag: u64) {
            ctx.broadcast(Bytes::from_static(&[0u8; 200]), &[]);
            ctx.set_timer(pds_sim::SimDuration::from_millis(10), 0);
        }
    }
    c.bench_function("kernel/25_nodes_1s_chatter", |b| {
        b.iter(|| {
            let mut w = World::new(SimConfig::default(), 1);
            for i in 0..25 {
                let x = f64::from(i % 5) * 50.0;
                let y = f64::from(i / 5) * 50.0;
                w.add_node(Position::new(x, y), Box::new(Chatter));
            }
            w.run_until(SimTime::from_secs_f64(1.0));
            black_box(w.stats().frames_sent)
        });
    });
    // The spatial index under load: the same dense chatter scenario at
    // 200 nodes, grid vs brute-force query paths (identical results).
    let chatter_200 = |index: pds_sim::SpatialIndex| {
        let mut config = SimConfig::default();
        config.spatial.index = index;
        let mut w = World::new(config, 1);
        for i in 0..200 {
            let x = f64::from(i % 15) * 50.0;
            let y = f64::from(i / 15) * 50.0;
            w.add_node(Position::new(x, y), Box::new(Chatter));
        }
        w.run_until(SimTime::from_secs_f64(0.5));
        w.stats().frames_sent
    };
    c.bench_function("kernel/200_nodes_grid", |b| {
        b.iter(|| black_box(chatter_200(pds_sim::SpatialIndex::Grid)));
    });
    c.bench_function("kernel/200_nodes_brute_force", |b| {
        b.iter(|| black_box(chatter_200(pds_sim::SpatialIndex::BruteForce)));
    });
}

fn scheduler_benches(c: &mut Criterion) {
    use pds_sim::{SimRng, SimTime, TimerWheel};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // Kernel-like churn: hold ~PENDING timers in flight, and for STEPS
    // steps pop the earliest deadline and push a successor a short random
    // delay later — the steady-state pattern of MAC retries, app timers
    // and transmission ends. The same seeded offset stream drives both
    // structures so the comparison is apples-to-apples.
    const PENDING: usize = 4096;
    const STEPS: usize = 20_000;

    c.bench_function("scheduler/wheel_churn_4k", |b| {
        b.iter_batched(
            || {
                let mut wheel = TimerWheel::new();
                for i in 0..PENDING as u64 {
                    wheel.push(SimTime::from_micros(i * 7), i);
                }
                (wheel, SimRng::new(9))
            },
            |(mut wheel, mut rng)| {
                for _ in 0..STEPS {
                    let (at, id) = wheel.pop_until(SimTime::MAX).expect("queue stays full");
                    wheel.push(
                        at + pds_sim::SimDuration::from_micros(rng.range_u64(1, 2_000)),
                        id,
                    );
                }
                black_box(wheel.len())
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("scheduler/heap_churn_4k", |b| {
        b.iter_batched(
            || {
                let mut heap = BinaryHeap::new();
                for i in 0..PENDING as u64 {
                    heap.push(Reverse((i * 7, i)));
                }
                (heap, SimRng::new(9))
            },
            |(mut heap, mut rng)| {
                for _ in 0..STEPS {
                    let Reverse((at, id)) = heap.pop().expect("queue stays full");
                    heap.push(Reverse((at + rng.range_u64(1, 2_000), id)));
                }
                black_box(heap.len())
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bloom_benches, codec_benches, predicate_benches, assign_benches, kernel_benches, scheduler_benches
);
criterion_main!(benches);
