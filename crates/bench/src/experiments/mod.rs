//! One experiment per paper figure. Each returns [`Table`]s that the
//! `figures` binary prints and writes as CSV.
//!
//! Every experiment averages over the configured seeds (the paper averages
//! over 5 runs) and reports the paper's metrics: recall, latency and message
//! overhead.

mod extra;
mod mobility;
mod pdd;
mod pdr;
mod phys;

pub use extra::{ablations, energy};
pub use mobility::{fig09_10_mobility_pdd, fig12_mobility_pdr};
pub use pdd::{
    fig04_hops, fig05_rounds, fig06_amount, fig07_sequential, fig08_simultaneous, saturation,
};
pub use pdr::{fig11_item_size, fig13_14_redundancy, fig15_sequential, fig16_simultaneous};
pub use phys::{ack_sweep, fig03_single_hop, leaky_sweep};

use crate::report::Table;

/// Shared experiment configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Seeds to average over (the paper uses 5 runs).
    pub seeds: Vec<u64>,
    /// Reduced problem sizes for quick runs (criterion benches, smoke
    /// tests). Full size reproduces the paper's parameters.
    pub quick: bool,
}

impl RunConfig {
    /// The paper's configuration: 5 seeds, full sizes.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            seeds: vec![11, 22, 33, 44, 55],
            quick: false,
        }
    }

    /// Reduced sizes and a single seed, for benches and smoke tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            seeds: vec![11],
            quick: true,
        }
    }
}

/// An experiment: its CLI name and runner.
pub struct Experiment {
    /// CLI name (e.g. `fig3`).
    pub name: &'static str,
    /// What it reproduces.
    pub describes: &'static str,
    /// Runner.
    pub run: fn(&RunConfig) -> Vec<Table>,
}

/// All experiments in paper order.
#[must_use]
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "fig3",
            describes: "Fig. 3 — single-hop reception & data rate: raw UDP vs leaky bucket vs +ack",
            run: fig03_single_hop,
        },
        Experiment {
            name: "leaky-sweep",
            describes: "§V-2 (figure omitted in paper) — reception vs LeakingRate / BucketCapacity",
            run: leaky_sweep,
        },
        Experiment {
            name: "ack-sweep",
            describes: "§V-1 (figure omitted in paper) — reception vs RetrTimeout / MaxRetrTime",
            run: ack_sweep,
        },
        Experiment {
            name: "saturation",
            describes: "§VI-B — single-round PDD recall vs metadata amount and redundancy (no ack)",
            run: saturation,
        },
        Experiment {
            name: "fig4",
            describes: "Fig. 4 — single-round PDD recall vs max hop count (3×3 … 11×11 grids)",
            run: fig04_hops,
        },
        Experiment {
            name: "fig5",
            describes: "Fig. 5 — multi-round PDD recall vs window T and threshold T_d",
            run: fig05_rounds,
        },
        Experiment {
            name: "fig6",
            describes: "Fig. 6 — PDD recall/latency/overhead vs metadata amount (5k–20k)",
            run: fig06_amount,
        },
        Experiment {
            name: "fig7",
            describes: "Fig. 7 — PDD with sequential consumers (caching speeds up later ones)",
            run: fig07_sequential,
        },
        Experiment {
            name: "fig8",
            describes: "Fig. 8 — PDD with simultaneous consumers (mixedcast)",
            run: fig08_simultaneous,
        },
        Experiment {
            name: "fig9",
            describes: "Figs. 9/10 — PDD under Student Center / Classroom mobility",
            run: fig09_10_mobility_pdd,
        },
        Experiment {
            name: "fig11",
            describes: "Fig. 11 — PDR latency/overhead vs data item size (1–20 MB)",
            run: fig11_item_size,
        },
        Experiment {
            name: "fig12",
            describes: "Fig. 12 — PDR latency under Student Center mobility (20 MB)",
            run: fig12_mobility_pdr,
        },
        Experiment {
            name: "fig13",
            describes: "Figs. 13/14 — PDR vs MDR latency/overhead vs chunk redundancy (20 MB)",
            run: fig13_14_redundancy,
        },
        Experiment {
            name: "fig15",
            describes: "Fig. 15 — PDR with sequential consumers (chunk caching)",
            run: fig15_sequential,
        },
        Experiment {
            name: "fig16",
            describes: "Fig. 16 — PDR with simultaneous consumers",
            run: fig16_simultaneous,
        },
        Experiment {
            name: "ablations",
            describes: "Extension — design ablations: lingering/mixedcast/rewriting/assignment",
            run: ablations,
        },
        Experiment {
            name: "energy",
            describes: "Extension — radio energy of PDD/PDR under the default energy model",
            run: energy,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_unique_names() {
        let exps = all();
        let mut names: Vec<&str> = exps.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), exps.len());
        assert_eq!(exps.len(), 17);
    }

    #[test]
    fn run_configs_differ() {
        assert_eq!(RunConfig::paper().seeds.len(), 5);
        assert!(RunConfig::quick().quick);
    }

    /// Smoke-runs two cheap experiments end to end: every experiment goes
    /// through the same scenario/metrics plumbing, so this catches harness
    /// regressions without paying for the heavy figures.
    #[test]
    fn quick_experiments_produce_populated_tables() {
        let cfg = RunConfig::quick();
        for name in ["fig4", "fig9"] {
            let exp = all()
                .into_iter()
                .find(|e| e.name == name)
                .expect("registered");
            let tables = (exp.run)(&cfg);
            assert!(!tables.is_empty(), "{name} returned no tables");
            for t in &tables {
                assert!(!t.rows.is_empty(), "{name}: empty table {}", t.title);
                assert!(t.rows.iter().all(|r| r.len() == t.columns.len()));
            }
        }
    }
}
