//! Beyond-the-paper experiments: the design-choice ablations DESIGN.md
//! indexes, and an energy study using the radio energy model (the paper's
//! §VII names energy as the dominant cost of overhearing but defers
//! measurement to future work).

use super::RunConfig;
use crate::metrics::{average_runs, run_seeds, RunMetrics};
use crate::report::{f2, pct, Table};
use crate::scenario::{GridScenario, Workload};
use crate::sweep::run_grid;
use pds_core::{AssignStrategy, PdsConfig};
use pds_mobility::grid;
use pds_sim::{EnergyModel, SimTime};

/// One discovery run with the given protocol config and three simultaneous
/// consumers (mixedcast only has something to merge with several of them);
/// returns mean-recall/mean-latency/total-overhead.
fn discovery_with(pds: PdsConfig, entries: usize, redundancy: usize, seed: u64) -> RunMetrics {
    let mut sc = GridScenario::paper_default(seed);
    sc.pds = pds;
    let wl = Workload::new(sc.node_count()).with_metadata(entries, redundancy, seed);
    let mut built = sc.build(&wl);
    let before = built.world.stats().clone();
    let consumers: Vec<_> = built.center_pool.iter().copied().take(3).collect();
    for &c in &consumers {
        built.start_discovery(c);
    }
    built.run_until_done(&consumers, SimTime::from_secs_f64(120.0));
    let per: Vec<RunMetrics> = consumers
        .iter()
        .map(|&c| built.discovery_metrics(c, &before))
        .collect();
    let k = per.len() as f64;
    RunMetrics {
        recall: per.iter().map(|m| m.recall).sum::<f64>() / k,
        latency_s: per.iter().map(|m| m.latency_s).sum::<f64>() / k,
        overhead_mb: per[0].overhead_mb, // shared window: total traffic
        overhead_by_phase_mb: per[0].overhead_by_phase_mb,
        rounds: per.iter().map(|m| m.rounds).sum::<f64>() / k,
        finished: per.iter().all(|m| m.finished),
    }
}

/// One retrieval run with the given protocol config.
fn retrieval_with(pds: PdsConfig, size: usize, redundancy: usize, seed: u64) -> RunMetrics {
    let mut sc = GridScenario::paper_default(seed);
    sc.pds = pds;
    let center = grid::center_index(10, 10);
    let wl = Workload::new(sc.node_count()).with_chunked_item(
        "clip",
        size,
        256 * 1024,
        redundancy,
        center,
        seed,
    );
    let mut built = sc.build(&wl);
    let before = built.world.stats().clone();
    let consumer = built.consumer;
    built.start_retrieval(consumer);
    built.run_until_done(&[consumer], SimTime::from_secs_f64(400.0));
    built.retrieval_metrics(consumer, &before)
}

/// Design ablations (DESIGN.md §4): each row disables one of the paper's
/// mechanisms on the normal-load discovery scenario (plus the assignment
/// ablation on a retrieval). Overhead is the paper's cost metric.
pub fn ablations(cfg: &RunConfig) -> Vec<Table> {
    let entries = if cfg.quick { 1_000 } else { 5_000 };
    // Redundancy 2 gives the Bloom-filter machinery duplicates to prune.
    let redundancy = 2;
    let mut t = Table::new(
        format!(
            "Ablations — PDD mechanisms ({entries} entries, redundancy {redundancy}, 3 simultaneous consumers)"
        ),
        &["variant", "recall", "latency_s", "overhead_mb"],
    );
    let variants: Vec<(&str, PdsConfig)> = vec![
        ("full PDS (paper)", PdsConfig::default()),
        (
            "one-shot queries (NDN-style)",
            PdsConfig {
                one_shot_queries: true,
                ..PdsConfig::default()
            },
        ),
        (
            "no mixedcast",
            PdsConfig {
                mixedcast: false,
                ..PdsConfig::default()
            },
        ),
        (
            "no en-route rewriting",
            PdsConfig {
                rewrite: false,
                ..PdsConfig::default()
            },
        ),
    ];
    let grid = run_grid(&variants, &cfg.seeds, |(_, pds), seed| {
        discovery_with(pds.clone(), entries, redundancy, seed)
    });
    for ((label, _), runs) in variants.iter().zip(&grid) {
        let avg = average_runs(runs);
        t.push_row(vec![
            (*label).to_owned(),
            pct(avg.recall),
            f2(avg.latency_s),
            f2(avg.overhead_mb),
        ]);
    }

    let size = if cfg.quick { 2_000_000 } else { 10_000_000 };
    let mut t2 = Table::new(
        format!(
            "Ablations — chunk assignment ({} MB, redundancy 3)",
            size / 1_000_000
        ),
        &["variant", "recall", "latency_s", "overhead_mb"],
    );
    let assigns = [
        ("min-max heuristic (paper)", AssignStrategy::MinMax),
        ("greedy least-hop", AssignStrategy::Greedy),
    ];
    let grid = run_grid(&assigns, &cfg.seeds, |&(_, assign), seed| {
        let pds = PdsConfig {
            assign,
            ..PdsConfig::default()
        };
        retrieval_with(pds, size, 3, seed)
    });
    for (&(label, _), runs) in assigns.iter().zip(&grid) {
        let avg = average_runs(runs);
        t2.push_row(vec![
            label.to_owned(),
            pct(avg.recall),
            f2(avg.latency_s),
            f2(avg.overhead_mb),
        ]);
    }
    vec![t, t2]
}

/// Energy study (extension of §VII): per-node energy of a normal-load
/// discovery and a retrieval, split into radio-traffic and idle-listening
/// cost under the default smartphone-Wi-Fi energy model.
pub fn energy(cfg: &RunConfig) -> Vec<Table> {
    let entries = if cfg.quick { 1_000 } else { 5_000 };
    let size = if cfg.quick { 2_000_000 } else { 10_000_000 };
    let model = EnergyModel::default();
    let mut t = Table::new(
        "Energy (extension) — total radio energy per operation, 100 nodes",
        &[
            "operation",
            "sim_time_s",
            "total_J",
            "traffic_J",
            "idle_J",
            "J_per_node",
        ],
    );
    let mut row = |label: &str, sums: (f64, f64, f64)| {
        let (elapsed, total, idle) = sums;
        t.push_row(vec![
            label.to_owned(),
            f2(elapsed),
            f2(total),
            f2(total - idle),
            f2(idle),
            f2(total / 100.0),
        ]);
    };
    // Summing in seed order over the ordered `run_seeds` results keeps the
    // float accumulation identical to the old sequential loops.
    let fold = |runs: Vec<(f64, f64, f64)>| {
        let n = runs.len() as f64;
        let acc = runs
            .into_iter()
            .fold((0.0, 0.0, 0.0), |a, r| (a.0 + r.0, a.1 + r.1, a.2 + r.2));
        (acc.0 / n, acc.1 / n, acc.2 / n)
    };
    // Discovery.
    let runs = run_seeds(&cfg.seeds, |seed| {
        let sc = GridScenario::paper_default(seed);
        let wl = Workload::new(sc.node_count()).with_metadata(entries, 1, seed);
        let mut built = sc.build(&wl);
        let consumer = built.consumer;
        built.start_discovery(consumer);
        built.run_until_done(&[consumer], SimTime::from_secs_f64(120.0));
        let elapsed = built.world.now().as_secs_f64();
        let total = built.world.energy_j(&model);
        let idle = model.idle_mw / 1e3 * elapsed * built.nodes.len() as f64;
        (elapsed, total, idle)
    });
    row(&format!("PDD ({entries} entries)"), fold(runs));
    // Retrieval.
    let runs = run_seeds(&cfg.seeds, |seed| {
        let sc = GridScenario::paper_default(seed);
        let center = grid::center_index(10, 10);
        let wl = Workload::new(sc.node_count()).with_chunked_item(
            "clip",
            size,
            256 * 1024,
            1,
            center,
            seed,
        );
        let mut built = sc.build(&wl);
        let consumer = built.consumer;
        built.start_retrieval(consumer);
        built.run_until_done(&[consumer], SimTime::from_secs_f64(400.0));
        let elapsed = built.world.now().as_secs_f64();
        let total = built.world.energy_j(&model);
        let idle = model.idle_mw / 1e3 * elapsed * built.nodes.len() as f64;
        (elapsed, total, idle)
    });
    row(&format!("PDR ({} MB)", size / 1_000_000), fold(runs));
    vec![t]
}
