//! Mobility experiments (§VI-B-2/3): Figs. 9/10 (PDD under Student Center /
//! Classroom mobility) and Fig. 12 (PDR under Student Center mobility).

use super::RunConfig;
use crate::metrics::{average_runs, RunMetrics};
use crate::report::{f2, pct, Table};
use crate::scenario::{MobilityScenario, Workload};
use crate::sweep::run_grid;
use pds_core::PdsConfig;
use pds_mobility::{presets, ObservationParams};
use pds_sim::{SimConfig, SimDuration, SimTime};

fn scenario(
    params: ObservationParams,
    multiplier: f64,
    duration_s: u64,
    seed: u64,
) -> MobilityScenario {
    MobilityScenario {
        params,
        multiplier,
        duration: SimDuration::from_secs(duration_s),
        sim: SimConfig::paper_multi_hop(),
        pds: PdsConfig::default(),
        seed,
    }
}

fn pdd_mobility_run(
    params: ObservationParams,
    multiplier: f64,
    entries: usize,
    seed: u64,
) -> RunMetrics {
    let sc = scenario(params, multiplier, 300, seed);
    let wl = Workload::new(params.population).with_metadata(entries, 1, seed);
    let mut built = sc.build(&wl);
    // Let the trace churn a little before the consumer asks.
    built.world.run_until(SimTime::from_secs_f64(5.0));
    let before = built.world.stats().clone();
    let consumer = built.consumer;
    built.start_discovery(consumer);
    built.run_until_done(&[consumer], SimTime::from_secs_f64(200.0));
    built.discovery_metrics(consumer, &before)
}

/// Figs. 9/10: PDD recall and latency under Student Center and Classroom
/// mobility, with the join/leave/move rates scaled 0.5×–2×. The paper finds
/// recall ≈ 100 % throughout and latency within a couple of seconds.
///
/// Note: departing nodes carry away data that may not have been replicated
/// yet, so recall is measured against what was seeded — a node leaving with
/// the only copy before any query reaches it legitimately costs recall.
pub fn fig09_10_mobility_pdd(cfg: &RunConfig) -> Vec<Table> {
    let entries = if cfg.quick { 200 } else { 1_000 };
    let multipliers: &[f64] = if cfg.quick {
        &[1.0]
    } else {
        &[0.5, 1.0, 1.5, 2.0]
    };
    let venues = [
        ("Student Center", presets::student_center()),
        ("Classroom", presets::classroom()),
    ];
    // One flat venue × multiplier × seed grid keeps all workers busy across
    // both tables.
    let points: Vec<(ObservationParams, f64)> = venues
        .iter()
        .flat_map(|&(_, params)| multipliers.iter().map(move |&m| (params, m)))
        .collect();
    let grid = run_grid(&points, &cfg.seeds, |&(params, m), seed| {
        pdd_mobility_run(params, m, entries, seed)
    });
    let mut grid = grid.into_iter();
    let mut out = Vec::new();
    for (label, _) in venues {
        let mut t = Table::new(
            format!("Figs. 9/10 — PDD under {label} mobility ({entries} entries)"),
            &["multiplier", "recall", "latency_s", "overhead_mb"],
        );
        for &m in multipliers {
            let runs = grid.next().expect("one result set per (venue, multiplier)");
            let avg = average_runs(&runs);
            t.push_row(vec![
                f2(m),
                pct(avg.recall),
                f2(avg.latency_s),
                f2(avg.overhead_mb),
            ]);
        }
        out.push(t);
    }
    out
}

/// Fig. 12: PDR of a 20 MB item under Student Center mobility; latency
/// stays roughly flat across mobility multipliers.
pub fn fig12_mobility_pdr(cfg: &RunConfig) -> Vec<Table> {
    let size = if cfg.quick { 2_000_000 } else { 20_000_000 };
    let multipliers: &[f64] = if cfg.quick {
        &[1.0]
    } else {
        &[0.5, 1.0, 1.5, 2.0]
    };
    let params = presets::student_center();
    let mut t = Table::new(
        format!(
            "Fig. 12 — PDR under Student Center mobility ({} MB)",
            size / 1_000_000
        ),
        &["multiplier", "recall", "latency_s", "overhead_mb"],
    );
    let grid = run_grid(multipliers, &cfg.seeds, |&m, seed| {
        let sc = scenario(params, m, 600, seed);
        // Chunks seeded on initial people, never on the consumer
        // (index 0).
        let wl = Workload::new(params.population).with_chunked_item(
            "clip",
            size,
            256 * 1024,
            1,
            0,
            seed,
        );
        let mut built = sc.build(&wl);
        built.world.run_until(SimTime::from_secs_f64(5.0));
        let before = built.world.stats().clone();
        let consumer = built.consumer;
        built.start_retrieval(consumer);
        built.run_until_done(&[consumer], SimTime::from_secs_f64(500.0));
        built.retrieval_metrics(consumer, &before)
    });
    for (&m, runs) in multipliers.iter().zip(&grid) {
        let avg = average_runs(runs);
        t.push_row(vec![
            f2(m),
            pct(avg.recall),
            f2(avg.latency_s),
            f2(avg.overhead_mb),
        ]);
    }
    vec![t]
}
