//! Peer Data Discovery experiments (§VI-B-1/2 of the paper): saturation,
//! Fig. 4 (hops), Fig. 5 (round parameters), Fig. 6 (metadata amount),
//! Fig. 7 (sequential consumers), Fig. 8 (simultaneous consumers).

use super::RunConfig;
use crate::metrics::{average_runs, run_seeds, RunMetrics};
use crate::report::{f2, pct, Table};
use crate::scenario::{GridScenario, Workload};
use crate::sweep::run_grid;
use pds_core::{PdsConfig, RoundParams};
use pds_sim::{AckConfig, SimConfig, SimDuration, SimTime};

fn deadline(secs: f64) -> SimTime {
    SimTime::from_secs_f64(secs)
}

/// One discovery run on a grid; returns the consumer's metrics.
#[allow(clippy::too_many_arguments)] // one knob per experimental factor
fn discovery_run(
    rows: usize,
    cols: usize,
    sim: SimConfig,
    pds: PdsConfig,
    entries: usize,
    redundancy: usize,
    horizon: f64,
    seed: u64,
) -> RunMetrics {
    let sc = GridScenario {
        rows,
        cols,
        sim,
        pds,
        seed,
    };
    let wl = Workload::new(sc.node_count()).with_metadata(entries, redundancy, seed);
    let mut built = sc.build(&wl);
    let before = built.world.stats().clone();
    let consumer = built.consumer;
    built.start_discovery(consumer);
    built.run_until_done(&[consumer], deadline(horizon));
    built.discovery_metrics(consumer, &before)
}

fn single_round() -> PdsConfig {
    PdsConfig {
        rounds: RoundParams {
            max_rounds: 1,
            ..RoundParams::default()
        },
        ..PdsConfig::default()
    }
}

/// §VI-B saturation study: single-round PDD **without** ack/retransmission,
/// recall vs total metadata amount for redundancy 1 and 2. The paper
/// observes a knee around 10 000 entries.
pub fn saturation(cfg: &RunConfig) -> Vec<Table> {
    let amounts: &[usize] = if cfg.quick {
        &[500, 2_000]
    } else {
        &[1_000, 2_000, 5_000, 10_000, 20_000]
    };
    let mut t = Table::new(
        "§VI-B — single-round PDD recall without ack vs metadata amount",
        &["entries", "redundancy=1", "redundancy=2"],
    );
    let mut sim = SimConfig::paper_multi_hop();
    sim.ack = AckConfig::disabled();
    let points: Vec<(usize, usize)> = amounts
        .iter()
        .flat_map(|&amount| [1usize, 2].into_iter().map(move |r| (amount, r)))
        .collect();
    let grid = run_grid(&points, &cfg.seeds, |&(amount, redundancy), seed| {
        discovery_run(
            10,
            10,
            sim.clone(),
            single_round(),
            amount,
            redundancy,
            60.0,
            seed,
        )
    });
    let mut grid = grid.into_iter();
    for &amount in amounts {
        let mut cells = vec![amount.to_string()];
        for _redundancy in [1usize, 2] {
            let runs = grid
                .next()
                .expect("one result set per (amount, redundancy)");
            cells.push(pct(average_runs(&runs).recall));
        }
        t.push_row(cells);
    }
    // The paper's in-text companion number (§VI-B-1): one round *with*
    // ack/retransmission at normal load — 76 % recall, 3.2 s, 1.54 MB.
    let mut t2 = Table::new(
        "§VI-B-1 — single-round PDD with ack at normal load",
        &["entries", "recall", "latency_s", "overhead_mb"],
    );
    let entries = if cfg.quick { 2_000 } else { 5_000 };
    let runs = run_seeds(&cfg.seeds, |seed| {
        discovery_run(
            10,
            10,
            SimConfig::paper_multi_hop(),
            single_round(),
            entries,
            1,
            60.0,
            seed,
        )
    });
    let avg = average_runs(&runs);
    t2.push_row(vec![
        entries.to_string(),
        pct(avg.recall),
        f2(avg.latency_s),
        f2(avg.overhead_mb),
    ]);
    vec![t, t2]
}

/// Fig. 4: single-round PDD (with ack) on growing grids, 50 entries per
/// node; recall drops as the maximum hop count grows.
pub fn fig04_hops(cfg: &RunConfig) -> Vec<Table> {
    let sizes: &[usize] = if cfg.quick {
        &[3, 5]
    } else {
        &[3, 5, 7, 9, 11]
    };
    let mut t = Table::new(
        "Fig. 4 — single-round PDD vs max hop count (50 entries/node)",
        &["grid", "max_hops", "recall", "latency_s", "overhead_mb"],
    );
    let grid = run_grid(sizes, &cfg.seeds, |&n, seed| {
        discovery_run(
            n,
            n,
            SimConfig::paper_multi_hop(),
            single_round(),
            50 * n * n,
            1,
            60.0,
            seed,
        )
    });
    for (&n, runs) in sizes.iter().zip(&grid) {
        let avg = average_runs(runs);
        t.push_row(vec![
            format!("{n}x{n}"),
            (n / 2).to_string(),
            pct(avg.recall),
            f2(avg.latency_s),
            f2(avg.overhead_mb),
        ]);
    }
    vec![t]
}

/// Fig. 5: multi-round PDD recall (plus latency/overhead, whose figures the
/// paper omits) vs the window `T` for `T_d ∈ {0, 0.1, 0.3}`, `T_r = 0`.
pub fn fig05_rounds(cfg: &RunConfig) -> Vec<Table> {
    let windows: &[u64] = if cfg.quick {
        &[400, 1_000]
    } else {
        &[200, 400, 600, 800, 1_000, 1_200]
    };
    let tds = [0.0, 0.1, 0.3];
    let entries = if cfg.quick { 1_000 } else { 5_000 };
    let mut recall = Table::new(
        "Fig. 5 — multi-round PDD recall vs T (T_r = 0)",
        &["T_s", "Td=0", "Td=0.1", "Td=0.3"],
    );
    let mut latency = Table::new(
        "Fig. 5 (companion) — latency (s) vs T",
        &["T_s", "Td=0", "Td=0.1", "Td=0.3"],
    );
    let mut overhead = Table::new(
        "Fig. 5 (companion) — overhead (MB) vs T",
        &["T_s", "Td=0", "Td=0.1", "Td=0.3"],
    );
    let points: Vec<(u64, f64)> = windows
        .iter()
        .flat_map(|&w| tds.iter().map(move |&td| (w, td)))
        .collect();
    let grid = run_grid(&points, &cfg.seeds, |&(window, td), seed| {
        let pds = PdsConfig {
            rounds: RoundParams {
                t_window: SimDuration::from_millis(window),
                t_d: td,
                ..RoundParams::default()
            },
            ..PdsConfig::default()
        };
        discovery_run(
            10,
            10,
            SimConfig::paper_multi_hop(),
            pds,
            entries,
            1,
            90.0,
            seed,
        )
    });
    let mut grid = grid.into_iter();
    for &window in windows {
        let mut rc = vec![f2(window as f64 / 1000.0)];
        let mut lc = rc.clone();
        let mut oc = rc.clone();
        for _td in &tds {
            let runs = grid.next().expect("one result set per (window, td)");
            let avg = average_runs(&runs);
            rc.push(pct(avg.recall));
            lc.push(f2(avg.latency_s));
            oc.push(f2(avg.overhead_mb));
        }
        recall.push_row(rc);
        latency.push_row(lc);
        overhead.push_row(oc);
    }
    vec![recall, latency, overhead]
}

/// Fig. 6: multi-round PDD vs metadata amount 5k–20k: recall stays ~100 %,
/// latency grows sub-linearly, overhead near-linearly.
pub fn fig06_amount(cfg: &RunConfig) -> Vec<Table> {
    let amounts: &[usize] = if cfg.quick {
        &[500, 2_000]
    } else {
        &[5_000, 10_000, 15_000, 20_000]
    };
    let mut t = Table::new(
        "Fig. 6 — multi-round PDD vs metadata amount",
        &["entries", "recall", "latency_s", "overhead_mb", "rounds"],
    );
    let grid = run_grid(amounts, &cfg.seeds, |&amount, seed| {
        discovery_run(
            10,
            10,
            SimConfig::paper_multi_hop(),
            PdsConfig::default(),
            amount,
            1,
            120.0,
            seed,
        )
    });
    for (&amount, runs) in amounts.iter().zip(&grid) {
        let avg = average_runs(runs);
        t.push_row(vec![
            amount.to_string(),
            pct(avg.recall),
            f2(avg.latency_s),
            f2(avg.overhead_mb),
            f2(avg.rounds),
        ]);
    }
    vec![t]
}

/// Fig. 7: five consumers discover one after another; opportunistic caching
/// makes later consumers faster.
pub fn fig07_sequential(cfg: &RunConfig) -> Vec<Table> {
    let entries = if cfg.quick { 1_000 } else { 5_000 };
    let consumers = 5usize;
    let mut t = Table::new(
        "Fig. 7 — PDD with sequential consumers",
        &["consumer", "recall", "latency_s", "overhead_mb"],
    );
    // Sequential runs yield one metric per consumer per seed. The unit of
    // parallelism is the seed: consumers within one world stay strictly
    // serial (the whole point of Fig. 7 is caching from earlier consumers).
    let per_seed: Vec<Vec<RunMetrics>> = run_seeds(&cfg.seeds, |seed| {
        let sc = GridScenario::paper_default(seed);
        let wl = Workload::new(sc.node_count()).with_metadata(entries, 1, seed);
        let mut built = sc.build(&wl);
        let pool = built.center_pool.clone();
        pool.iter()
            .take(consumers)
            .map(|&consumer| {
                let before = built.world.stats().clone();
                built.start_discovery(consumer);
                built.run_until_done(&[consumer], built.world.now() + SimDuration::from_secs(120));
                built.discovery_metrics(consumer, &before)
            })
            .collect()
    });
    let mut all: Vec<Vec<RunMetrics>> = vec![Vec::new(); consumers];
    for seed_run in per_seed {
        for (i, m) in seed_run.into_iter().enumerate() {
            all[i].push(m);
        }
    }
    for (i, runs) in all.iter().enumerate() {
        let avg = average_runs(runs);
        t.push_row(vec![
            (i + 1).to_string(),
            pct(avg.recall),
            f2(avg.latency_s),
            f2(avg.overhead_mb),
        ]);
    }
    vec![t]
}

/// Fig. 8: 1–5 consumers discover simultaneously; mixedcast keeps the
/// per-consumer latency growth sub-linear.
pub fn fig08_simultaneous(cfg: &RunConfig) -> Vec<Table> {
    let entries = if cfg.quick { 1_000 } else { 5_000 };
    let mut t = Table::new(
        "Fig. 8 — PDD with simultaneous consumers",
        &["consumers", "recall", "mean_latency_s", "overhead_mb"],
    );
    let ks: Vec<usize> = (1..=5).collect();
    let grid = run_grid(&ks, &cfg.seeds, |&k, seed| {
        let sc = GridScenario::paper_default(seed);
        let wl = Workload::new(sc.node_count()).with_metadata(entries, 1, seed);
        let mut built = sc.build(&wl);
        let consumers: Vec<_> = built.center_pool.iter().copied().take(k).collect();
        let before = built.world.stats().clone();
        for &c in &consumers {
            built.start_discovery(c);
        }
        built.run_until_done(&consumers, deadline(120.0));
        let metrics: Vec<RunMetrics> = consumers
            .iter()
            .map(|&c| built.discovery_metrics(c, &before))
            .collect();
        (
            metrics.iter().map(|m| m.recall).sum::<f64>() / k as f64,
            metrics.iter().map(|m| m.latency_s).sum::<f64>() / k as f64,
            // Overhead window is shared; take it once per seed.
            metrics[0].overhead_mb,
        )
    });
    for (&k, runs) in ks.iter().zip(&grid) {
        let n = cfg.seeds.len() as f64;
        t.push_row(vec![
            k.to_string(),
            pct(runs.iter().map(|r| r.0).sum::<f64>() / n),
            f2(runs.iter().map(|r| r.1).sum::<f64>() / n),
            f2(runs.iter().map(|r| r.2).sum::<f64>() / n),
        ]);
    }
    vec![t]
}
