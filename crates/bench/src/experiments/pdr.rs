//! Peer Data Retrieval experiments (§VI-B-3): Fig. 11 (item size),
//! Figs. 13/14 (PDR vs MDR under redundancy), Fig. 15 (sequential
//! consumers), Fig. 16 (simultaneous consumers).

use super::RunConfig;
use crate::metrics::{average_runs, run_seeds, RunMetrics};
use crate::report::{f2, pct, Table};
use crate::scenario::{GridScenario, Workload};
use crate::sweep::run_grid;
use pds_mobility::grid;
use pds_sim::{SimDuration, SimTime};

const CHUNK: usize = 256 * 1024;

fn deadline(secs: f64) -> SimTime {
    SimTime::from_secs_f64(secs)
}

/// One retrieval run; `mdr` picks the baseline.
fn retrieval_run(size_bytes: usize, redundancy: usize, mdr: bool, seed: u64) -> RunMetrics {
    let sc = GridScenario::paper_default(seed);
    let center = grid::center_index(10, 10);
    let wl = Workload::new(sc.node_count())
        .with_chunked_item("clip", size_bytes, CHUNK, redundancy, center, seed);
    let mut built = sc.build(&wl);
    let before = built.world.stats().clone();
    let consumer = built.consumer;
    if mdr {
        built.start_mdr(consumer);
    } else {
        built.start_retrieval(consumer);
    }
    built.run_until_done(&[consumer], deadline(600.0));
    built.retrieval_metrics(consumer, &before)
}

/// Fig. 11: PDR latency and overhead grow near-linearly with item size;
/// recall stays 100 %.
pub fn fig11_item_size(cfg: &RunConfig) -> Vec<Table> {
    let sizes_mb: &[usize] = if cfg.quick { &[1, 4] } else { &[1, 5, 10, 20] };
    let mut t = Table::new(
        "Fig. 11 — PDR vs data item size",
        &[
            "size_mb",
            "recall",
            "latency_s",
            "overhead_mb",
            "pdd_mb",
            "pdr_mb",
            "other_mb",
        ],
    );
    let grid = run_grid(sizes_mb, &cfg.seeds, |&mb, seed| {
        retrieval_run(mb * 1_000_000, 1, false, seed)
    });
    for (&mb, runs) in sizes_mb.iter().zip(&grid) {
        let avg = average_runs(runs);
        let [pdd, pdr, _mdr, other] = avg.overhead_by_phase_mb;
        t.push_row(vec![
            mb.to_string(),
            pct(avg.recall),
            f2(avg.latency_s),
            f2(avg.overhead_mb),
            f2(pdd),
            f2(pdr),
            f2(other),
        ]);
    }
    vec![t]
}

/// Figs. 13/14: PDR vs MDR as chunk redundancy grows (20 MB item). MDR
/// degrades with more copies (duplicate replies); PDR stays flat or
/// improves (nearest-copy selection).
pub fn fig13_14_redundancy(cfg: &RunConfig) -> Vec<Table> {
    let size = if cfg.quick { 4_000_000 } else { 20_000_000 };
    let redundancies: &[usize] = if cfg.quick { &[1, 3] } else { &[1, 2, 3, 4, 5] };
    let mut lat = Table::new(
        "Fig. 13 — retrieval latency (s) vs chunk redundancy (20 MB)",
        &["redundancy", "PDR", "MDR", "PDR_recall", "MDR_recall"],
    );
    let mut ovh = Table::new(
        "Fig. 14 — message overhead (MB) vs chunk redundancy (20 MB)",
        &["redundancy", "PDR", "MDR"],
    );
    // One flat (redundancy, mdr?) × seed grid so the slow MDR points
    // overlap the fast PDR ones instead of running after them.
    let points: Vec<(usize, bool)> = redundancies
        .iter()
        .flat_map(|&r| [(r, false), (r, true)])
        .collect();
    let grid = run_grid(&points, &cfg.seeds, |&(r, mdr), seed| {
        retrieval_run(size, r, mdr, seed)
    });
    let mut grid = grid.into_iter();
    for &r in redundancies {
        let pdr = average_runs(&grid.next().expect("one PDR result set per redundancy"));
        let mdr = average_runs(&grid.next().expect("one MDR result set per redundancy"));
        lat.push_row(vec![
            r.to_string(),
            f2(pdr.latency_s),
            f2(mdr.latency_s),
            pct(pdr.recall),
            pct(mdr.recall),
        ]);
        ovh.push_row(vec![
            r.to_string(),
            f2(pdr.overhead_mb),
            f2(mdr.overhead_mb),
        ]);
    }
    vec![lat, ovh]
}

/// Fig. 15: sequential PDR consumers — chunks cached by earlier retrievals
/// shorten paths for later ones.
pub fn fig15_sequential(cfg: &RunConfig) -> Vec<Table> {
    let size = if cfg.quick { 4_000_000 } else { 20_000_000 };
    let consumers = if cfg.quick { 3 } else { 5 };
    let mut t = Table::new(
        "Fig. 15 — PDR with sequential consumers (20 MB)",
        &["consumer", "recall", "latency_s", "overhead_mb"],
    );
    // Seeds run in parallel; consumers within one world stay serial (the
    // figure measures caching left behind by earlier retrievals).
    let per_seed: Vec<Vec<RunMetrics>> = run_seeds(&cfg.seeds, |seed| {
        let sc = GridScenario::paper_default(seed);
        let center = grid::center_index(10, 10);
        let wl =
            Workload::new(sc.node_count()).with_chunked_item("clip", size, CHUNK, 1, center, seed);
        let mut built = sc.build(&wl);
        let pool = built.center_pool.clone();
        pool.iter()
            .take(consumers)
            .map(|&consumer| {
                let before = built.world.stats().clone();
                built.start_retrieval(consumer);
                built.run_until_done(&[consumer], built.world.now() + SimDuration::from_secs(600));
                built.retrieval_metrics(consumer, &before)
            })
            .collect()
    });
    let mut all: Vec<Vec<RunMetrics>> = vec![Vec::new(); consumers];
    for seed_run in per_seed {
        for (i, m) in seed_run.into_iter().enumerate() {
            all[i].push(m);
        }
    }
    for (i, runs) in all.iter().enumerate() {
        let avg = average_runs(runs);
        t.push_row(vec![
            (i + 1).to_string(),
            pct(avg.recall),
            f2(avg.latency_s),
            f2(avg.overhead_mb),
        ]);
    }
    vec![t]
}

/// Fig. 16: simultaneous PDR consumers — latency/overhead rise then
/// stabilize as consumers share transmissions.
pub fn fig16_simultaneous(cfg: &RunConfig) -> Vec<Table> {
    let size = if cfg.quick { 4_000_000 } else { 20_000_000 };
    let max_consumers = if cfg.quick { 3 } else { 5 };
    let mut t = Table::new(
        "Fig. 16 — PDR with simultaneous consumers (20 MB)",
        &["consumers", "recall", "mean_latency_s", "overhead_mb"],
    );
    let ks: Vec<usize> = (1..=max_consumers).collect();
    let grid = run_grid(&ks, &cfg.seeds, |&k, seed| {
        let sc = GridScenario::paper_default(seed);
        let center = grid::center_index(10, 10);
        let wl =
            Workload::new(sc.node_count()).with_chunked_item("clip", size, CHUNK, 1, center, seed);
        let mut built = sc.build(&wl);
        let consumers: Vec<_> = built.center_pool.iter().copied().take(k).collect();
        let before = built.world.stats().clone();
        for &c in &consumers {
            built.start_retrieval(c);
        }
        built.run_until_done(&consumers, deadline(900.0));
        let metrics: Vec<RunMetrics> = consumers
            .iter()
            .map(|&c| built.retrieval_metrics(c, &before))
            .collect();
        (
            metrics.iter().map(|m| m.recall).sum::<f64>() / k as f64,
            metrics.iter().map(|m| m.latency_s).sum::<f64>() / k as f64,
            metrics[0].overhead_mb,
        )
    });
    for (&k, runs) in ks.iter().zip(&grid) {
        let n = cfg.seeds.len() as f64;
        t.push_row(vec![
            k.to_string(),
            pct(runs.iter().map(|r| r.0).sum::<f64>() / n),
            f2(runs.iter().map(|r| r.1).sum::<f64>() / n),
            f2(runs.iter().map(|r| r.2).sum::<f64>() / n),
        ]);
    }
    vec![t]
}
