//! Single-hop prototype calibration experiments (§V of the paper):
//! Fig. 3 plus the two parameter sweeps whose figures the paper omits.
//!
//! These run in the Android-prototype regime ([`SimConfig::prototype`]):
//! ~5 Mbps effective broadcast service rate and fire-and-forget UDP sends
//! that silently overflow the 1 MB OS buffer.

use super::RunConfig;
use crate::report::{f2, pct, Table};
use crate::sweep::run_grid;
use bytes::Bytes;
use pds_sim::{
    AckConfig, Application, Context, MessageMeta, Position, SenderMode, SimConfig, SimDuration,
    SimTime, World,
};

/// Sends `count` messages of `size` bytes to `intended`, paced at
/// `app_rate_bps` (the rate the application calls `send`, not the radio
/// rate).
struct BulkSender {
    count: usize,
    size: usize,
    intended: Vec<pds_sim::NodeId>,
    gap: SimDuration,
    sent: usize,
}

impl BulkSender {
    fn new(count: usize, size: usize, intended: Vec<pds_sim::NodeId>, app_rate_bps: f64) -> Self {
        let gap = SimDuration::from_secs_f64(size as f64 * 8.0 / app_rate_bps);
        Self {
            count,
            size,
            intended,
            gap,
            sent: 0,
        }
    }
}

impl Application for BulkSender {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_message(&mut self, _ctx: &mut Context, _meta: MessageMeta, _payload: Bytes) {}
    fn on_timer(&mut self, ctx: &mut Context, _tag: u64) {
        if self.sent >= self.count {
            return;
        }
        self.sent += 1;
        ctx.broadcast(Bytes::from(vec![0u8; self.size]), &self.intended);
        ctx.set_timer(self.gap, 0);
    }
}

/// Counts complete message receptions and the span they arrived over.
struct Receiver {
    received: usize,
    bytes: u64,
    first_at: Option<SimTime>,
    last_at: SimTime,
}

impl Receiver {
    fn new() -> Self {
        Self {
            received: 0,
            bytes: 0,
            first_at: None,
            last_at: SimTime::ZERO,
        }
    }

    fn data_rate_mbps(&self) -> f64 {
        match self.first_at {
            Some(first) if self.last_at > first => {
                self.bytes as f64 * 8.0 / self.last_at.since(first).as_secs_f64() / 1e6
            }
            _ => 0.0,
        }
    }
}

impl Application for Receiver {
    fn on_start(&mut self, _ctx: &mut Context) {}
    fn on_message(&mut self, ctx: &mut Context, _meta: MessageMeta, payload: Bytes) {
        self.received += 1;
        self.bytes += payload.len() as u64;
        self.first_at.get_or_insert(ctx.now());
        self.last_at = ctx.now();
    }
}

/// One single-hop run: `senders` nodes each send `count` messages to one
/// receiver. Returns (reception ratio, receiver data rate in Mbps).
fn single_hop_run(config: SimConfig, senders: usize, count: usize, seed: u64) -> (f64, f64) {
    let mut world = World::new(config, seed);
    let receiver_pos = Position::new(0.0, 0.0);
    // Senders on a circle well inside radio range.
    let receiver_id = pds_sim::NodeId(0);
    let mut world_receiver = None;
    for i in 0..=senders {
        if i == 0 {
            world_receiver = Some(world.add_node(receiver_pos, Box::new(Receiver::new())));
        } else {
            let angle = i as f64 / senders as f64 * std::f64::consts::TAU;
            let pos = Position::new(30.0 * angle.cos(), 30.0 * angle.sin());
            world.add_node(
                pos,
                Box::new(BulkSender::new(count, 1400, vec![receiver_id], 60.0e6)),
            );
        }
    }
    let receiver = world_receiver.expect("receiver added");
    world.run_until(SimTime::from_secs_f64(120.0));
    let app = world.app::<Receiver>(receiver).expect("receiver alive");
    let total = senders * count;
    (app.received as f64 / total as f64, app.data_rate_mbps())
}

/// Fig. 3: reception rate and receiver data rate for raw UDP, leaky bucket
/// only, and leaky bucket + ack, with 1–4 concurrent senders.
pub fn fig03_single_hop(cfg: &RunConfig) -> Vec<Table> {
    let count = if cfg.quick { 800 } else { 4_000 };
    let modes: [(&str, SimConfig); 3] = [
        ("raw-udp", {
            let mut c = SimConfig::prototype();
            c.sender = SenderMode::RawUdp;
            c.ack = AckConfig::disabled();
            c
        }),
        ("leaky", {
            let mut c = SimConfig::prototype();
            c.ack = AckConfig::disabled();
            c
        }),
        ("leaky+ack", SimConfig::prototype()),
    ];
    let mut reception = Table::new(
        "Fig. 3 — single-hop reception rate vs concurrent senders",
        &["senders", "raw-udp", "leaky", "leaky+ack"],
    );
    let mut rate = Table::new(
        "Fig. 3 — receiver data rate (Mbps) vs concurrent senders",
        &["senders", "raw-udp", "leaky", "leaky+ack"],
    );
    let points: Vec<(usize, &SimConfig)> = (1..=4usize)
        .flat_map(|senders| modes.iter().map(move |(_, c)| (senders, c)))
        .collect();
    let grid = run_grid(&points, &cfg.seeds, |&(senders, config), seed| {
        single_hop_run(config.clone(), senders, count, seed)
    });
    let mut grid = grid.into_iter();
    for senders in 1..=4usize {
        let mut rec_cells = vec![senders.to_string()];
        let mut rate_cells = vec![senders.to_string()];
        for _ in &modes {
            let runs = grid.next().expect("one result set per (senders, mode)");
            let n = runs.len() as f64;
            rec_cells.push(pct(runs.iter().map(|r| r.0).sum::<f64>() / n));
            rate_cells.push(f2(runs.iter().map(|r| r.1).sum::<f64>() / n));
        }
        reception.push_row(rec_cells);
        rate.push_row(rate_cells);
    }
    vec![reception, rate]
}

/// §V-2 sweep: reception vs `LeakingRate` (1–6 Mbps) and `BucketCapacity`
/// (the paper settles on 300 KB / 4.5 Mbps).
pub fn leaky_sweep(cfg: &RunConfig) -> Vec<Table> {
    let count = if cfg.quick { 1_200 } else { 6_000 };
    let rates = [1.0e6, 2.0e6, 3.0e6, 4.0e6, 4.5e6, 5.0e6, 6.0e6];
    let capacities = [100_000usize, 300_000, 600_000, 1_200_000];
    let mut t = Table::new(
        "§V-2 — reception vs LeakingRate × BucketCapacity (1 sender, 1 receiver)",
        &["rate_mbps", "100KB", "300KB", "600KB", "1200KB"],
    );
    let points: Vec<(f64, usize)> = rates
        .iter()
        .flat_map(|&rate| capacities.iter().map(move |&cap| (rate, cap)))
        .collect();
    let grid = run_grid(&points, &cfg.seeds, |&(rate, capacity), seed| {
        let mut c = SimConfig::prototype();
        c.ack = AckConfig::disabled();
        c.sender = SenderMode::LeakyBucket {
            capacity_bytes: capacity,
            rate_bps: rate,
        };
        single_hop_run(c, 1, count, seed).0
    });
    let mut grid = grid.into_iter();
    for &rate in &rates {
        let mut cells = vec![f2(rate / 1e6)];
        for _ in &capacities {
            let runs = grid.next().expect("one result set per (rate, capacity)");
            cells.push(pct(runs.iter().sum::<f64>() / runs.len() as f64));
        }
        t.push_row(cells);
    }
    vec![t]
}

/// §V-1 sweep: reception vs `RetrTimeout` and `MaxRetrTime` with four
/// concurrent senders (the paper finds the benefit plateaus at 0.2 s / 4).
pub fn ack_sweep(cfg: &RunConfig) -> Vec<Table> {
    let count = if cfg.quick { 300 } else { 800 };
    let timeouts = [50u64, 100, 200, 400];
    let retries = [0u32, 1, 2, 4, 8];
    let mut t = Table::new(
        "§V-1 — reception vs RetrTimeout × MaxRetrTime (4 senders, 1 receiver)",
        &[
            "timeout_ms",
            "retr=0",
            "retr=1",
            "retr=2",
            "retr=4",
            "retr=8",
        ],
    );
    let points: Vec<(u64, u32)> = timeouts
        .iter()
        .flat_map(|&t| retries.iter().map(move |&r| (t, r)))
        .collect();
    let grid = run_grid(&points, &cfg.seeds, |&(timeout, max_retr), seed| {
        let mut c = SimConfig::prototype();
        c.ack = AckConfig {
            enabled: true,
            retr_timeout: SimDuration::from_millis(timeout),
            max_retr,
            ack_delay: SimDuration::from_millis(40),
        };
        single_hop_run(c, 4, count, seed).0
    });
    let mut grid = grid.into_iter();
    for &timeout in &timeouts {
        let mut cells = vec![timeout.to_string()];
        for _ in &retries {
            let runs = grid.next().expect("one result set per (timeout, retries)");
            cells.push(pct(runs.iter().sum::<f64>() / runs.len() as f64));
        }
        t.push_row(cells);
    }
    vec![t]
}
