//! Scenario-scale benchmark of the simulator's spatial hot paths.
//!
//! Runs the same dense-chatter scenario at several node counts, once with
//! the spatial grid index and once with the brute-force scans, checks the
//! two runs produced *identical* statistics (the grid is an index, not an
//! approximation), and records wall-clock times plus the grid/brute
//! speedup as a machine-readable perf record.
//!
//! ```text
//! cargo run --release -p pds-bench --bin sim_scale -- --quick --out BENCH_sim_scale.json
//! ```
//!
//! `--quick` shortens the simulated horizon for CI smoke runs; the node
//! counts (100 / 500 / 1000) stay the same so the scaling trend is always
//! visible. Without `--quick` the horizon is 4× longer. `--trace-check`
//! additionally re-runs the largest scenario with a null trace sink
//! installed and asserts the instrumented hot path stays within 10% of the
//! uninstrumented wall time (DESIGN.md §9). `--fault-check` does the same
//! for the fault-injection seam: a no-op [`FaultPlan`] installed must not
//! change statistics and must stay within the same overhead budget
//! (DESIGN.md §12).
//!
//! `--jobs N` (default: available cores) sets the worker count for the
//! sweep-executor benchmark: the node-count × seed grid is run once
//! sequentially and once through the parallel [`SweepRunner`], the two
//! result vectors are asserted identical, and both wall times land in the
//! JSON record (`"sweep"`). A `"scheduler"` block compares the
//! hierarchical timer-wheel event queue against the legacy binary heap at
//! every node count (identical statistics asserted, wall times and
//! speedup recorded). All other sections — the grid/brute
//! comparison and `--trace-check` — are single runs on the main thread,
//! i.e. always `--jobs 1` semantics, so their wall-time gates compare
//! like-for-like regardless of the flag.

use pds_bench::{SweepRunner, WallClock};
use pds_sim::{
    Application, Context, FaultPlan, MessageMeta, Position, Scheduler, SimConfig, SimDuration,
    SimTime, SpatialIndex, World,
};
use std::fmt::Write as _;

/// Node counts exercised in both modes.
const NODE_COUNTS: [usize; 3] = [100, 500, 1000];
/// Nodes per gathering spot. Peers inside a cluster are in radio range of
/// each other; clusters are far outside each other's range.
const CLUSTER_SIZE: usize = 2;
/// Spacing between cluster centers, meters (radio range 75 m).
const CLUSTER_SPACING_M: f64 = 400.0;
/// Nodes scatter up to this far from their cluster center on each axis,
/// keeping intra-cluster distances at most ~70 m.
const CLUSTER_RADIUS_M: f64 = 25.0;
/// Fraction of nodes walking (to a random point in the field) during the
/// run.
const MOVER_FRACTION: f64 = 0.1;

/// Chatter period per node.
const CHATTER_PERIOD: SimDuration = SimDuration::from_millis(10);

/// Periodic small-payload broadcaster: every node chatters, so every
/// kernel hot path (carrier sense, receiver enumeration, interference)
/// is exercised constantly. Each node starts at its own phase so the
/// cluster peers are not artificially synchronized.
struct Chatter {
    phase: SimDuration,
}

impl Application for Chatter {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer(self.phase, 0);
    }
    fn on_message(&mut self, _: &mut Context, _: MessageMeta, _: bytes::Bytes) {}
    fn on_timer(&mut self, ctx: &mut Context, _tag: u64) {
        ctx.broadcast(bytes::Bytes::from_static(&[0u8; 200]), &[]);
        ctx.set_timer(CHATTER_PERIOD, 0);
    }
}

/// Builds the scenario: `n` nodes in small gathering-spot clusters laid
/// out on a square grid at constant cluster density (so area grows with
/// `n`), with a fraction of the nodes walking.
fn build_world(n: usize, index: SpatialIndex, scheduler: Scheduler, seed: u64) -> World {
    let mut config = SimConfig::default();
    config.spatial.index = index;
    config.scheduler = scheduler;
    // Large-area scenario knobs (identical in both modes, so the runs stay
    // comparable): a 4-range interference horizon — at the default
    // path-loss exponent a transmitter that far away contributes under 2%
    // of the weakest decodable signal — and a coarse re-bucket cadence
    // that bounds the walker drift pad to a fraction of a meter.
    config.radio.interference_range_factor = 4.0;
    config.spatial.rebucket_interval = SimDuration::from_millis(250);
    let mut world = World::new(config, seed);
    let clusters = n.div_ceil(CLUSTER_SIZE);
    let side = (clusters as f64).sqrt().ceil() as usize;
    let mut rng = world.fork_rng(7);
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let c = i / CLUSTER_SIZE;
        let cx = (c % side) as f64 * CLUSTER_SPACING_M;
        let cy = (c / side) as f64 * CLUSTER_SPACING_M;
        let x = cx + rng.range_f64(-CLUSTER_RADIUS_M, CLUSTER_RADIUS_M);
        let y = cy + rng.range_f64(-CLUSTER_RADIUS_M, CLUSTER_RADIUS_M);
        let phase = SimDuration::from_micros(rng.range_f64(0.0, 10_000.0) as u64);
        ids.push(world.add_node(Position::new(x, y), Box::new(Chatter { phase })));
    }
    let extent = side as f64 * CLUSTER_SPACING_M;
    for &id in &ids {
        if rng.chance(MOVER_FRACTION) {
            let dest = Position::new(rng.range_f64(0.0, extent), rng.range_f64(0.0, extent));
            world.move_node(id, dest, 1.4);
        }
    }
    world
}

struct ModeRun {
    wall_s: f64,
    stats: pds_sim::Stats,
}

fn run_mode(n: usize, index: SpatialIndex, horizon: SimTime) -> ModeRun {
    run_mode_traced(n, index, horizon, false)
}

fn run_mode_traced(n: usize, index: SpatialIndex, horizon: SimTime, traced: bool) -> ModeRun {
    run_mode_full(n, index, Scheduler::default(), horizon, traced)
}

fn run_mode_full(
    n: usize,
    index: SpatialIndex,
    scheduler: Scheduler,
    horizon: SimTime,
    traced: bool,
) -> ModeRun {
    let mut world = build_world(n, index, scheduler, 42);
    if traced {
        world.set_trace_sink(Box::new(pds_sim::obs::NullSink));
    }
    let start = WallClock::start();
    world.run_until(horizon);
    let wall_s = start.elapsed_s();
    #[cfg(feature = "prof")]
    {
        println!("-- {index:?}");
        pds_sim::prof::dump();
    }
    ModeRun {
        wall_s,
        stats: world.stats().clone(),
    }
}

/// `--trace-check`: runs the largest scenario untraced and with a
/// [`pds_sim::obs::NullSink`] installed (every emission site live, events
/// discarded), asserting identical stats and a wall-clock overhead within
/// the ISSUE 3 budget. Returns (untraced_s, traced_s, ratio).
fn trace_check(horizon: SimTime) -> (f64, f64, f64) {
    let n = NODE_COUNTS[NODE_COUNTS.len() - 1];
    // Best-of-2 per mode to damp scheduler noise on CI runners.
    let best = |traced: bool| -> ModeRun {
        let a = run_mode_traced(n, SpatialIndex::Grid, horizon, traced);
        let b = run_mode_traced(n, SpatialIndex::Grid, horizon, traced);
        assert_eq!(a.stats, b.stats, "same-seed runs must agree");
        if a.wall_s <= b.wall_s {
            a
        } else {
            b
        }
    };
    let off = best(false);
    let on = best(true);
    assert_eq!(
        on.stats, off.stats,
        "trace sink must not perturb simulation results"
    );
    let ratio = on.wall_s / off.wall_s.max(1e-9);
    println!(
        "trace-check n={n}  untraced {:.3}s  traced {:.3}s  ratio {ratio:.3}",
        off.wall_s, on.wall_s
    );
    // 10% relative budget plus a small absolute pad so sub-second quick
    // runs don't fail on timer granularity.
    assert!(
        on.wall_s <= off.wall_s * 1.10 + 0.05,
        "tracing overhead above budget: {:.3}s traced vs {:.3}s untraced",
        on.wall_s,
        off.wall_s
    );
    (off.wall_s, on.wall_s, ratio)
}

/// `--fault-check`: runs the largest scenario with no fault hook at all
/// and with a no-op [`FaultPlan`] installed (the hook live on every
/// transmission, every knob zero), asserting identical stats and
/// wall-clock overhead within the same budget as `--trace-check`: the
/// fault seam must be free when nobody uses it. Returns
/// (unfaulted_s, faulted_s, ratio).
fn fault_check(horizon: SimTime) -> (f64, f64, f64) {
    let n = NODE_COUNTS[NODE_COUNTS.len() - 1];
    // Best-of-2 per mode to damp scheduler noise on CI runners.
    let best = |noop_plan: bool| -> ModeRun {
        let run = || -> ModeRun {
            let mut world = build_world(n, SpatialIndex::Grid, Scheduler::default(), 42);
            if noop_plan {
                world.install_faults(FaultPlan::none(42));
            }
            let start = WallClock::start();
            world.run_until(horizon);
            ModeRun {
                wall_s: start.elapsed_s(),
                stats: world.stats().clone(),
            }
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats, b.stats, "same-seed runs must agree");
        if a.wall_s <= b.wall_s {
            a
        } else {
            b
        }
    };
    let off = best(false);
    let on = best(true);
    assert_eq!(
        on.stats, off.stats,
        "a no-op fault plan must not perturb simulation results"
    );
    let ratio = on.wall_s / off.wall_s.max(1e-9);
    println!(
        "fault-check n={n}  no-hook {:.3}s  noop-plan {:.3}s  ratio {ratio:.3}",
        off.wall_s, on.wall_s
    );
    // Same 10% relative + small absolute budget as trace-check.
    assert!(
        on.wall_s <= off.wall_s * 1.10 + 0.05,
        "no-op fault plan overhead above budget: {:.3}s faulted vs {:.3}s plain",
        on.wall_s,
        off.wall_s
    );
    (off.wall_s, on.wall_s, ratio)
}

/// Sequential-vs-parallel sweep benchmark: the node-count × seed grid as
/// one flat job list, run at 1 worker and at `jobs` workers. Each job
/// builds its own world from its own seed, so the executor can only change
/// wall-clock order — asserted by comparing the full result vectors.
struct SweepBench {
    jobs: usize,
    sequential_wall_s: f64,
    parallel_wall_s: f64,
    speedup: f64,
    results_equal: bool,
}

fn sweep_bench(horizon: SimTime, jobs: usize) -> SweepBench {
    const SEEDS: [u64; 4] = [11, 22, 33, 44];
    let points: Vec<(usize, u64)> = NODE_COUNTS
        .iter()
        .flat_map(|&n| SEEDS.iter().map(move |&s| (n, s)))
        .collect();
    let run_all = |runner: &SweepRunner| -> (f64, Vec<pds_sim::Stats>) {
        let start = WallClock::start();
        let stats = runner.run(points.len(), |i| {
            let (n, seed) = points[i];
            let mut world = build_world(n, SpatialIndex::Grid, Scheduler::default(), seed);
            world.run_until(horizon);
            world.stats().clone()
        });
        (start.elapsed_s(), stats)
    };
    let (sequential_wall_s, seq_stats) = run_all(&SweepRunner::new(1));
    let (parallel_wall_s, par_stats) = run_all(&SweepRunner::new(jobs));
    let results_equal = seq_stats == par_stats;
    assert!(
        results_equal,
        "parallel sweep diverged from sequential run at {jobs} jobs"
    );
    let speedup = sequential_wall_s / parallel_wall_s.max(1e-9);
    println!(
        "sweep ({} worlds)  sequential {sequential_wall_s:.3}s  \
         parallel({jobs} jobs) {parallel_wall_s:.3}s  speedup {speedup:.2}x  \
         results_equal={results_equal}",
        points.len()
    );
    SweepBench {
        jobs,
        sequential_wall_s,
        parallel_wall_s,
        speedup,
        results_equal,
    }
}

/// One row of the event-scheduler comparison: the grid scenario run once
/// on the hierarchical timer wheel and once on the legacy binary heap.
struct SchedulerRow {
    n: usize,
    wheel_wall_s: f64,
    heap_wall_s: f64,
    speedup: f64,
    stats_equal: bool,
}

/// Wheel-vs-heap wall times at every node count. Like the grid/brute
/// section, the two runs must produce identical statistics — the
/// scheduler is an implementation detail, not an approximation — so any
/// divergence aborts the benchmark.
fn scheduler_bench(horizon: SimTime) -> Vec<SchedulerRow> {
    let mut rows = Vec::new();
    for &n in &NODE_COUNTS {
        let wheel = run_mode_full(n, SpatialIndex::Grid, Scheduler::Wheel, horizon, false);
        let heap = run_mode_full(n, SpatialIndex::Grid, Scheduler::BinaryHeap, horizon, false);
        let stats_equal = wheel.stats == heap.stats;
        let speedup = heap.wall_s / wheel.wall_s.max(1e-9);
        println!(
            "scheduler n={n:>5}  wheel {:>8.3}s  heap {:>8.3}s  speedup {speedup:>6.2}x  \
             stats_equal={stats_equal}",
            wheel.wall_s, heap.wall_s
        );
        assert!(
            stats_equal,
            "wheel and heap schedulers diverged at n={n}: {:?} vs {:?}",
            wheel.stats, heap.stats
        );
        rows.push(SchedulerRow {
            n,
            wheel_wall_s: wheel.wall_s,
            heap_wall_s: heap.wall_s,
            speedup,
            stats_equal,
        });
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_trace = args.iter().any(|a| a == "--trace-check");
    let check_fault = args.iter().any(|a| a == "--fault-check");
    if let Some(n) = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
    {
        pds_bench::sweep::set_jobs(n);
    }
    let jobs = pds_bench::sweep::jobs();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim_scale.json".to_owned());
    let sim_seconds = if quick { 2.0 } else { 8.0 };
    let horizon = SimTime::from_secs_f64(sim_seconds);

    let mut rows = Vec::new();
    let mut all_equal = true;
    for &n in &NODE_COUNTS {
        let grid = run_mode(n, SpatialIndex::Grid, horizon);
        let brute = run_mode(n, SpatialIndex::BruteForce, horizon);
        let equal = grid.stats == brute.stats;
        all_equal &= equal;
        let speedup = brute.wall_s / grid.wall_s.max(1e-9);
        println!(
            "n={n:>5}  grid {:>8.3}s  brute {:>8.3}s  speedup {speedup:>6.2}x  \
             frames_delivered={}  stats_equal={equal}",
            grid.wall_s, brute.wall_s, grid.stats.frames_delivered
        );
        assert!(
            equal,
            "grid and brute-force runs diverged at n={n}: {:?} vs {:?}",
            grid.stats, brute.stats
        );
        rows.push((n, grid, brute, speedup, equal));
    }

    let sweep = sweep_bench(horizon, jobs);

    let sched_rows = scheduler_bench(horizon);

    // Both trace-check arms are single runs on the main thread (jobs = 1
    // semantics), so the 110% budget always compares like-for-like even
    // when the sweep above ran wide.
    let traced = check_trace.then(|| trace_check(horizon));

    // Like trace-check: single runs on the main thread, so the budget is
    // insulated from the sweep's parallelism.
    let faulted = check_fault.then(|| fault_check(horizon));

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"sim_scale\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"sim_seconds\": {sim_seconds},");
    let _ = writeln!(json, "  \"stats_equal\": {all_equal},");
    let _ = writeln!(
        json,
        "  \"sweep\": {{\"jobs\": {}, \"sequential_wall_s\": {:.6}, \
         \"parallel_wall_s\": {:.6}, \"speedup\": {:.3}, \"results_equal\": {}}},",
        sweep.jobs,
        sweep.sequential_wall_s,
        sweep.parallel_wall_s,
        sweep.speedup,
        sweep.results_equal
    );
    if let Some((off_s, on_s, ratio)) = traced {
        let _ = writeln!(
            json,
            "  \"trace_check\": {{\"jobs\": 1, \"untraced_wall_s\": {off_s:.6}, \
             \"traced_wall_s\": {on_s:.6}, \"overhead_ratio\": {ratio:.4}}},"
        );
    }
    if let Some((off_s, on_s, ratio)) = faulted {
        let _ = writeln!(
            json,
            "  \"fault_check\": {{\"jobs\": 1, \"plain_wall_s\": {off_s:.6}, \
             \"noop_plan_wall_s\": {on_s:.6}, \"overhead_ratio\": {ratio:.4}}},"
        );
    }
    let _ = writeln!(json, "  \"scheduler\": [");
    let sched_last = sched_rows.len() - 1;
    for (i, row) in sched_rows.iter().enumerate() {
        let comma = if i == sched_last { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"wheel_wall_s\": {:.6}, \"heap_wall_s\": {:.6}, \
             \"speedup\": {:.3}, \"stats_equal\": {}}}{comma}",
            row.n, row.wheel_wall_s, row.heap_wall_s, row.speedup, row.stats_equal
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"results\": [");
    let last = rows.len() - 1;
    for (i, (n, grid, brute, speedup, equal)) in rows.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"n\": {n}, \"grid_wall_s\": {:.6}, \"brute_wall_s\": {:.6}, \
             \"speedup\": {speedup:.3}, \"frames_sent\": {}, \"frames_delivered\": {}, \
             \"stats_equal\": {equal}}}{comma}",
            grid.wall_s, brute.wall_s, grid.stats.frames_sent, grid.stats.frames_delivered
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).expect("write perf record");
    println!("wrote {out_path}");
}
