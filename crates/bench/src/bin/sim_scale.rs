//! Scenario-scale benchmark of the simulator's spatial hot paths.
//!
//! Runs the same dense-chatter scenario at several node counts, once with
//! the spatial grid index and once with the brute-force scans, checks the
//! two runs produced *identical* statistics (the grid is an index, not an
//! approximation), and records wall-clock times plus the grid/brute
//! speedup as a machine-readable perf record.
//!
//! ```text
//! cargo run --release -p pds-bench --bin sim_scale -- --quick --out BENCH_sim_scale.json
//! ```
//!
//! `--quick` shortens the simulated horizon for CI smoke runs; the node
//! counts (100 / 500 / 1000) stay the same so the scaling trend is always
//! visible. Without `--quick` the horizon is 4× longer. `--trace-check`
//! additionally re-runs the largest scenario with a null trace sink
//! installed and asserts the instrumented hot path stays within 10% of the
//! uninstrumented wall time (DESIGN.md §9). `--fault-check` does the same
//! for the fault-injection seam: a no-op [`FaultPlan`] installed must not
//! change statistics and must stay within the same overhead budget
//! (DESIGN.md §12).
//!
//! `--jobs N` (default: available cores) sets the worker count for the
//! sweep-executor benchmark: the node-count × seed grid is run once
//! sequentially and once through the parallel [`SweepRunner`], the two
//! result vectors are asserted identical, and both wall times land in the
//! JSON record (`"sweep"`, including the host's core count so readers can
//! tell an honest speedup from an oversubscribed one). A `"scheduler"`
//! block compares the hierarchical timer-wheel event queue against the
//! legacy binary heap at every node count (identical statistics asserted,
//! wall times and speedup recorded). All other sections — the grid/brute
//! comparison and `--trace-check` — are single runs on the main thread,
//! i.e. always `--jobs 1` semantics, so their wall-time gates compare
//! like-for-like regardless of the flag.
//!
//! `--flight-check` applies the `--trace-check` methodology to the
//! always-on flight recorder: the largest scenario bare vs with a bounded
//! [`pds_sim::obs::FlightRecorder`] installed, identical stats asserted,
//! wall overhead within the same 110% budget (DESIGN.md §14). A
//! `"resources"` block always records kernel events dispatched, event
//! throughput, and (under the `count-alloc` feature) peak heap bytes per
//! node count.
//!
//! `--shards N` (default 4; env fallback `PDS_SIM_SHARDS`) sets the shard
//! count for the `"shards"` block: the grid scenario stepped sequentially
//! (`shards = 1`) and through the shard verdict executor (DESIGN.md §15)
//! at each shard node count — up to n = 2000, where the ISSUE 9 speedup
//! criterion applies — with identical statistics asserted and the
//! speedup recorded. Every check block carries the host `cores` so
//! readers and the baseline check can tell a real speedup from a
//! single-core run.
//!
//! `--city-n N` (env fallback `PDS_CITY_N`, default 10000) sets the node
//! count for the `"city"` block: the city-scale scenario family
//! (`pds_bench::city` — stadium exit, vehicular corridor, disaster
//! relief) run on a fixed 2-second horizon, each scenario twice with the
//! same seed (identical statistics asserted), recording events/sec and
//! peak heap bytes per node. Under `count-alloc` at n ≥ 10000 the
//! ≤ 32 KB/node budget of the slab/SoA memory diet is asserted outright.
//! Blocks whose baseline assertions are gated on host parallelism or
//! measurement features carry a `skipped_reason` member saying why the
//! recorded numbers were not asserted.
//!
//! `--check-baseline [path]` finally compares the fresh
//! record against the committed one — deterministic counters exactly,
//! speedups with 25% tolerance (shard and sweep speedups skipped entirely
//! when either record ran on one core), event throughput and per-node
//! heap with their own tolerances when the hosts are comparable, wall
//! times never — and exits nonzero on regression (see
//! `pds_bench::baseline`).

use pds_bench::{CityScenario, SweepRunner, WallClock, CITY_BYTES_PER_NODE_BUDGET};
use pds_sim::{
    Application, Context, FaultPlan, MessageMeta, Position, Scheduler, SimConfig, SimDuration,
    SimTime, SpatialIndex, World,
};
use std::fmt::Write as _;

/// Counting wrapper around the system allocator (under `count-alloc`):
/// tracks live heap bytes and the high-water mark so the `resources`
/// block can report peak heap per scenario. Lives in this binary — not
/// the library — because the workspace libraries are
/// `forbid(unsafe_code)` and a `GlobalAlloc` impl is necessarily unsafe.
#[cfg(feature = "count-alloc")]
mod heap_track {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static LIVE: AtomicUsize = AtomicUsize::new(0);
    static PEAK: AtomicUsize = AtomicUsize::new(0);

    struct CountingAlloc;

    // SAFETY: every allocation is delegated verbatim to `System`, which
    // upholds the `GlobalAlloc` contract; the atomic bookkeeping around
    // the delegated calls never touches the returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        // SAFETY: callers uphold the `GlobalAlloc` preconditions (valid,
        // non-zero-size `layout`); we forward them to `System` unchanged.
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            // SAFETY: `layout` is the caller's layout, forwarded unchanged.
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
                PEAK.fetch_max(live, Ordering::Relaxed);
            }
            p
        }

        // SAFETY: callers pass a `ptr`/`layout` pair previously returned
        // by `alloc` on this allocator, as the trait contract requires.
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            // SAFETY: `ptr`/`layout` come from a matching `alloc` above.
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    /// Resets the high-water mark to the currently live bytes.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Peak live heap bytes since the last [`reset_peak`].
    pub fn peak() -> usize {
        PEAK.load(Ordering::Relaxed)
    }
}

/// Without `count-alloc` the probes are no-ops and the JSON records 0.
#[cfg(not(feature = "count-alloc"))]
mod heap_track {
    pub fn reset_peak() {}
    pub fn peak() -> usize {
        0
    }
}

/// Node counts exercised in both modes.
const NODE_COUNTS: [usize; 3] = [100, 500, 1000];
/// Nodes per gathering spot. Peers inside a cluster are in radio range of
/// each other; clusters are far outside each other's range.
const CLUSTER_SIZE: usize = 2;
/// Spacing between cluster centers, meters (radio range 75 m).
const CLUSTER_SPACING_M: f64 = 400.0;
/// Nodes scatter up to this far from their cluster center on each axis,
/// keeping intra-cluster distances at most ~70 m.
const CLUSTER_RADIUS_M: f64 = 25.0;
/// Fraction of nodes walking (to a random point in the field) during the
/// run.
const MOVER_FRACTION: f64 = 0.1;

/// Chatter period per node.
const CHATTER_PERIOD: SimDuration = SimDuration::from_millis(10);

/// Periodic small-payload broadcaster: every node chatters, so every
/// kernel hot path (carrier sense, receiver enumeration, interference)
/// is exercised constantly. Each node starts at its own phase so the
/// cluster peers are not artificially synchronized.
struct Chatter {
    phase: SimDuration,
}

impl Application for Chatter {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer(self.phase, 0);
    }
    fn on_message(&mut self, _: &mut Context, _: MessageMeta, _: bytes::Bytes) {}
    fn on_timer(&mut self, ctx: &mut Context, _tag: u64) {
        ctx.broadcast(bytes::Bytes::from_static(&[0u8; 200]), &[]);
        ctx.set_timer(CHATTER_PERIOD, 0);
    }
}

/// Builds the scenario: `n` nodes in small gathering-spot clusters laid
/// out on a square grid at constant cluster density (so area grows with
/// `n`), with a fraction of the nodes walking.
fn build_world(n: usize, index: SpatialIndex, scheduler: Scheduler, seed: u64) -> World {
    build_world_sharded(n, index, scheduler, seed, 1)
}

fn build_world_sharded(
    n: usize,
    index: SpatialIndex,
    scheduler: Scheduler,
    seed: u64,
    shards: u32,
) -> World {
    let mut config = SimConfig::default();
    config.spatial.index = index;
    config.scheduler = scheduler;
    config.shards = shards;
    // Large-area scenario knobs (identical in both modes, so the runs stay
    // comparable): a 4-range interference horizon — at the default
    // path-loss exponent a transmitter that far away contributes under 2%
    // of the weakest decodable signal — and a coarse re-bucket cadence
    // that bounds the walker drift pad to a fraction of a meter.
    config.radio.interference_range_factor = 4.0;
    config.spatial.rebucket_interval = SimDuration::from_millis(250);
    let mut world = World::new(config, seed);
    let clusters = n.div_ceil(CLUSTER_SIZE);
    let side = (clusters as f64).sqrt().ceil() as usize;
    let mut rng = world.fork_rng(7);
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let c = i / CLUSTER_SIZE;
        let cx = (c % side) as f64 * CLUSTER_SPACING_M;
        let cy = (c / side) as f64 * CLUSTER_SPACING_M;
        let x = cx + rng.range_f64(-CLUSTER_RADIUS_M, CLUSTER_RADIUS_M);
        let y = cy + rng.range_f64(-CLUSTER_RADIUS_M, CLUSTER_RADIUS_M);
        let phase = SimDuration::from_micros(rng.range_f64(0.0, 10_000.0) as u64);
        ids.push(world.add_node(Position::new(x, y), Box::new(Chatter { phase })));
    }
    let extent = side as f64 * CLUSTER_SPACING_M;
    for &id in &ids {
        if rng.chance(MOVER_FRACTION) {
            let dest = Position::new(rng.range_f64(0.0, extent), rng.range_f64(0.0, extent));
            world.move_node(id, dest, 1.4);
        }
    }
    world
}

struct ModeRun {
    wall_s: f64,
    stats: pds_sim::Stats,
}

fn run_mode(n: usize, index: SpatialIndex, horizon: SimTime) -> ModeRun {
    run_mode_traced(n, index, horizon, false)
}

fn run_mode_traced(n: usize, index: SpatialIndex, horizon: SimTime, traced: bool) -> ModeRun {
    run_mode_full(n, index, Scheduler::default(), horizon, traced)
}

fn run_mode_full(
    n: usize,
    index: SpatialIndex,
    scheduler: Scheduler,
    horizon: SimTime,
    traced: bool,
) -> ModeRun {
    let mut world = build_world(n, index, scheduler, 42);
    if traced {
        world.set_trace_sink(Box::new(pds_sim::obs::NullSink));
    }
    let start = WallClock::start();
    world.run_until(horizon);
    let wall_s = start.elapsed_s();
    #[cfg(feature = "prof")]
    {
        println!("-- {index:?}");
        pds_sim::prof::dump(horizon.as_micros());
    }
    ModeRun {
        wall_s,
        stats: world.stats().clone(),
    }
}

/// `--trace-check`: runs the largest scenario untraced and with a
/// [`pds_sim::obs::NullSink`] installed (every emission site live, events
/// discarded), asserting identical stats and a wall-clock overhead within
/// the ISSUE 3 budget. Returns (untraced_s, traced_s, ratio).
fn trace_check(horizon: SimTime) -> (f64, f64, f64) {
    let n = NODE_COUNTS[NODE_COUNTS.len() - 1];
    // Best-of-2 per mode to damp scheduler noise on CI runners.
    let best = |traced: bool| -> ModeRun {
        let a = run_mode_traced(n, SpatialIndex::Grid, horizon, traced);
        let b = run_mode_traced(n, SpatialIndex::Grid, horizon, traced);
        assert_eq!(a.stats, b.stats, "same-seed runs must agree");
        if a.wall_s <= b.wall_s {
            a
        } else {
            b
        }
    };
    let off = best(false);
    let on = best(true);
    assert_eq!(
        on.stats, off.stats,
        "trace sink must not perturb simulation results"
    );
    let ratio = on.wall_s / off.wall_s.max(1e-9);
    println!(
        "trace-check n={n}  untraced {:.3}s  traced {:.3}s  ratio {ratio:.3}",
        off.wall_s, on.wall_s
    );
    // 10% relative budget plus a small absolute pad so sub-second quick
    // runs don't fail on timer granularity.
    assert!(
        on.wall_s <= off.wall_s * 1.10 + 0.05,
        "tracing overhead above budget: {:.3}s traced vs {:.3}s untraced",
        on.wall_s,
        off.wall_s
    );
    (off.wall_s, on.wall_s, ratio)
}

/// `--fault-check`: runs the largest scenario with no fault hook at all
/// and with a no-op [`FaultPlan`] installed (the hook live on every
/// transmission, every knob zero), asserting identical stats and
/// wall-clock overhead within the same budget as `--trace-check`: the
/// fault seam must be free when nobody uses it. Returns
/// (unfaulted_s, faulted_s, ratio).
fn fault_check(horizon: SimTime) -> (f64, f64, f64) {
    let n = NODE_COUNTS[NODE_COUNTS.len() - 1];
    // Best-of-2 per mode to damp scheduler noise on CI runners.
    let best = |noop_plan: bool| -> ModeRun {
        let run = || -> ModeRun {
            let mut world = build_world(n, SpatialIndex::Grid, Scheduler::default(), 42);
            if noop_plan {
                world.install_faults(FaultPlan::none(42));
            }
            let start = WallClock::start();
            world.run_until(horizon);
            ModeRun {
                wall_s: start.elapsed_s(),
                stats: world.stats().clone(),
            }
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats, b.stats, "same-seed runs must agree");
        if a.wall_s <= b.wall_s {
            a
        } else {
            b
        }
    };
    let off = best(false);
    let on = best(true);
    assert_eq!(
        on.stats, off.stats,
        "a no-op fault plan must not perturb simulation results"
    );
    let ratio = on.wall_s / off.wall_s.max(1e-9);
    println!(
        "fault-check n={n}  no-hook {:.3}s  noop-plan {:.3}s  ratio {ratio:.3}",
        off.wall_s, on.wall_s
    );
    // Same 10% relative + small absolute budget as trace-check.
    assert!(
        on.wall_s <= off.wall_s * 1.10 + 0.05,
        "no-op fault plan overhead above budget: {:.3}s faulted vs {:.3}s plain",
        on.wall_s,
        off.wall_s
    );
    (off.wall_s, on.wall_s, ratio)
}

/// `--flight-check`: runs the largest scenario in three modes — bare (no
/// sink), [`pds_sim::obs::NullSink`] (every emission site live, events
/// discarded), and a bounded [`pds_sim::obs::FlightRecorder`] (events
/// landing in fixed per-node rings) — asserting identical stats across
/// all three. The gated budget is the recorder's *marginal* cost over the
/// `NullSink` baseline: keeping the black box must cost no more than the
/// same 110% + pad that `--trace-check` grants tracing itself, on top of
/// the sites-live cost `--trace-check` already gates against bare. Modes
/// are sampled interleaved, best-of-3 each, so a one-shot scheduler stall
/// cannot land entirely on one side of the ratio.
/// Returns (bare_s, traced_s, recorded_s, recorded/traced ratio).
fn flight_check(horizon: SimTime) -> (f64, f64, f64, f64) {
    use pds_sim::obs::FlightRecorder;
    let n = NODE_COUNTS[NODE_COUNTS.len() - 1];
    #[derive(Clone, Copy)]
    enum Mode {
        Bare,
        Null,
        Recorded,
    }
    let run = |mode: Mode| -> ModeRun {
        let mut world = build_world(n, SpatialIndex::Grid, Scheduler::default(), 42);
        match mode {
            Mode::Bare => {}
            Mode::Null => world.set_trace_sink(Box::new(pds_sim::obs::NullSink)),
            Mode::Recorded => world.set_trace_sink(Box::new(FlightRecorder::new(
                pds_sim::obs::flight::DEFAULT_NODE_CAPACITY,
            ))),
        }
        let start = WallClock::start();
        world.run_until(horizon);
        ModeRun {
            wall_s: start.elapsed_s(),
            stats: world.stats().clone(),
        }
    };
    let mut best = [None::<ModeRun>, None, None];
    for _ in 0..3 {
        for (i, mode) in [Mode::Bare, Mode::Null, Mode::Recorded]
            .into_iter()
            .enumerate()
        {
            let sample = run(mode);
            match &mut best[i] {
                Some(prev) => {
                    assert_eq!(prev.stats, sample.stats, "same-seed runs must agree");
                    if sample.wall_s < prev.wall_s {
                        best[i] = Some(sample);
                    }
                }
                slot => *slot = Some(sample),
            }
        }
    }
    let [bare, traced, recorded] = best.map(|m| m.expect("sampled"));
    assert_eq!(
        recorded.stats, bare.stats,
        "flight recorder must not perturb simulation results"
    );
    assert_eq!(
        traced.stats, bare.stats,
        "null sink must not perturb results"
    );
    let ratio = recorded.wall_s / traced.wall_s.max(1e-9);
    println!(
        "flight-check n={n}  bare {:.3}s  null-traced {:.3}s  recorded {:.3}s  \
         recorded/traced {ratio:.3}",
        bare.wall_s, traced.wall_s, recorded.wall_s
    );
    // Same 10% relative + small absolute budget as trace-check, applied to
    // the recorder's marginal cost over discarding tracing.
    assert!(
        recorded.wall_s <= traced.wall_s * 1.10 + 0.05,
        "flight recorder overhead above budget: {:.3}s recorded vs {:.3}s null-traced",
        recorded.wall_s,
        traced.wall_s
    );
    (bare.wall_s, traced.wall_s, recorded.wall_s, ratio)
}

/// One row of the resource-accounting report: kernel events dispatched,
/// event throughput, and peak heap for the grid scenario at one node
/// count. The event count is a pure function of (n, seed, horizon) — the
/// baseline check compares it exactly — while throughput and heap depend
/// on the host and are reported for trend reading only.
struct ResourceRow {
    n: usize,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    peak_alloc_bytes: usize,
}

fn resources_bench(horizon: SimTime) -> Vec<ResourceRow> {
    NODE_COUNTS
        .iter()
        .map(|&n| {
            heap_track::reset_peak();
            let mut world = build_world(n, SpatialIndex::Grid, Scheduler::default(), 42);
            let start = WallClock::start();
            world.run_until(horizon);
            let wall_s = start.elapsed_s();
            let events = world.events_dispatched();
            let peak_alloc_bytes = heap_track::peak();
            let events_per_sec = events as f64 / wall_s.max(1e-9);
            println!(
                "resources n={n:>5}  events={events:>9}  {events_per_sec:>12.0} ev/s  \
                 peak_heap={peak_alloc_bytes} B  ({:.0} B/node)",
                peak_alloc_bytes as f64 / n as f64
            );
            ResourceRow {
                n,
                events,
                wall_s,
                events_per_sec,
                peak_alloc_bytes,
            }
        })
        .collect()
}

/// Sequential-vs-parallel sweep benchmark: the node-count × seed grid as
/// one flat job list, run at 1 worker and at `jobs` workers. Each job
/// builds its own world from its own seed, so the executor can only change
/// wall-clock order — asserted by comparing the full result vectors.
struct SweepBench {
    jobs: usize,
    sequential_wall_s: f64,
    parallel_wall_s: f64,
    speedup: f64,
    results_equal: bool,
}

fn sweep_bench(horizon: SimTime, jobs: usize) -> SweepBench {
    const SEEDS: [u64; 4] = [11, 22, 33, 44];
    let points: Vec<(usize, u64)> = NODE_COUNTS
        .iter()
        .flat_map(|&n| SEEDS.iter().map(move |&s| (n, s)))
        .collect();
    let run_all = |runner: &SweepRunner| -> (f64, Vec<pds_sim::Stats>) {
        let start = WallClock::start();
        let stats = runner.run(points.len(), |i| {
            let (n, seed) = points[i];
            let mut world = build_world(n, SpatialIndex::Grid, Scheduler::default(), seed);
            world.run_until(horizon);
            world.stats().clone()
        });
        (start.elapsed_s(), stats)
    };
    let (sequential_wall_s, seq_stats) = run_all(&SweepRunner::new(1));
    let (parallel_wall_s, par_stats) = run_all(&SweepRunner::new(jobs));
    let results_equal = seq_stats == par_stats;
    assert!(
        results_equal,
        "parallel sweep diverged from sequential run at {jobs} jobs"
    );
    let speedup = sequential_wall_s / parallel_wall_s.max(1e-9);
    println!(
        "sweep ({} worlds)  sequential {sequential_wall_s:.3}s  \
         parallel({jobs} jobs) {parallel_wall_s:.3}s  speedup {speedup:.2}x  \
         results_equal={results_equal}",
        points.len()
    );
    SweepBench {
        jobs,
        sequential_wall_s,
        parallel_wall_s,
        speedup,
        results_equal,
    }
}

/// One row of the event-scheduler comparison: the grid scenario run once
/// on the hierarchical timer wheel and once on the legacy binary heap.
struct SchedulerRow {
    n: usize,
    wheel_wall_s: f64,
    heap_wall_s: f64,
    speedup: f64,
    stats_equal: bool,
}

/// Wheel-vs-heap wall times at every node count. Like the grid/brute
/// section, the two runs must produce identical statistics — the
/// scheduler is an implementation detail, not an approximation — so any
/// divergence aborts the benchmark.
fn scheduler_bench(horizon: SimTime) -> Vec<SchedulerRow> {
    let mut rows = Vec::new();
    for &n in &NODE_COUNTS {
        let wheel = run_mode_full(n, SpatialIndex::Grid, Scheduler::Wheel, horizon, false);
        let heap = run_mode_full(n, SpatialIndex::Grid, Scheduler::BinaryHeap, horizon, false);
        let stats_equal = wheel.stats == heap.stats;
        let speedup = heap.wall_s / wheel.wall_s.max(1e-9);
        println!(
            "scheduler n={n:>5}  wheel {:>8.3}s  heap {:>8.3}s  speedup {speedup:>6.2}x  \
             stats_equal={stats_equal}",
            wheel.wall_s, heap.wall_s
        );
        assert!(
            stats_equal,
            "wheel and heap schedulers diverged at n={n}: {:?} vs {:?}",
            wheel.stats, heap.stats
        );
        rows.push(SchedulerRow {
            n,
            wheel_wall_s: wheel.wall_s,
            heap_wall_s: heap.wall_s,
            speedup,
            stats_equal,
        });
    }
    rows
}

/// One row of the shard-scaling comparison: the grid scenario stepped
/// sequentially (`shards = 1`) and through the shard verdict executor.
struct ShardRow {
    n: usize,
    seq_wall_s: f64,
    sharded_wall_s: f64,
    speedup: f64,
    stats_equal: bool,
}

/// Node counts for the shard-scaling section. These extend past the main
/// grid at 2000 because the ISSUE 9 speedup criterion is stated at
/// n ≥ 2000, where per-round verdict work dominates merge overhead.
const SHARD_NODE_COUNTS: [usize; 3] = [500, 1000, 2000];

/// Sequential vs sharded stepping at every shard node count. Like every
/// other section, the executor is an index, not an approximation: the two
/// runs must produce identical statistics or the benchmark aborts. The
/// speedup is only meaningful on multi-core hosts — the baseline check
/// skips it when either record ran with `cores == 1`.
fn shards_bench(horizon: SimTime, shards: u32) -> Vec<ShardRow> {
    let mut rows = Vec::new();
    for &n in &SHARD_NODE_COUNTS {
        let run = |shards: u32| -> ModeRun {
            let mut world =
                build_world_sharded(n, SpatialIndex::Grid, Scheduler::default(), 42, shards);
            let start = WallClock::start();
            world.run_until(horizon);
            ModeRun {
                wall_s: start.elapsed_s(),
                stats: world.stats().clone(),
            }
        };
        let seq = run(1);
        let sharded = run(shards);
        let stats_equal = seq.stats == sharded.stats;
        let speedup = seq.wall_s / sharded.wall_s.max(1e-9);
        println!(
            "shards n={n:>5}  seq {:>8.3}s  sharded({shards}) {:>8.3}s  speedup {speedup:>6.2}x  \
             stats_equal={stats_equal}",
            seq.wall_s, sharded.wall_s
        );
        assert!(
            stats_equal,
            "sharded stepping diverged from sequential at n={n}, shards={shards}: {:?} vs {:?}",
            seq.stats, sharded.stats
        );
        rows.push(ShardRow {
            n,
            seq_wall_s: seq.wall_s,
            sharded_wall_s: sharded.wall_s,
            speedup,
            stats_equal,
        });
    }
    rows
}

/// Simulated horizon for the city family, independent of `--quick`: the
/// city block stays comparable between quick and full records, and the
/// disaster-relief partition window ([0.5 s, 1.2 s)) always falls inside
/// the run.
const CITY_SIM_SECONDS: f64 = 2.0;

/// One row of the city-scale report (`pds_bench::city`): a scenario run
/// twice with the same seed — statistics must match exactly — with peak
/// heap and event throughput from the first run. The event count is a
/// pure function of `(scenario, n, seed)`; the baseline check compares it
/// exactly when the records ran the same `n`.
struct CityRow {
    scenario: &'static str,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    peak_alloc_bytes: usize,
    stats_equal: bool,
}

/// Runs the whole city family at one node count. Asserts same-seed
/// reproducibility per scenario and — when the `count-alloc` feature is
/// measuring and `n` is at least the 10k floor the budget is stated at —
/// the ≤ 32 KB/node peak-heap budget of the slab/SoA diet (DESIGN.md §16).
fn city_bench(n: usize) -> Vec<CityRow> {
    let horizon = SimTime::from_secs_f64(CITY_SIM_SECONDS);
    CityScenario::ALL
        .iter()
        .map(|&scenario| {
            heap_track::reset_peak();
            let mut world = scenario.build(n, 42);
            let start = WallClock::start();
            world.run_until(horizon);
            let wall_s = start.elapsed_s();
            let peak_alloc_bytes = heap_track::peak();
            let events = world.events_dispatched();
            let first_stats = world.stats().clone();
            drop(world);
            let mut world = scenario.build(n, 42);
            world.run_until(horizon);
            let stats_equal = *world.stats() == first_stats;
            assert!(
                stats_equal,
                "city {} diverged between same-seed runs at n={n}",
                scenario.key()
            );
            let events_per_sec = events as f64 / wall_s.max(1e-9);
            let bytes_per_node = peak_alloc_bytes as f64 / n as f64;
            println!(
                "city {:<20} n={n:>6}  events={events:>9}  {events_per_sec:>12.0} ev/s  \
                 peak_heap={peak_alloc_bytes} B  ({bytes_per_node:.0} B/node)  \
                 stats_equal={stats_equal}",
                scenario.key()
            );
            if peak_alloc_bytes > 0 && n >= 10_000 {
                assert!(
                    bytes_per_node <= CITY_BYTES_PER_NODE_BUDGET as f64,
                    "city {} blew the per-node heap budget at n={n}: \
                     {bytes_per_node:.0} B/node > {CITY_BYTES_PER_NODE_BUDGET} B/node",
                    scenario.key()
                );
            }
            CityRow {
                scenario: scenario.key(),
                events,
                wall_s,
                events_per_sec,
                peak_alloc_bytes,
                stats_equal,
            }
        })
        .collect()
}

fn main() -> std::process::ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_trace = args.iter().any(|a| a == "--trace-check");
    let check_fault = args.iter().any(|a| a == "--fault-check");
    let check_flight = args.iter().any(|a| a == "--flight-check");
    // `--check-baseline [path]`: compare the fresh record against the
    // committed one; the path defaults to the committed record itself.
    let check_baseline = args.iter().position(|a| a == "--check-baseline").map(|i| {
        args.get(i + 1)
            .filter(|s| !s.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_sim_scale.json".to_owned())
    });
    if let Some(n) = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
    {
        pds_bench::sweep::set_jobs(n);
    }
    let jobs = pds_bench::sweep::jobs();
    // `--shards N` (env fallback `PDS_SIM_SHARDS`, default 4): shard count
    // for the shard-scaling section below.
    let shards = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u32>().ok())
        .or_else(|| {
            std::env::var("PDS_SIM_SHARDS")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .unwrap_or(4)
        .max(1);
    // `--city-n N` (env fallback `PDS_CITY_N`, default 10000): node count
    // for the city-scale scenario family. The quick CI run keeps the
    // default; nightly CI sets 50000; 100000 is for manual capacity runs.
    let city_n = args
        .iter()
        .position(|a| a == "--city-n")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok())
        .or_else(|| {
            std::env::var("PDS_CITY_N")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .unwrap_or(10_000)
        .max(1);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim_scale.json".to_owned());
    let sim_seconds = if quick { 2.0 } else { 8.0 };
    let horizon = SimTime::from_secs_f64(sim_seconds);

    let mut rows = Vec::new();
    let mut all_equal = true;
    for &n in &NODE_COUNTS {
        let grid = run_mode(n, SpatialIndex::Grid, horizon);
        let brute = run_mode(n, SpatialIndex::BruteForce, horizon);
        let equal = grid.stats == brute.stats;
        all_equal &= equal;
        let speedup = brute.wall_s / grid.wall_s.max(1e-9);
        println!(
            "n={n:>5}  grid {:>8.3}s  brute {:>8.3}s  speedup {speedup:>6.2}x  \
             frames_delivered={}  stats_equal={equal}",
            grid.wall_s, brute.wall_s, grid.stats.frames_delivered
        );
        assert!(
            equal,
            "grid and brute-force runs diverged at n={n}: {:?} vs {:?}",
            grid.stats, brute.stats
        );
        rows.push((n, grid, brute, speedup, equal));
    }

    let sweep = sweep_bench(horizon, jobs);

    let sched_rows = scheduler_bench(horizon);

    let shard_rows = shards_bench(horizon, shards);

    // Both trace-check arms are single runs on the main thread (jobs = 1
    // semantics), so the 110% budget always compares like-for-like even
    // when the sweep above ran wide.
    let traced = check_trace.then(|| trace_check(horizon));

    // Like trace-check: single runs on the main thread, so the budget is
    // insulated from the sweep's parallelism.
    let faulted = check_fault.then(|| fault_check(horizon));

    // Same single-run-on-main-thread methodology for the flight recorder.
    let flight = check_flight.then(|| flight_check(horizon));

    let resources = resources_bench(horizon);

    let city_rows = city_bench(city_n);

    // Honest-speedup context for the sweep block: a parallel run with
    // more jobs than cores measures scheduling pressure, not the
    // executor, so readers (and the baseline check) need the host width.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"sim_scale\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"sim_seconds\": {sim_seconds},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"stats_equal\": {all_equal},");
    // Blocks whose baseline assertions are cores-gated say so in the
    // record itself, so a reader of a single-core JSON knows the speedup
    // numbers were recorded but never asserted.
    let cores_skip = (cores == 1)
        .then_some(", \"skipped_reason\": \"single-core host: speedup not asserted\"")
        .unwrap_or("");
    let _ = writeln!(
        json,
        "  \"sweep\": {{\"jobs\": {}, \"cores\": {cores}, \"sequential_wall_s\": {:.6}, \
         \"parallel_wall_s\": {:.6}, \"speedup\": {:.3}, \"results_equal\": {}{cores_skip}}},",
        sweep.jobs,
        sweep.sequential_wall_s,
        sweep.parallel_wall_s,
        sweep.speedup,
        sweep.results_equal
    );
    if let Some((off_s, on_s, ratio)) = traced {
        let _ = writeln!(
            json,
            "  \"trace_check\": {{\"jobs\": 1, \"cores\": {cores}, \
             \"untraced_wall_s\": {off_s:.6}, \
             \"traced_wall_s\": {on_s:.6}, \"overhead_ratio\": {ratio:.4}}},"
        );
    }
    if let Some((off_s, on_s, ratio)) = faulted {
        let _ = writeln!(
            json,
            "  \"fault_check\": {{\"jobs\": 1, \"cores\": {cores}, \
             \"plain_wall_s\": {off_s:.6}, \
             \"noop_plan_wall_s\": {on_s:.6}, \"overhead_ratio\": {ratio:.4}}},"
        );
    }
    if let Some((bare_s, traced_s, on_s, ratio)) = flight {
        let _ = writeln!(
            json,
            "  \"flight_check\": {{\"jobs\": 1, \"cores\": {cores}, \
             \"bare_wall_s\": {bare_s:.6}, \
             \"traced_wall_s\": {traced_s:.6}, \"recorded_wall_s\": {on_s:.6}, \
             \"overhead_ratio\": {ratio:.4}}},"
        );
    }
    let _ = writeln!(json, "  \"resources\": [");
    let res_last = resources.len() - 1;
    for (i, row) in resources.iter().enumerate() {
        let comma = if i == res_last { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"events\": {}, \"wall_s\": {:.6}, \
             \"events_per_sec\": {:.0}, \"peak_alloc_bytes\": {}, \
             \"bytes_per_node\": {:.0}}}{comma}",
            row.n,
            row.events,
            row.wall_s,
            row.events_per_sec,
            row.peak_alloc_bytes,
            row.peak_alloc_bytes as f64 / row.n as f64
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"scheduler\": [");
    let sched_last = sched_rows.len() - 1;
    for (i, row) in sched_rows.iter().enumerate() {
        let comma = if i == sched_last { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"wheel_wall_s\": {:.6}, \"heap_wall_s\": {:.6}, \
             \"speedup\": {:.3}, \"stats_equal\": {}}}{comma}",
            row.n, row.wheel_wall_s, row.heap_wall_s, row.speedup, row.stats_equal
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"city\": {{\"n\": {city_n}, \"sim_seconds\": {CITY_SIM_SECONDS}, \
         \"budget_bytes_per_node\": {CITY_BYTES_PER_NODE_BUDGET}{}, \"rows\": [",
        if cfg!(feature = "count-alloc") {
            ""
        } else {
            ", \"skipped_reason\": \"count-alloc feature off: byte budget not measured\""
        }
    );
    let city_last = city_rows.len() - 1;
    for (i, row) in city_rows.iter().enumerate() {
        let comma = if i == city_last { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"n\": {city_n}, \"events\": {}, \"wall_s\": {:.6}, \
             \"events_per_sec\": {:.0}, \"peak_alloc_bytes\": {}, \"bytes_per_node\": {:.0}, \
             \"stats_equal\": {}}}{comma}",
            row.scenario,
            row.events,
            row.wall_s,
            row.events_per_sec,
            row.peak_alloc_bytes,
            row.peak_alloc_bytes as f64 / city_n as f64,
            row.stats_equal
        );
    }
    let _ = writeln!(json, "  ]}},");
    let _ = writeln!(
        json,
        "  \"shards\": {{\"count\": {shards}{cores_skip}, \"rows\": ["
    );
    let shard_last = shard_rows.len() - 1;
    for (i, row) in shard_rows.iter().enumerate() {
        let comma = if i == shard_last { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"seq_wall_s\": {:.6}, \"sharded_wall_s\": {:.6}, \
             \"speedup\": {:.3}, \"stats_equal\": {}}}{comma}",
            row.n, row.seq_wall_s, row.sharded_wall_s, row.speedup, row.stats_equal
        );
    }
    let _ = writeln!(json, "  ]}},");
    let _ = writeln!(json, "  \"results\": [");
    let last = rows.len() - 1;
    for (i, (n, grid, brute, speedup, equal)) in rows.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"n\": {n}, \"grid_wall_s\": {:.6}, \"brute_wall_s\": {:.6}, \
             \"speedup\": {speedup:.3}, \"frames_sent\": {}, \"frames_delivered\": {}, \
             \"stats_equal\": {equal}}}{comma}",
            grid.wall_s, brute.wall_s, grid.stats.frames_sent, grid.stats.frames_delivered
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    // Read the committed baseline BEFORE writing the fresh record — with
    // default paths both point at the same file.
    let baseline = check_baseline.map(|path| {
        let content =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        (path, content)
    });
    std::fs::write(&out_path, &json).expect("write perf record");
    println!("wrote {out_path}");
    if let Some((path, committed)) = baseline {
        use pds_bench::baseline::{check, Verdict};
        match check(&committed, &json).expect("parse perf records") {
            Verdict::Incomparable(why) => println!("baseline check skipped: {why}"),
            Verdict::Compared(regressions) if regressions.is_empty() => {
                println!("baseline check passed against {path}");
            }
            Verdict::Compared(regressions) => {
                eprintln!("baseline regressions against {path}:");
                for r in &regressions {
                    eprintln!("  {r}");
                }
                return std::process::ExitCode::FAILURE;
            }
        }
    }
    std::process::ExitCode::SUCCESS
}
