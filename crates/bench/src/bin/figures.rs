//! Regenerates the paper's evaluation figures as console tables and CSV
//! files.
//!
//! ```text
//! figures [--quick] [--seeds N] [--jobs N] [--out DIR] <experiment>... | all | list
//! ```
//!
//! Each experiment name matches a paper figure (`fig3` … `fig16`,
//! `saturation`, `leaky-sweep`, `ack-sweep`). Results are printed and
//! written to `<out>/<experiment>[-i].csv` (default `results/`).
//!
//! `--jobs N` (or `PDS_BENCH_JOBS=N`) sets the sweep-executor worker
//! count; the default is the number of available cores and `--jobs 1`
//! restores fully sequential runs. Output is bit-identical across job
//! counts (see `pds_bench::sweep`).

use pds_bench::experiments::{self, RunConfig};
use pds_bench::WallClock;
use std::path::PathBuf;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = RunConfig::paper();
    let mut out_dir = PathBuf::from("results");

    if let Some(i) = args.iter().position(|a| a == "--quick") {
        args.remove(i);
        config = RunConfig::quick();
    }
    if let Some(i) = args.iter().position(|a| a == "--seeds") {
        args.remove(i);
        let n: usize = args
            .get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage("--seeds needs a number"));
        args.remove(i);
        config.seeds = (1..=n as u64).map(|k| k * 11).collect();
    }
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        args.remove(i);
        let n: usize = args
            .get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage("--jobs needs a number"));
        args.remove(i);
        pds_bench::sweep::set_jobs(n);
    }
    if let Some(i) = args.iter().position(|a| a == "--out") {
        args.remove(i);
        if i >= args.len() {
            usage("--out needs a directory");
        }
        out_dir = PathBuf::from(args.remove(i));
    }
    if args.is_empty() {
        usage("no experiment given");
    }

    let registry = experiments::all();
    if args.iter().any(|a| a == "list") {
        for e in &registry {
            println!("{:12}  {}", e.name, e.describes);
        }
        return;
    }
    let selected: Vec<&experiments::Experiment> = if args.iter().any(|a| a == "all") {
        registry.iter().collect()
    } else {
        args.iter()
            .map(|name| {
                registry
                    .iter()
                    .find(|e| e.name == name)
                    .unwrap_or_else(|| usage(&format!("unknown experiment `{name}`")))
            })
            .collect()
    };

    for e in selected {
        let started = WallClock::start();
        eprintln!(">> running {} ({})", e.name, e.describes);
        let tables = (e.run)(&config);
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.render());
            let slug = if tables.len() == 1 {
                e.name.to_string()
            } else {
                format!("{}-{}", e.name, i + 1)
            };
            if let Err(err) = table.write_csv(&out_dir, &slug) {
                eprintln!("!! could not write {slug}.csv: {err}");
            }
        }
        eprintln!(
            "<< {} done in {:.1}s (CSV in {})",
            e.name,
            started.elapsed_s(),
            out_dir.display()
        );
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: figures [--quick] [--seeds N] [--jobs N] [--out DIR] <experiment>... | all | list"
    );
    // A usage error has nothing to unwind; this is the audited exception
    // to the `process::exit` ban (clippy.toml).
    #[allow(clippy::disallowed_methods)]
    std::process::exit(2);
}
