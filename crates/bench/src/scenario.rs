//! Scenario builders: the paper's static grid and mobility venues, with
//! workload seeding and consumer orchestration (§VI-A).

use crate::metrics::RunMetrics;
use pds_core::{AttrValue, ChunkId, DataDescriptor, PdsConfig, PdsNode, QueryFilter};
use pds_mobility::{grid, MobilityTrace, ObservationParams, PersonId, TraceAction, TraceInstaller};
use pds_sim::{NodeId, SimConfig, SimDuration, SimRng, SimTime, Stats, World};
use std::collections::BTreeMap;

/// The paper's metadata entry size regime: short attributes giving ~40-byte
/// encodings (the paper budgets 30 bytes).
fn entry_descriptor(i: usize) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("ns", "e")
        .attr("type", "no2")
        .attr("time", AttrValue::Time(1_480_000_000 + i as i64))
        .build()
}

/// Descriptor of a chunked item of `total_chunks` chunks.
fn item_descriptor(name: &str, total_chunks: u32) -> DataDescriptor {
    DataDescriptor::builder()
        .attr("ns", "e")
        .attr("type", "video")
        .attr("name", name)
        .attr("total_chunks", i64::from(total_chunks))
        .build()
}

/// A generated workload: which node index holds which metadata entries and
/// chunks at simulation start.
#[derive(Debug, Clone)]
pub struct Workload {
    metadata_per_node: Vec<Vec<DataDescriptor>>,
    chunks_per_node: Vec<Vec<(ChunkId, Vec<u8>)>>,
    /// Number of distinct metadata entries seeded (ground truth for recall).
    pub total_entries: usize,
    /// The chunked item descriptor, when a chunk workload was added.
    pub item: Option<DataDescriptor>,
}

impl Workload {
    /// An empty workload over `n_nodes` nodes.
    #[must_use]
    pub fn new(n_nodes: usize) -> Self {
        Self {
            metadata_per_node: vec![Vec::new(); n_nodes],
            chunks_per_node: vec![Vec::new(); n_nodes],
            total_entries: 0,
            item: None,
        }
    }

    /// Distributes `entries` distinct metadata entries uniformly at random,
    /// `redundancy` copies each on distinct nodes (§VI-A).
    #[must_use]
    pub fn with_metadata(mut self, entries: usize, redundancy: usize, seed: u64) -> Self {
        let n = self.metadata_per_node.len();
        let mut rng = SimRng::new(seed ^ 0x6d65_7461);
        for i in 0..entries {
            let d = entry_descriptor(self.total_entries + i);
            let mut holders: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut holders);
            for &h in holders.iter().take(redundancy.max(1).min(n)) {
                self.metadata_per_node[h].push(d.clone());
            }
        }
        self.total_entries += entries;
        self
    }

    /// Adds one chunked item of `size_bytes` (chunked at `chunk_size`),
    /// each chunk placed on `redundancy` distinct random nodes, never on
    /// `exclude` (the consumer, so retrieval is not trivially local).
    #[must_use]
    pub fn with_chunked_item(
        mut self,
        name: &str,
        size_bytes: usize,
        chunk_size: usize,
        redundancy: usize,
        exclude: usize,
        seed: u64,
    ) -> Self {
        let n = self.chunks_per_node.len();
        let total_chunks = size_bytes.div_ceil(chunk_size) as u32;
        let item = item_descriptor(name, total_chunks);
        let mut rng = SimRng::new(seed ^ 0x6368_756e_6b73);
        let candidates: Vec<usize> = (0..n).filter(|&i| i != exclude).collect();
        for c in 0..total_chunks {
            let chunk_bytes = if (c + 1) as usize * chunk_size <= size_bytes {
                chunk_size
            } else {
                size_bytes - c as usize * chunk_size
            };
            let data = vec![(c % 251) as u8; chunk_bytes];
            let mut holders = candidates.clone();
            rng.shuffle(&mut holders);
            for &h in holders.iter().take(redundancy.max(1).min(holders.len())) {
                self.chunks_per_node[h].push((ChunkId(c), data.clone()));
            }
        }
        self.item = Some(item);
        self
    }

    fn build_node(&self, index: usize, pds: &PdsConfig, seed: u64) -> PdsNode {
        let mut node = PdsNode::new(pds.clone(), seed ^ (index as u64) << 16);
        for d in &self.metadata_per_node[index] {
            node = node.with_metadata(d.clone(), None);
        }
        if let Some(item) = &self.item {
            for (c, data) in &self.chunks_per_node[index] {
                node = node.with_chunk(item.clone(), *c, bytes::Bytes::from(data.clone()));
            }
        }
        node
    }
}

/// The static scenario: an `rows × cols` grid at 8-neighbor spacing with
/// the consumer at the center (§VI-A).
#[derive(Debug, Clone)]
pub struct GridScenario {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Radio/transport configuration.
    pub sim: SimConfig,
    /// Protocol configuration.
    pub pds: PdsConfig,
    /// Run seed (drives radio loss, jitter, workload placement).
    pub seed: u64,
}

impl GridScenario {
    /// The paper's default: 10×10 grid, calibrated leaky bucket + ack.
    #[must_use]
    pub fn paper_default(seed: u64) -> Self {
        Self {
            rows: 10,
            cols: 10,
            sim: SimConfig::paper_multi_hop(),
            pds: PdsConfig::default(),
            seed,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Builds the world with `workload` seeded onto the nodes.
    #[must_use]
    pub fn build(&self, workload: &Workload) -> Built {
        let mut world = World::new(self.sim.clone(), self.seed);
        let positions = grid::positions(self.rows, self.cols, grid::SPACING_M);
        let mut nodes = Vec::with_capacity(positions.len());
        for (i, pos) in positions.iter().enumerate() {
            let node = workload.build_node(i, &self.pds, self.seed.wrapping_add(7919));
            nodes.push(world.add_node(*pos, Box::new(node)));
        }
        let consumer = nodes[grid::center_index(self.rows, self.cols)];
        let center_pool =
            grid::center_subgrid(self.rows, self.cols, 5.min(self.rows).min(self.cols))
                .into_iter()
                .map(|i| nodes[i])
                .collect();
        // Let nodes start (timers arm) before any consumer acts.
        world.run_until(SimTime::from_secs_f64(0.1));
        Built {
            world,
            nodes,
            consumer,
            center_pool,
            total_entries: workload.total_entries,
            item: workload.item.clone(),
        }
    }
}

/// A built scenario ready to run consumers on.
pub struct Built {
    /// The simulated world.
    pub world: World,
    /// All node ids (row-major for grids; initial people for mobility).
    pub nodes: Vec<NodeId>,
    /// The designated primary consumer (grid center / a random person).
    pub consumer: NodeId,
    /// The pool multiple consumers are drawn from (center 5×5 sub-grid on
    /// grids, present people under mobility).
    pub center_pool: Vec<NodeId>,
    /// Ground truth: distinct metadata entries seeded.
    pub total_entries: usize,
    /// The chunked item, if any.
    pub item: Option<DataDescriptor>,
}

/// How long the driver steps the world between completion checks.
const STEP: SimDuration = SimDuration::from_millis(250);

impl Built {
    /// Starts a PDD discovery at `node` for all metadata.
    pub fn start_discovery(&mut self, node: NodeId) {
        self.world.with_app::<PdsNode, _>(node, |n, ctx| {
            n.start_discovery(ctx, QueryFilter::match_all());
        });
    }

    /// Starts a PDR retrieval of the workload's chunked item at `node`.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no chunked item.
    pub fn start_retrieval(&mut self, node: NodeId) {
        let item = self.item.clone().expect("workload has a chunked item");
        self.world.with_app::<PdsNode, _>(node, |n, ctx| {
            n.start_retrieval(ctx, item);
        });
    }

    /// Starts an MDR retrieval of the workload's chunked item at `node`.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no chunked item.
    pub fn start_mdr(&mut self, node: NodeId) {
        let item = self.item.clone().expect("workload has a chunked item");
        self.world.with_app::<PdsNode, _>(node, |n, ctx| {
            n.start_mdr_retrieval(ctx, item);
        });
    }

    /// Steps the world until `nodes`' current sessions all finish (or the
    /// deadline passes). Returns whether all finished.
    pub fn run_until_done(&mut self, nodes: &[NodeId], deadline: SimTime) -> bool {
        loop {
            let all_done = nodes.iter().all(|&id| {
                self.world
                    .app::<PdsNode>(id)
                    .map(|n| {
                        let d = n.discovery_report().map(|r| r.finished_at.is_some());
                        let r = n.retrieval_report().map(|r| r.finished_at.is_some());
                        match (d, r) {
                            (Some(d), Some(r)) => d && r,
                            (Some(d), None) => d,
                            (None, Some(r)) => r,
                            (None, None) => false,
                        }
                    })
                    .unwrap_or(true) // departed nodes do not block
            });
            if all_done {
                return true;
            }
            if self.world.now() >= deadline {
                return false;
            }
            let next = self.world.now() + STEP;
            self.world.run_until(next.min(deadline));
        }
    }

    /// Discovery metrics for `node`, with overhead measured against the
    /// `before` stats snapshot.
    #[must_use]
    pub fn discovery_metrics(&self, node: NodeId, before: &Stats) -> RunMetrics {
        let Some(report) = self
            .world
            .app::<PdsNode>(node)
            .and_then(PdsNode::discovery_report)
        else {
            return RunMetrics::empty();
        };
        let d = self.world.stats().since(before);
        RunMetrics {
            recall: if self.total_entries == 0 {
                1.0
            } else {
                report.entries as f64 / self.total_entries as f64
            },
            latency_s: report.latency.as_secs_f64(),
            overhead_mb: d.bytes_sent as f64 / 1e6,
            overhead_by_phase_mb: RunMetrics::phase_split_mb(&d),
            rounds: f64::from(report.rounds),
            finished: report.finished_at.is_some(),
        }
    }

    /// Retrieval metrics for `node`, with overhead measured against the
    /// `before` stats snapshot.
    #[must_use]
    pub fn retrieval_metrics(&self, node: NodeId, before: &Stats) -> RunMetrics {
        let Some(report) = self
            .world
            .app::<PdsNode>(node)
            .and_then(PdsNode::retrieval_report)
        else {
            return RunMetrics::empty();
        };
        let d = self.world.stats().since(before);
        RunMetrics {
            recall: report.recall,
            latency_s: report.latency.as_secs_f64(),
            overhead_mb: d.bytes_sent as f64 / 1e6,
            overhead_by_phase_mb: RunMetrics::phase_split_mb(&d),
            rounds: f64::from(report.rounds),
            finished: report.finished_at.is_some(),
        }
    }
}

/// The mobility scenario: a venue preset, a rate multiplier and a trace
/// applied to the world (§VI-B-2).
#[derive(Debug, Clone)]
pub struct MobilityScenario {
    /// Venue observation parameters.
    pub params: ObservationParams,
    /// Rate multiplier (the paper sweeps 0.5×–2×).
    pub multiplier: f64,
    /// Trace length.
    pub duration: SimDuration,
    /// Radio/transport configuration.
    pub sim: SimConfig,
    /// Protocol configuration.
    pub pds: PdsConfig,
    /// Run seed.
    pub seed: u64,
}

impl MobilityScenario {
    /// Builds the world, installs the trace, seeds `workload` onto the
    /// initially present people, and picks a consumer who stays (their
    /// departure events are dropped — a consumer that walks away has no
    /// recall to measure).
    #[must_use]
    pub fn build(&self, workload: &Workload) -> Built {
        let trace =
            MobilityTrace::generate(&self.params, self.duration, self.multiplier, self.seed);
        // Pick the consumer among the initial people and keep them present.
        let consumer_person = trace.initial_people()[0].0;
        let filtered = MobilityTrace::from_parts(
            trace.initial_people().to_vec(),
            trace
                .events()
                .iter()
                .filter(|ev| !(ev.person == consumer_person && ev.action == TraceAction::Leave))
                .cloned()
                .collect(),
        );
        let mut world = World::new(self.sim.clone(), self.seed);
        let assignments: BTreeMap<PersonId, usize> = filtered
            .initial_people()
            .iter()
            .enumerate()
            .map(|(i, &(p, _))| (p, i))
            .collect();
        let pds = self.pds.clone();
        let wl = workload.clone();
        let seed = self.seed;
        let installer = TraceInstaller::install(&mut world, &filtered, move |person| {
            match assignments.get(&person) {
                Some(&i) => Box::new(wl.build_node(i, &pds, seed.wrapping_add(7919))),
                // Late joiners carry no pre-seeded data.
                None => Box::new(PdsNode::new(pds.clone(), seed ^ u64::from(person.0) << 24)),
            }
        });
        let consumer = installer
            .node_of(consumer_person)
            .expect("consumer present at start");
        world.run_until(SimTime::from_secs_f64(0.1));
        let center_pool = installer.present_nodes();
        let nodes = installer.present_nodes();
        Built {
            world,
            nodes,
            consumer,
            center_pool,
            total_entries: workload.total_entries,
            item: workload.item.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_workload_respects_redundancy() {
        let w = Workload::new(10).with_metadata(100, 3, 1);
        let copies: usize = w.metadata_per_node.iter().map(Vec::len).sum();
        assert_eq!(copies, 300);
        assert_eq!(w.total_entries, 100);
    }

    #[test]
    fn chunk_workload_excludes_consumer_and_covers_item() {
        let w = Workload::new(10).with_chunked_item("vid", 1_000_000, 256 * 1024, 2, 3, 1);
        assert!(w.chunks_per_node[3].is_empty(), "consumer holds nothing");
        let total: usize = w.chunks_per_node.iter().map(Vec::len).sum();
        assert_eq!(total, 4 * 2, "4 chunks × 2 copies");
        let item = w.item.as_ref().expect("item");
        assert_eq!(item.total_chunks(), Some(4));
        // Last chunk is short: 1 MB = 3×256 KiB + 213,568 bytes.
        let last: usize = w
            .chunks_per_node
            .iter()
            .flatten()
            .filter(|(c, _)| *c == ChunkId(3))
            .map(|(_, d)| d.len())
            .next()
            .expect("chunk 3 placed");
        assert_eq!(last, 1_000_000 - 3 * 256 * 1024);
    }

    #[test]
    fn grid_scenario_builds_and_runs_discovery() {
        let mut sc = GridScenario::paper_default(1);
        sc.rows = 3;
        sc.cols = 3;
        let wl = Workload::new(9).with_metadata(18, 1, 1);
        let mut built = sc.build(&wl);
        assert_eq!(built.nodes.len(), 9);
        let before = built.world.stats().clone();
        let consumer = built.consumer;
        built.start_discovery(consumer);
        let done = built.run_until_done(&[consumer], SimTime::from_secs_f64(20.0));
        assert!(done, "discovery should finish in 20 s");
        let m = built.discovery_metrics(consumer, &before);
        assert!(m.finished);
        assert!(m.recall > 0.95, "recall = {}", m.recall);
        assert!(m.overhead_mb > 0.0);
    }

    #[test]
    fn mobility_scenario_supports_chunk_workloads() {
        let sc = MobilityScenario {
            params: pds_mobility::presets::classroom(),
            multiplier: 0.5,
            duration: SimDuration::from_secs(120),
            sim: SimConfig::paper_multi_hop(),
            pds: PdsConfig::default(),
            seed: 9,
        };
        let wl = Workload::new(30).with_chunked_item("vid", 512 * 1024, 64 * 1024, 2, 0, 9);
        let mut built = sc.build(&wl);
        let consumer = built.consumer;
        let before = built.world.stats().clone();
        built.start_retrieval(consumer);
        let done = built.run_until_done(&[consumer], SimTime::from_secs_f64(90.0));
        assert!(done, "retrieval under mild churn finishes");
        let m = built.retrieval_metrics(consumer, &before);
        assert!(m.recall > 0.99, "recall = {}", m.recall);
    }

    #[test]
    fn retrieval_metrics_report_unstarted_as_empty() {
        let mut sc = GridScenario::paper_default(3);
        sc.rows = 3;
        sc.cols = 3;
        let wl = Workload::new(9).with_metadata(9, 1, 3);
        let built = sc.build(&wl);
        let before = built.world.stats().clone();
        let m = built.retrieval_metrics(built.consumer, &before);
        assert!(!m.finished);
        assert_eq!(m.recall, 0.0);
    }

    #[test]
    fn mobility_scenario_keeps_consumer_present() {
        let sc = MobilityScenario {
            params: pds_mobility::presets::classroom(),
            multiplier: 2.0,
            duration: SimDuration::from_secs(120),
            sim: SimConfig::paper_multi_hop(),
            pds: PdsConfig::default(),
            seed: 5,
        };
        let wl = Workload::new(30).with_metadata(60, 1, 5);
        let mut built = sc.build(&wl);
        let consumer = built.consumer;
        built.world.run_until(SimTime::from_secs_f64(120.0));
        assert!(built.world.is_alive(consumer), "consumer never leaves");
    }
}
