//! Perf-baseline regression checking for the `sim_scale` record.
//!
//! `sim_scale --check-baseline [path]` re-runs the benchmark and compares
//! the fresh record against the committed `BENCH_sim_scale.json`. The
//! comparison is deliberately asymmetric about what it trusts:
//!
//! - **deterministic counters** (`frames_sent`, `frames_delivered`,
//!   `events`) must match *exactly* — they are functions of the seed and
//!   the horizon, so any drift is a silent behavior change, not noise;
//! - **equality flags** (`stats_equal`, `results_equal`) must be `true`
//!   in the fresh record;
//! - **speedups** tolerate 25% degradation — they divide two wall times,
//!   so runner noise partially cancels but does not vanish;
//! - **event throughput** (`events_per_sec`, in the `resources` and
//!   `city` blocks) tolerates 50% degradation and is compared only when
//!   both records ran on hosts of the same core count — an absolute rate
//!   on different hardware is a different experiment;
//! - **peak heap per node** (`bytes_per_node`) may grow at most 25%, and
//!   only counts when both records measured a nonzero peak (both built
//!   with `count-alloc`) — the memory diet must not quietly un-diet;
//! - **absolute wall times** are never compared — CI runners differ too
//!   much for an absolute gate to stay honest.
//!
//! The `city` block is additionally gated on both records having run the
//! same city node count and horizon (nightly runs 50k against a committed
//! 10k record: `stats_equal` is still enforced, counters are not).
//!
//! The sweep speedup is additionally skipped when either record ran with
//! more jobs than the host had cores (`sweep.cores < sweep.jobs`): an
//! oversubscribed "parallel" run measures scheduling pressure, not the
//! executor. Both the sweep and the shard-executor speedups are skipped
//! outright when either record ran on a single core — parallel wall time
//! on one core measures context-switch overhead, not the executors —
//! while the `stats_equal` flags in those sections are enforced
//! unconditionally (determinism does not need parallel hardware to be
//! checkable).
//!
//! The JSON reader below is a minimal recursive-descent parser for the
//! subset `sim_scale` emits (objects, arrays, strings, numbers, bools) —
//! the workspace is offline and vendors no serde.

use std::fmt;

/// Fraction of the baseline speedup the fresh run may lose before the
/// check fails (one-sided: running faster is never a regression).
pub const SPEEDUP_TOLERANCE: f64 = 0.25;

/// Fraction of the baseline event throughput (`events_per_sec`) the fresh
/// run may lose before the check fails. Wider than the speedup tolerance
/// because throughput is an absolute host-dependent rate, not a ratio of
/// two same-host wall times — it is only compared at all when both
/// records ran on hosts of the same width.
pub const THROUGHPUT_TOLERANCE: f64 = 0.5;

/// Fractional growth in per-node peak heap (`bytes_per_node`) the fresh
/// run may show before the check fails (one-sided: using less memory is
/// never a regression). Compared only when both records measured a
/// nonzero peak, i.e. both were built with `count-alloc`.
pub const BYTES_PER_NODE_TOLERANCE: f64 = 0.25;

/// A parsed JSON value (subset: no `null`, no string escapes beyond `\"`
/// and `\\` — `sim_scale` emits neither).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `true` / `false`.
    Bool(bool),
    /// Any number; the record never needs integer/float distinction at
    /// comparison time (counters are compared exactly via `f64`, which is
    /// lossless for the magnitudes involved).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An ordered array.
    Arr(Vec<Value>),
    /// An object as an ordered key-value list (duplicate keys keep the
    /// first occurrence on lookup).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if any.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if any.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if any.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if any.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document (the `sim_scale` subset).
///
/// # Errors
///
/// Returns a one-line description with a byte offset on malformed input.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = bytes.get(*pos).copied();
                *pos += 1;
                match esc {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    _ => return Err(format!("unsupported escape at byte {pos}")),
                }
            }
            _ => out.push(b as char),
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

/// Outcome of a baseline comparison.
#[derive(Debug)]
pub enum Verdict {
    /// Records were comparable; the list holds every regression found
    /// (empty means the check passed).
    Compared(Vec<Regression>),
    /// Records were produced under different settings (e.g. `--quick` vs
    /// full horizon), so counters cannot be compared; the string says why.
    /// Not a failure — the caller should report and move on.
    Incomparable(String),
}

/// One baseline regression: which metric moved and how.
#[derive(Debug)]
pub struct Regression {
    /// Dotted path of the regressed metric, e.g. `results[n=500].speedup`.
    pub what: String,
    /// The committed value.
    pub baseline: f64,
    /// The freshly measured value.
    pub current: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: baseline {} vs current {}",
            self.what, self.baseline, self.current
        )
    }
}

/// Compares a fresh `sim_scale` record against the committed baseline.
///
/// # Errors
///
/// Returns an error string when either document fails to parse.
pub fn check(baseline_json: &str, current_json: &str) -> Result<Verdict, String> {
    let base = parse(baseline_json).map_err(|e| format!("baseline: {e}"))?;
    let cur = parse(current_json).map_err(|e| format!("current: {e}"))?;

    for key in ["quick", "sim_seconds"] {
        let (b, c) = (base.get(key), cur.get(key));
        if b != c {
            return Ok(Verdict::Incomparable(format!(
                "'{key}' differs ({b:?} vs {c:?}); run with matching flags to compare"
            )));
        }
    }

    let mut regressions = Vec::new();
    fn exact(out: &mut Vec<Regression>, what: String, b: Option<f64>, c: Option<f64>) {
        if let (Some(b), Some(c)) = (b, c) {
            if b != c {
                out.push(Regression {
                    what,
                    baseline: b,
                    current: c,
                });
            }
        }
    }

    // Per-n rows, matched by their "n" member so reordering or added node
    // counts never misalign the comparison.
    let rows = |root: &Value, section: &str| -> Vec<Value> {
        root.get(section)
            .and_then(Value::as_arr)
            .map(<[Value]>::to_vec)
            .unwrap_or_default()
    };
    let find_n = |rows: &[Value], n: f64| -> Option<Value> {
        rows.iter()
            .find(|r| r.get("n").and_then(Value::as_f64) == Some(n))
            .cloned()
    };

    let mut speedups: Vec<(String, f64, f64)> = Vec::new();
    for section in ["results", "scheduler", "resources"] {
        let base_rows = rows(&base, section);
        let cur_rows = rows(&cur, section);
        for brow in &base_rows {
            let Some(n) = brow.get("n").and_then(Value::as_f64) else {
                continue;
            };
            let Some(crow) = find_n(&cur_rows, n) else {
                regressions.push(Regression {
                    what: format!("{section}[n={n}] missing from current record"),
                    baseline: n,
                    current: f64::NAN,
                });
                continue;
            };
            for counter in ["frames_sent", "frames_delivered", "events"] {
                exact(
                    &mut regressions,
                    format!("{section}[n={n}].{counter}"),
                    brow.get(counter).and_then(Value::as_f64),
                    crow.get(counter).and_then(Value::as_f64),
                );
            }
            if crow.get("stats_equal").and_then(Value::as_bool) == Some(false) {
                regressions.push(Regression {
                    what: format!("{section}[n={n}].stats_equal is false"),
                    baseline: 1.0,
                    current: 0.0,
                });
            }
            if let (Some(b), Some(c)) = (
                brow.get("speedup").and_then(Value::as_f64),
                crow.get("speedup").and_then(Value::as_f64),
            ) {
                speedups.push((format!("{section}[n={n}].speedup"), b, c));
            }
        }
    }

    // Host width of a record: the top-level "cores" (new records) with the
    // sweep block's copy as fallback (older records).
    let host_cores = |root: &Value| -> Option<f64> {
        root.get("cores").and_then(Value::as_f64).or_else(|| {
            root.get("sweep")
                .and_then(|s| s.get("cores"))
                .and_then(Value::as_f64)
        })
    };
    let multi_core = host_cores(&base) > Some(1.0) && host_cores(&cur) > Some(1.0);

    // Sweep block: the flag is exact; the speedup joins the tolerance pool
    // only when neither record oversubscribed the host and both hosts had
    // real parallelism available.
    let sweep_ok = |root: &Value| -> bool {
        let sweep = root.get("sweep");
        let jobs = sweep.and_then(|s| s.get("jobs")).and_then(Value::as_f64);
        let cores = sweep.and_then(|s| s.get("cores")).and_then(Value::as_f64);
        matches!((jobs, cores), (Some(j), Some(c)) if j <= c && c > 1.0)
    };
    if cur
        .get("sweep")
        .and_then(|s| s.get("results_equal"))
        .and_then(Value::as_bool)
        == Some(false)
    {
        regressions.push(Regression {
            what: "sweep.results_equal is false".to_owned(),
            baseline: 1.0,
            current: 0.0,
        });
    }
    if sweep_ok(&base) && sweep_ok(&cur) {
        if let (Some(b), Some(c)) = (
            base.get("sweep")
                .and_then(|s| s.get("speedup"))
                .and_then(Value::as_f64),
            cur.get("sweep")
                .and_then(|s| s.get("speedup"))
                .and_then(Value::as_f64),
        ) {
            speedups.push(("sweep.speedup".to_owned(), b, c));
        }
    }

    // Shard block: `stats_equal` is enforced unconditionally (the shard
    // executor must be invisible on any host); the per-n speedups join the
    // tolerance pool only when both hosts were multi-core and the records
    // used the same shard count (different widths are different
    // experiments).
    let shard_rows = |root: &Value| -> Vec<Value> {
        root.get("shards")
            .and_then(|s| s.get("rows"))
            .and_then(Value::as_arr)
            .map(<[Value]>::to_vec)
            .unwrap_or_default()
    };
    let shard_count = |root: &Value| -> Option<f64> {
        root.get("shards")
            .and_then(|s| s.get("count"))
            .and_then(Value::as_f64)
    };
    // Resource metrics are compared under their own gates: event
    // throughput only across hosts of the same width (an absolute rate on
    // a narrower host is a different experiment, not a regression), peak
    // heap per node only when both records measured one (`count-alloc`).
    let cores_match = host_cores(&base).is_some() && host_cores(&base) == host_cores(&cur);
    let mut throughputs: Vec<(String, f64, f64)> = Vec::new();
    let mut byte_loads: Vec<(String, f64, f64)> = Vec::new();
    let mut resource_pair = |what: &str, brow: &Value, crow: &Value| {
        if cores_match {
            if let (Some(b), Some(c)) = (
                brow.get("events_per_sec").and_then(Value::as_f64),
                crow.get("events_per_sec").and_then(Value::as_f64),
            ) {
                throughputs.push((format!("{what}.events_per_sec"), b, c));
            }
        }
        if let (Some(b), Some(c)) = (
            brow.get("bytes_per_node").and_then(Value::as_f64),
            crow.get("bytes_per_node").and_then(Value::as_f64),
        ) {
            if b > 0.0 && c > 0.0 {
                byte_loads.push((format!("{what}.bytes_per_node"), b, c));
            }
        }
    };
    {
        let base_rows = rows(&base, "resources");
        let cur_rows = rows(&cur, "resources");
        for brow in &base_rows {
            let Some(n) = brow.get("n").and_then(Value::as_f64) else {
                continue;
            };
            if let Some(crow) = find_n(&cur_rows, n) {
                resource_pair(&format!("resources[n={n}]"), brow, &crow);
            }
        }
    }

    // City block: rows are matched by scenario key. Deterministic event
    // counts (and the resource metrics above) are comparable only when
    // both records ran the same node count on the same horizon — nightly
    // 50k vs committed 10k is a different experiment — but a false
    // `stats_equal` in the fresh record is a determinism break at any n.
    let city_rows = |root: &Value| -> Vec<Value> {
        root.get("city")
            .and_then(|c| c.get("rows"))
            .and_then(Value::as_arr)
            .map(<[Value]>::to_vec)
            .unwrap_or_default()
    };
    let cur_city_rows = city_rows(&cur);
    for crow in &cur_city_rows {
        let scenario = crow
            .get("scenario")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_owned();
        if crow.get("stats_equal").and_then(Value::as_bool) == Some(false) {
            regressions.push(Regression {
                what: format!("city.rows[{scenario}].stats_equal is false"),
                baseline: 1.0,
                current: 0.0,
            });
        }
    }
    let city_setting = |root: &Value, key: &str| -> Option<f64> {
        root.get("city").and_then(|c| c.get(key)).and_then(Value::as_f64)
    };
    let city_comparable = city_setting(&base, "n").is_some()
        && city_setting(&base, "n") == city_setting(&cur, "n")
        && city_setting(&base, "sim_seconds") == city_setting(&cur, "sim_seconds");
    if city_comparable {
        for brow in city_rows(&base) {
            let Some(scenario) = brow.get("scenario").and_then(Value::as_str) else {
                continue;
            };
            let Some(crow) = cur_city_rows
                .iter()
                .find(|r| r.get("scenario").and_then(Value::as_str) == Some(scenario))
            else {
                regressions.push(Regression {
                    what: format!("city.rows[{scenario}] missing from current record"),
                    baseline: 1.0,
                    current: f64::NAN,
                });
                continue;
            };
            exact(
                &mut regressions,
                format!("city.rows[{scenario}].events"),
                brow.get("events").and_then(Value::as_f64),
                crow.get("events").and_then(Value::as_f64),
            );
            resource_pair(&format!("city.rows[{scenario}]"), &brow, crow);
        }
    }

    for (what, b, c) in throughputs {
        if b > 0.0 && c < b * (1.0 - THROUGHPUT_TOLERANCE) {
            regressions.push(Regression {
                what,
                baseline: b,
                current: c,
            });
        }
    }
    for (what, b, c) in byte_loads {
        if c > b * (1.0 + BYTES_PER_NODE_TOLERANCE) {
            regressions.push(Regression {
                what,
                baseline: b,
                current: c,
            });
        }
    }

    let shards_comparable =
        multi_core && shard_count(&base).is_some() && shard_count(&base) == shard_count(&cur);
    let cur_shard_rows = shard_rows(&cur);
    for crow in &cur_shard_rows {
        let Some(n) = crow.get("n").and_then(Value::as_f64) else {
            continue;
        };
        if crow.get("stats_equal").and_then(Value::as_bool) == Some(false) {
            regressions.push(Regression {
                what: format!("shards.rows[n={n}].stats_equal is false"),
                baseline: 1.0,
                current: 0.0,
            });
        }
    }
    if shards_comparable {
        for brow in shard_rows(&base) {
            let Some(n) = brow.get("n").and_then(Value::as_f64) else {
                continue;
            };
            if let (Some(b), Some(c)) = (
                brow.get("speedup").and_then(Value::as_f64),
                find_n(&cur_shard_rows, n).and_then(|r| r.get("speedup").and_then(Value::as_f64)),
            ) {
                speedups.push((format!("shards.rows[n={n}].speedup"), b, c));
            }
        }
    }

    for (what, b, c) in speedups {
        // Skip degenerate baselines — a ≤0 speedup means the baseline run
        // itself was broken, which is not this run's regression.
        if b > 0.0 && c < b * (1.0 - SPEEDUP_TOLERANCE) {
            regressions.push(Regression {
                what,
                baseline: b,
                current: c,
            });
        }
    }

    Ok(Verdict::Compared(regressions))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_full(
        frames: u64,
        events: u64,
        speedup: f64,
        jobs: u64,
        cores: u64,
        shard_speedup: f64,
        shard_equal: bool,
    ) -> String {
        format!(
            "{{\"bench\": \"sim_scale\", \"quick\": true, \"sim_seconds\": 2, \
             \"cores\": {cores},\n\
             \"sweep\": {{\"jobs\": {jobs}, \"cores\": {cores}, \"speedup\": {speedup}, \
             \"results_equal\": true}},\n\
             \"shards\": {{\"count\": 4, \"rows\": [{{\"n\": 2000, \
             \"speedup\": {shard_speedup}, \"stats_equal\": {shard_equal}}}]}},\n\
             \"results\": [{{\"n\": 100, \"frames_sent\": {frames}, \"speedup\": 5.0, \
             \"stats_equal\": true}}],\n\
             \"resources\": [{{\"n\": 100, \"events\": {events}}}]}}"
        )
    }

    fn record(frames: u64, events: u64, speedup: f64, jobs: u64, cores: u64) -> String {
        record_full(frames, events, speedup, jobs, cores, 2.0, true)
    }

    fn regressions(verdict: Verdict) -> Vec<Regression> {
        match verdict {
            Verdict::Compared(r) => r,
            Verdict::Incomparable(why) => panic!("unexpectedly incomparable: {why}"),
        }
    }

    #[test]
    fn identical_records_pass() {
        let r = record(1000, 5000, 2.0, 4, 8);
        assert!(regressions(check(&r, &r).unwrap()).is_empty());
    }

    #[test]
    fn counter_drift_is_exact_regression() {
        let found = regressions(
            check(
                &record(1000, 5000, 2.0, 4, 8),
                &record(1001, 5000, 2.0, 4, 8),
            )
            .unwrap(),
        );
        assert_eq!(found.len(), 1);
        assert!(found[0].what.contains("frames_sent"), "{}", found[0]);
    }

    #[test]
    fn event_count_drift_is_exact_regression() {
        let found = regressions(
            check(
                &record(1000, 5000, 2.0, 4, 8),
                &record(1000, 5001, 2.0, 4, 8),
            )
            .unwrap(),
        );
        assert_eq!(found.len(), 1);
        assert!(found[0].what.contains("events"), "{}", found[0]);
    }

    #[test]
    fn speedup_within_tolerance_passes() {
        let found = regressions(
            check(
                &record(1000, 5000, 2.0, 4, 8),
                &record(1000, 5000, 1.6, 4, 8),
            )
            .unwrap(),
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn speedup_collapse_is_a_regression() {
        let found = regressions(
            check(
                &record(1000, 5000, 2.0, 4, 8),
                &record(1000, 5000, 1.2, 4, 8),
            )
            .unwrap(),
        );
        assert_eq!(found.len(), 1);
        assert!(found[0].what.contains("sweep.speedup"), "{}", found[0]);
    }

    #[test]
    fn oversubscribed_sweep_speedup_is_skipped() {
        // 4 jobs on a 2-core host: the parallel run cannot win, so the
        // collapsed speedup must not fail the check.
        let found = regressions(
            check(
                &record(1000, 5000, 2.0, 4, 2),
                &record(1000, 5000, 0.6, 4, 2),
            )
            .unwrap(),
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn shard_speedup_collapse_is_a_regression_on_multicore() {
        let found = regressions(
            check(
                &record_full(1000, 5000, 2.0, 4, 8, 2.5, true),
                &record_full(1000, 5000, 2.0, 4, 8, 1.0, true),
            )
            .unwrap(),
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(
            found[0].what.contains("shards.rows[n=2000]"),
            "{}",
            found[0]
        );
    }

    #[test]
    fn single_core_skips_shard_and_sweep_speedups_only() {
        // cores == 1 in the fresh record: both collapsed speedups are
        // skipped; the exact counters are still enforced.
        let found = regressions(
            check(
                &record_full(1000, 5000, 2.0, 1, 8, 2.5, true),
                &record_full(1000, 5000, 0.4, 1, 1, 0.5, true),
            )
            .unwrap(),
        );
        assert!(found.is_empty(), "{found:?}");
        let found = regressions(
            check(
                &record_full(1000, 5000, 2.0, 1, 8, 2.5, true),
                &record_full(1001, 5000, 0.4, 1, 1, 0.5, true),
            )
            .unwrap(),
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].what.contains("frames_sent"), "{}", found[0]);
    }

    #[test]
    fn shard_stats_divergence_fails_even_on_one_core() {
        let found = regressions(
            check(
                &record_full(1000, 5000, 2.0, 1, 1, 1.0, true),
                &record_full(1000, 5000, 2.0, 1, 1, 1.0, false),
            )
            .unwrap(),
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(
            found[0].what.contains("shards.rows[n=2000].stats_equal"),
            "{}",
            found[0]
        );
    }

    #[test]
    fn baseline_without_shards_block_still_compares() {
        // Pre-ISSUE-9 baselines have no "shards" and no top-level "cores";
        // the check must fall back to sweep.cores and simply not compare
        // shard speedups.
        let old = record(1000, 5000, 2.0, 4, 8)
            .replace("\"cores\": 8,\n", "")
            .replace(
                "\"shards\": {\"count\": 4, \"rows\": [{\"n\": 2000, \
                 \"speedup\": 2, \"stats_equal\": true}]},\n",
                "",
            );
        assert!(!old.contains("shards"), "replace must strip the block");
        let found = regressions(check(&old, &record(1000, 5000, 2.0, 4, 8)).unwrap());
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn quick_mismatch_is_incomparable_not_failing() {
        let full = record(1000, 5000, 2.0, 4, 8).replace("\"quick\": true", "\"quick\": false");
        match check(&record(1000, 5000, 2.0, 4, 8), &full).unwrap() {
            Verdict::Incomparable(why) => assert!(why.contains("quick")),
            Verdict::Compared(r) => panic!("expected incomparable, got {r:?}"),
        }
    }

    #[test]
    fn wall_times_are_ignored() {
        let a = record(1000, 5000, 2.0, 4, 8)
            .replace("\"speedup\": 5.0", "\"grid_wall_s\": 1.0, \"speedup\": 5.0");
        let b = record(1000, 5000, 2.0, 4, 8)
            .replace("\"speedup\": 5.0", "\"grid_wall_s\": 9.0, \"speedup\": 5.0");
        assert!(regressions(check(&a, &b).unwrap()).is_empty());
    }

    fn city_record(n: u64, events: u64, eps: u64, bpn: u64, cores: u64, equal: bool) -> String {
        format!(
            "{{\"bench\": \"sim_scale\", \"quick\": true, \"sim_seconds\": 2, \
             \"cores\": {cores},\n\
             \"sweep\": {{\"jobs\": 1, \"cores\": {cores}, \"speedup\": 1.0, \
             \"results_equal\": true}},\n\
             \"city\": {{\"n\": {n}, \"sim_seconds\": 2, \"budget_bytes_per_node\": 32768, \
             \"rows\": [{{\"scenario\": \"stadium_exit\", \"n\": {n}, \"events\": {events}, \
             \"events_per_sec\": {eps}, \"peak_alloc_bytes\": 1, \"bytes_per_node\": {bpn}, \
             \"stats_equal\": {equal}}}]}},\n\
             \"results\": []}}"
        )
    }

    #[test]
    fn city_event_drift_is_exact_regression() {
        let found = regressions(
            check(
                &city_record(10_000, 350_000, 300_000, 10_000, 4, true),
                &city_record(10_000, 350_001, 300_000, 10_000, 4, true),
            )
            .unwrap(),
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].what.contains("city.rows[stadium_exit].events"), "{}", found[0]);
    }

    #[test]
    fn city_blocks_at_different_n_compare_nothing_but_stats_equal() {
        // Nightly (50k) against the committed 10k record: counters and
        // rates are different experiments, but a determinism break in the
        // fresh record still fails.
        let found = regressions(
            check(
                &city_record(10_000, 350_000, 300_000, 10_000, 4, true),
                &city_record(50_000, 999_999, 50_000, 30_000, 4, true),
            )
            .unwrap(),
        );
        assert!(found.is_empty(), "{found:?}");
        let found = regressions(
            check(
                &city_record(10_000, 350_000, 300_000, 10_000, 4, true),
                &city_record(50_000, 999_999, 50_000, 30_000, 4, false),
            )
            .unwrap(),
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].what.contains("stats_equal"), "{}", found[0]);
    }

    #[test]
    fn throughput_collapse_is_a_regression_on_matching_hosts() {
        let found = regressions(
            check(
                &city_record(10_000, 350_000, 300_000, 10_000, 4, true),
                &city_record(10_000, 350_000, 100_000, 10_000, 4, true),
            )
            .unwrap(),
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].what.contains("events_per_sec"), "{}", found[0]);
        // Same collapse across hosts of different widths: skipped.
        let found = regressions(
            check(
                &city_record(10_000, 350_000, 300_000, 10_000, 8, true),
                &city_record(10_000, 350_000, 100_000, 10_000, 4, true),
            )
            .unwrap(),
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn per_node_heap_growth_is_a_regression() {
        let found = regressions(
            check(
                &city_record(10_000, 350_000, 300_000, 10_000, 4, true),
                &city_record(10_000, 350_000, 300_000, 20_000, 4, true),
            )
            .unwrap(),
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].what.contains("bytes_per_node"), "{}", found[0]);
        // Within tolerance: 10000 → 12000 is +20% < 25%.
        let found = regressions(
            check(
                &city_record(10_000, 350_000, 300_000, 10_000, 4, true),
                &city_record(10_000, 350_000, 300_000, 12_000, 4, true),
            )
            .unwrap(),
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn unmeasured_heap_is_skipped_not_failed() {
        // bytes_per_node == 0 means the record was built without
        // `count-alloc`; comparing against it would punish measuring.
        let found = regressions(
            check(
                &city_record(10_000, 350_000, 300_000, 0, 4, true),
                &city_record(10_000, 350_000, 300_000, 20_000, 4, true),
            )
            .unwrap(),
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn baseline_without_city_block_still_compares() {
        let old = format!(
            "{{\"bench\": \"sim_scale\", \"quick\": true, \"sim_seconds\": 2, \
             \"cores\": 8,\n\
             \"sweep\": {{\"jobs\": 1, \"cores\": 8, \"speedup\": 1.0, \
             \"results_equal\": true}},\n\
             \"results\": []}}"
        );
        let new = city_record(10_000, 350_000, 300_000, 10_000, 8, true);
        // Neither direction may error or regress on the missing block.
        assert!(regressions(check(&old, &new).unwrap()).is_empty());
        assert!(regressions(check(&new, &old).unwrap()).is_empty());
    }

    #[test]
    fn parser_round_trips_the_committed_shape() {
        let doc = record(1000, 5000, 0.67, 4, 4);
        let v = parse(&doc).unwrap();
        assert_eq!(
            v.get("sweep")
                .and_then(|s| s.get("speedup"))
                .and_then(Value::as_f64),
            Some(0.67)
        );
        assert_eq!(
            v.get("results").and_then(Value::as_arr).map(<[Value]>::len),
            Some(1)
        );
    }
}
