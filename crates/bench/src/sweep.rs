//! Deterministic parallel sweep executor.
//!
//! The paper's evaluation is an embarrassingly parallel grid of independent
//! simulations — 5 seeds × dozens of scenario points — and every job builds
//! its own [`pds_sim::World`] from its own seed. Parallelism therefore
//! cannot change any result, only wall-clock order of completion; the
//! executor's one obligation is to hand results back **in job order**, so
//! every table, CSV and averaged metric is bit-identical to a sequential
//! run. That claim is enforced three ways: the `parallel_digest`
//! integration test (replay digests equal across job counts), the
//! `properties.rs` property test (identical `RunMetrics` at `--jobs 1` vs
//! `--jobs 4`), and the CI figure-sweep smoke (`diff -r` over the CSVs of
//! a `--jobs 1` and a `--jobs 2` run).
//!
//! The pool is hand-rolled on `std::thread::scope` (the workspace vendors
//! no thread-pool crate): workers pull job indices from a shared atomic
//! counter and send `(index, result)` pairs over a channel; the main
//! thread slots them back into input order. Threading is allowed here and
//! nowhere else — `cargo xtask lint` rejects thread use in the
//! simulation crates, and exempts only `crates/bench`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Process-wide job-count override, set once by binary flag parsing.
/// 0 means "unset": fall back to `PDS_BENCH_JOBS`, then available cores.
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count used by [`SweepRunner::from_env`]
/// (the `--jobs N` flag of the `figures` and `sim_scale` binaries).
/// Values are clamped to at least 1.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
}

/// The effective worker count: the [`set_jobs`] override if set, else the
/// `PDS_BENCH_JOBS` environment variable, else the number of available
/// cores (falling back to 1 if that cannot be determined).
#[must_use]
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => default_jobs(),
        n => n,
    }
}

fn default_jobs() -> usize {
    if let Some(n) = std::env::var("PDS_BENCH_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs independent jobs on a bounded worker pool, returning results in
/// job order regardless of completion order.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    jobs: usize,
}

impl SweepRunner {
    /// A runner with exactly `jobs` workers (clamped to at least 1).
    /// `SweepRunner::new(1)` is a plain sequential loop on the calling
    /// thread — byte-for-byte today's behavior.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// A runner with the process-wide worker count (see [`jobs`]).
    #[must_use]
    pub fn from_env() -> Self {
        Self::new(jobs())
    }

    /// The worker count this runner was built with.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes `f(0), f(1), …, f(count - 1)` across the pool and returns
    /// `vec![f(0), …, f(count - 1)]` — always in job order. Each job must
    /// be self-contained (derive all randomness from its own inputs); the
    /// executor guarantees only ordering, not isolation.
    pub fn run<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.jobs.min(count);
        if workers <= 1 {
            return (0..count).map(f).collect();
        }
        let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        return;
                    }
                    if tx.send((i, f(i))).is_err() {
                        return;
                    }
                });
            }
            // Drop the original sender so `rx` disconnects once every
            // worker finishes; then slot results back into input order.
            drop(tx);
            for (i, value) in rx {
                results[i] = Some(value);
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every job index was claimed exactly once"))
            .collect()
    }
}

/// Runs a `points × seeds` grid through [`SweepRunner::from_env`] as one
/// flat job list (so late points keep all workers busy) and chunks the
/// results back into one `Vec` per point, both dimensions in input order.
///
/// This is the workhorse behind the per-point loops in
/// `experiments/{pdd,pdr,phys,mobility,extra}.rs`: tables built from its
/// output are bit-identical to the old nested sequential loops.
pub fn run_grid<P, T, F>(points: &[P], seeds: &[u64], f: F) -> Vec<Vec<T>>
where
    P: Sync,
    T: Send,
    F: Fn(&P, u64) -> T + Sync,
{
    let per = seeds.len();
    let flat =
        SweepRunner::from_env().run(points.len() * per, |i| f(&points[i / per], seeds[i % per]));
    let mut flat = flat.into_iter();
    points
        .iter()
        .map(|_| (0..per).map(|_| flat.next().expect("sized")).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for jobs in [1, 2, 4, 16] {
            let out = SweepRunner::new(jobs).run(37, |i| i * 10);
            assert_eq!(out, (0..37).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn job_count_does_not_change_results() {
        // Unequal job durations so completion order differs from job order.
        let work = |i: usize| {
            let mut acc = i as u64;
            for _ in 0..(i % 7) * 10_000 {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            }
            (i, acc)
        };
        let seq = SweepRunner::new(1).run(25, work);
        for jobs in [2, 3, 8] {
            assert_eq!(SweepRunner::new(jobs).run(25, work), seq);
        }
    }

    #[test]
    fn empty_and_single_job_edges() {
        assert_eq!(SweepRunner::new(4).run(0, |i| i), Vec::<usize>::new());
        assert_eq!(SweepRunner::new(4).run(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn grid_is_chunked_per_point_in_order() {
        let points = ["a", "b", "c"];
        let seeds = [7, 8];
        let grid = run_grid(&points, &seeds, |p, s| format!("{p}{s}"));
        assert_eq!(
            grid,
            vec![
                vec!["a7".to_string(), "a8".to_string()],
                vec!["b7".to_string(), "b8".to_string()],
                vec!["c7".to_string(), "c8".to_string()],
            ]
        );
    }

    #[test]
    fn clamps_zero_jobs_to_one() {
        assert_eq!(SweepRunner::new(0).jobs(), 1);
    }
}
