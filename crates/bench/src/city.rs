//! City-scale scenario family: 10k–100k-node worlds with bounded local
//! density.
//!
//! The paper's venues top out at hundreds of people; these scenarios ask
//! what the *kernel* costs at city scale, where the slab/SoA memory diet
//! (DESIGN.md §16) has to hold. Every layout keeps the neighbor count per
//! node bounded — area grows with `n` — so dispatch work stays O(n) and
//! the per-node byte budget is meaningful rather than dominated by one
//! dense hotspot:
//!
//! * [`CityScenario::StadiumExit`] — a flash crowd on concentric stands
//!   around a stadium, everyone walking radially outward at once;
//! * [`CityScenario::VehicularCorridor`] — a multi-lane highway of
//!   constant headway, every vehicle driving down-corridor at 25–35 m/s;
//! * [`CityScenario::DisasterRelief`] — relief camps on a grid with a
//!   [`FaultPlan`] partition cutting the network in half mid-run and
//!   healing before the end (partition-and-heal, not permanent loss).
//!
//! Builders are deterministic in `(scenario, n, seed)`: the `city` block
//! of `BENCH_sim_scale.json` runs each scenario twice with the same seed
//! and asserts identical statistics.

use pds_sim::{
    Application, Context, FaultPlan, MessageMeta, PartitionWindow, Position, SimConfig,
    SimDuration, SimTime, SpatialIndex, World,
};

/// The node counts the city family is specified at. The quick bench runs
/// the smallest; nightly CI runs 50k via `PDS_CITY_N`; 100k is for manual
/// capacity runs.
pub const CITY_NODE_COUNTS: [usize; 3] = [10_000, 50_000, 100_000];

/// Per-node peak-heap budget for the city family, bytes. The pre-diet
/// kernel sat near 84 KB/node on the dense-chatter scenario; the slab/SoA
/// diet commits to ≤ 32 KB/node at n = 10k (≥ 2.5× reduction), asserted
/// by the `sim_scale` binary whenever the `count-alloc` feature measures
/// a nonzero peak.
pub const CITY_BYTES_PER_NODE_BUDGET: usize = 32 * 1024;

/// Chatter period for city nodes. Slower than the kernel-stress scenario
/// (10 ms): a city node beacons a few times a second, which keeps the
/// event count at n = 100k inside a CI-sized run while still exercising
/// every hot path continuously.
const CITY_CHATTER_PERIOD: SimDuration = SimDuration::from_millis(250);

/// Target spacing between neighboring people in the stands / camps,
/// meters. With the default 75 m radio range this bounds a node's
/// neighborhood to ~20 peers.
const PEDESTRIAN_SPACING_M: f64 = 30.0;

/// Periodic small-payload broadcaster, phase-staggered per node so the
/// whole city never keys up in the same microsecond.
struct CityChatter {
    phase: SimDuration,
}

impl Application for CityChatter {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer(self.phase, 0);
    }
    fn on_message(&mut self, _: &mut Context, _: MessageMeta, _: bytes::Bytes) {}
    fn on_timer(&mut self, ctx: &mut Context, _tag: u64) {
        ctx.broadcast(bytes::Bytes::from_static(&[0u8; 200]), &[]);
        ctx.set_timer(CITY_CHATTER_PERIOD, 0);
    }
}

/// One member of the city scenario family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CityScenario {
    /// Flash crowd: concentric stands draining radially outward.
    StadiumExit,
    /// Multi-lane highway at constant headway, everyone driving.
    VehicularCorridor,
    /// Relief camps with a partition-and-heal fault window mid-run.
    DisasterRelief,
}

impl CityScenario {
    /// Every scenario, in report order.
    pub const ALL: [CityScenario; 3] = [
        CityScenario::StadiumExit,
        CityScenario::VehicularCorridor,
        CityScenario::DisasterRelief,
    ];

    /// Stable machine-readable key for JSON records.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            CityScenario::StadiumExit => "stadium_exit",
            CityScenario::VehicularCorridor => "vehicular_corridor",
            CityScenario::DisasterRelief => "disaster_relief",
        }
    }

    /// Builds the scenario world: `n` chattering nodes laid out per the
    /// scenario, mobility started, faults (if any) installed.
    /// Deterministic in `(self, n, seed)`.
    #[must_use]
    pub fn build(self, n: usize, seed: u64) -> World {
        let mut config = SimConfig::default();
        config.spatial.index = SpatialIndex::Grid;
        // Same large-area knobs as the kernel-stress scenario: a 4-range
        // interference horizon and a coarse re-bucket cadence, so grid
        // maintenance does not dominate at 100k movers.
        config.radio.interference_range_factor = 4.0;
        config.spatial.rebucket_interval = SimDuration::from_millis(250);
        let mut world = World::new(config, seed);
        world.reserve_nodes(n);
        match self {
            CityScenario::StadiumExit => build_stadium(&mut world, n),
            CityScenario::VehicularCorridor => build_corridor(&mut world, n),
            CityScenario::DisasterRelief => build_relief(&mut world, n),
        }
        world
    }
}

fn spawn(world: &mut World, pos: Position, rng: &mut pds_sim::SimRng) -> pds_sim::NodeId {
    let phase = SimDuration::from_micros(rng.range_f64(0.0, 250_000.0) as u64);
    world.add_node(pos, Box::new(CityChatter { phase }))
}

/// Concentric stands around a stadium center: ring `k` sits at radius
/// `r0 + k·spacing` and holds one person per ~`spacing` of arc, so local
/// density is constant and total area grows with `n`. Everyone then walks
/// outward to a point well past the outermost ring — the exit flash
/// crowd — at individual walking speeds.
fn build_stadium(world: &mut World, n: usize) {
    let mut rng = world.fork_rng(101);
    let r0 = 60.0;
    let spacing = PEDESTRIAN_SPACING_M;
    let mut placed = 0usize;
    let mut ring = 0usize;
    let mut ids = Vec::with_capacity(n);
    let mut angles = Vec::with_capacity(n);
    let center = 0.0; // offset applied below once the extent is known
    let mut max_r = r0;
    while placed < n {
        let r = r0 + ring as f64 * spacing;
        max_r = r;
        let seats = ((std::f64::consts::TAU * r / spacing).floor() as usize).max(1);
        let seats = seats.min(n - placed);
        for s in 0..seats {
            let theta = std::f64::consts::TAU * s as f64 / seats as f64;
            angles.push(theta);
            ids.push((r, theta));
        }
        placed += seats;
        ring += 1;
    }
    // Positions must be nonnegative for the grid index: shift the whole
    // stadium so the far exit radius still fits in the first quadrant.
    let exit_r = max_r + 500.0;
    let shift = exit_r + center + 10.0;
    let mut node_ids = Vec::with_capacity(n);
    for &(r, theta) in &ids {
        let pos = Position::new(shift + r * theta.cos(), shift + r * theta.sin());
        node_ids.push(spawn(world, pos, &mut rng));
    }
    for (i, &id) in node_ids.iter().enumerate() {
        let theta = angles[i];
        let dest = Position::new(shift + exit_r * theta.cos(), shift + exit_r * theta.sin());
        let speed = rng.range_f64(1.0, 2.0);
        world.move_node(id, dest, speed);
    }
}

/// Lanes along the corridor, meters apart.
const CORRIDOR_LANES: usize = 4;
/// Headway between vehicles in a lane, meters. With the 75 m radio range
/// a vehicle hears ~15 others.
const CORRIDOR_HEADWAY_M: f64 = 40.0;

/// A straight multi-lane highway: `n / lanes` vehicles per lane at
/// constant headway (corridor length grows with `n`), every vehicle
/// driving down-corridor at 25–35 m/s.
fn build_corridor(world: &mut World, n: usize) {
    let mut rng = world.fork_rng(102);
    let per_lane = n.div_ceil(CORRIDOR_LANES);
    let length = per_lane as f64 * CORRIDOR_HEADWAY_M;
    let mut spawned = 0usize;
    for lane in 0..CORRIDOR_LANES {
        let y = 10.0 + lane as f64 * 5.0;
        for slot in 0..per_lane {
            if spawned == n {
                break;
            }
            // Stagger lanes by half a headway so vehicles don't form
            // perfect broadside rows.
            let x = 10.0 + slot as f64 * CORRIDOR_HEADWAY_M
                + if lane % 2 == 1 { CORRIDOR_HEADWAY_M / 2.0 } else { 0.0 };
            let id = spawn(world, Position::new(x, y), &mut rng);
            let speed = rng.range_f64(25.0, 35.0);
            // Drive toward the end of the corridor plus a margin so nobody
            // arrives during a bench-sized run.
            world.move_node(id, Position::new(x + length + 1_000.0, y), speed);
            spawned += 1;
        }
    }
}

/// Nodes per relief camp.
const CAMP_SIZE: usize = 8;
/// Spacing between camp centers, meters. Inside the 75 m radio range, so
/// adjacent camps relay for each other and the mid-run partition has
/// cross-boundary links to cut.
const CAMP_SPACING_M: f64 = 60.0;
/// Scatter radius inside a camp, meters.
const CAMP_RADIUS_M: f64 = 15.0;
/// Fraction of nodes acting as couriers walking between camps.
const COURIER_FRACTION: f64 = 0.1;

/// Relief camps on a square grid at constant camp density, a courier
/// fraction walking the field — and a partition cutting the node set in
/// half for the middle of the run, healing implicitly at the window end
/// ([`PartitionWindow`] semantics).
fn build_relief(world: &mut World, n: usize) {
    let mut rng = world.fork_rng(103);
    let camps = n.div_ceil(CAMP_SIZE);
    let side = (camps as f64).sqrt().ceil() as usize;
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let c = i / CAMP_SIZE;
        let cx = 50.0 + (c % side) as f64 * CAMP_SPACING_M;
        let cy = 50.0 + (c / side) as f64 * CAMP_SPACING_M;
        let x = cx + rng.range_f64(-CAMP_RADIUS_M, CAMP_RADIUS_M);
        let y = cy + rng.range_f64(-CAMP_RADIUS_M, CAMP_RADIUS_M);
        ids.push(spawn(world, Position::new(x, y), &mut rng));
    }
    let extent = side as f64 * CAMP_SPACING_M + 100.0;
    for &id in &ids {
        if rng.chance(COURIER_FRACTION) {
            let dest = Position::new(rng.range_f64(0.0, extent), rng.range_f64(0.0, extent));
            world.move_node(id, dest, 1.4);
        }
    }
    world.install_faults(disaster_partition_plan(7, n as u32));
}

/// The disaster-relief fault schedule: one partition window over the
/// middle of a nominal 2-second bench horizon, splitting the id space in
/// half and healing implicitly at the window end. Pure data — determinism
/// comes from [`PartitionWindow`] being a time/id predicate.
#[must_use]
pub fn disaster_partition_plan(seed: u64, n: u32) -> FaultPlan {
    let mut plan = FaultPlan::none(seed);
    plan.partitions.push(PartitionWindow {
        from: SimTime::from_secs_f64(0.5),
        until: SimTime::from_secs_f64(1.2),
        boundary: n / 2,
    });
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(scenario: CityScenario, n: usize, seed: u64) -> pds_sim::Stats {
        let mut w = scenario.build(n, seed);
        w.run_until(SimTime::from_secs_f64(1.5));
        w.stats().clone()
    }

    #[test]
    fn scenarios_are_deterministic_and_deliver_traffic() {
        for scenario in CityScenario::ALL {
            let a = run(scenario, 200, 42);
            let b = run(scenario, 200, 42);
            assert_eq!(a, b, "{scenario:?} must replay identically");
            assert!(
                a.frames_delivered > 0,
                "{scenario:?} produced no traffic: {a:?}"
            );
        }
    }

    #[test]
    fn relief_partition_cuts_then_heals() {
        // The partition must actually cost deliveries: the same world
        // without the fault plan delivers strictly more frames during the
        // window.
        let mut faulted = CityScenario::DisasterRelief.build(240, 42);
        let mut world = World::new(
            {
                let mut c = SimConfig::default();
                c.spatial.index = SpatialIndex::Grid;
                c.radio.interference_range_factor = 4.0;
                c.spatial.rebucket_interval = SimDuration::from_millis(250);
                c
            },
            42,
        );
        world.reserve_nodes(240);
        build_relief_unfaulted(&mut world, 240);
        faulted.run_until(SimTime::from_secs_f64(1.5));
        world.run_until(SimTime::from_secs_f64(1.5));
        assert!(
            faulted.stats().frames_delivered < world.stats().frames_delivered,
            "partition should suppress cross-boundary deliveries: {} vs {}",
            faulted.stats().frames_delivered,
            world.stats().frames_delivered
        );
    }

    /// The relief layout without its fault plan, for the heal test.
    fn build_relief_unfaulted(world: &mut World, n: usize) {
        let mut rng = world.fork_rng(103);
        let camps = n.div_ceil(CAMP_SIZE);
        let side = (camps as f64).sqrt().ceil() as usize;
        let mut ids = Vec::with_capacity(n);
        for i in 0..n {
            let c = i / CAMP_SIZE;
            let cx = 50.0 + (c % side) as f64 * CAMP_SPACING_M;
            let cy = 50.0 + (c / side) as f64 * CAMP_SPACING_M;
            let x = cx + rng.range_f64(-CAMP_RADIUS_M, CAMP_RADIUS_M);
            let y = cy + rng.range_f64(-CAMP_RADIUS_M, CAMP_RADIUS_M);
            ids.push(spawn(world, Position::new(x, y), &mut rng));
        }
        let extent = side as f64 * CAMP_SPACING_M + 100.0;
        for &id in &ids {
            if rng.chance(COURIER_FRACTION) {
                let dest = Position::new(rng.range_f64(0.0, extent), rng.range_f64(0.0, extent));
                world.move_node(id, dest, 1.4);
            }
        }
    }

    #[test]
    fn layouts_keep_positions_nonnegative() {
        for scenario in CityScenario::ALL {
            let w = scenario.build(300, 1);
            for id in w.node_ids().collect::<Vec<_>>() {
                let p = w.position(id).expect("alive");
                assert!(p.x >= 0.0 && p.y >= 0.0, "{scenario:?} placed {p:?}");
            }
        }
    }
}
