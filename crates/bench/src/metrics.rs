//! The paper's evaluation metrics (§VI-A): recall, latency, message
//! overhead — plus [`WallClock`], the one audited place benchmark
//! binaries read host time.

// det-lint: allow(wall-clock) -- benches measure host wall time by design; WallClock below is the single audited stopwatch all bench binaries route through.

/// Wall-clock stopwatch for benchmark binaries.
///
/// Benchmarks legitimately measure host time, but the determinism lint
/// bans `Instant` everywhere else; routing every measurement through this
/// helper keeps the exemption surface to exactly one file. Never use this
/// for anything that feeds simulation state.
#[derive(Debug, Clone, Copy)]
pub struct WallClock(std::time::Instant);

impl WallClock {
    /// Starts a stopwatch.
    #[must_use]
    #[allow(clippy::disallowed_methods)]
    pub fn start() -> Self {
        Self(std::time::Instant::now())
    }

    /// Seconds elapsed since [`WallClock::start`].
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Metrics of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Fraction of distinct metadata entries or chunks received.
    pub recall: f64,
    /// Seconds from sending the query to the last returned entry/chunk.
    pub latency_s: f64,
    /// Megabytes of all messages transmitted during the operation
    /// (data, retransmissions and acks alike).
    pub overhead_mb: f64,
    /// `overhead_mb` decomposed as `[pdd, pdr, mdr, other]` megabytes:
    /// data-frame bytes attributed by traffic class, with acks and
    /// unclassified traffic in `other`. Sums to `overhead_mb`.
    pub overhead_by_phase_mb: [f64; 4],
    /// Discovery rounds (or chunk-query waves) issued.
    pub rounds: f64,
    /// Whether the operation terminated within the horizon.
    pub finished: bool,
}

impl RunMetrics {
    /// A zeroed, unfinished run (placeholder for failed horizons).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            recall: 0.0,
            latency_s: 0.0,
            overhead_mb: 0.0,
            overhead_by_phase_mb: [0.0; 4],
            rounds: 0.0,
            finished: false,
        }
    }

    /// The per-phase overhead split for a stats window: data bytes
    /// attributed by traffic class, everything else (acks, unclassified)
    /// folded into the last (`other`) bucket so the four components sum to
    /// `bytes_sent`.
    #[must_use]
    pub fn phase_split_mb(window: &pds_sim::Stats) -> [f64; 4] {
        let p = window.data_bytes_by_phase;
        let classified = p.pdd + p.pdr + p.mdr;
        [
            p.pdd as f64 / 1e6,
            p.pdr as f64 / 1e6,
            p.mdr as f64 / 1e6,
            window.bytes_sent.saturating_sub(classified) as f64 / 1e6,
        ]
    }
}

/// Averages runs component-wise (the paper averages over 5 runs);
/// `finished` becomes the conjunction.
///
/// # Panics
///
/// Panics if `runs` is empty.
#[must_use]
pub fn average_runs(runs: &[RunMetrics]) -> RunMetrics {
    assert!(!runs.is_empty(), "cannot average zero runs");
    let n = runs.len() as f64;
    let mut overhead_by_phase_mb = [0.0; 4];
    for r in runs {
        for (acc, v) in overhead_by_phase_mb.iter_mut().zip(r.overhead_by_phase_mb) {
            *acc += v / n;
        }
    }
    RunMetrics {
        recall: runs.iter().map(|r| r.recall).sum::<f64>() / n,
        latency_s: runs.iter().map(|r| r.latency_s).sum::<f64>() / n,
        overhead_mb: runs.iter().map(|r| r.overhead_mb).sum::<f64>() / n,
        overhead_by_phase_mb,
        rounds: runs.iter().map(|r| r.rounds).sum::<f64>() / n,
        finished: runs.iter().all(|r| r.finished),
    }
}

/// Runs `f` once per seed on the process-wide [`crate::sweep::SweepRunner`]
/// pool (each run builds its own world) and returns the results **in
/// input-seed order**, regardless of which worker finishes first.
///
/// The ordering contract is load-bearing: every table and CSV averages
/// `results[i]` against `seeds[i]`, and the parallel executor's
/// bit-identical-to-sequential guarantee rests on it (see
/// `run_seeds_preserves_order` below and `crate::sweep`).
pub fn run_seeds<T, F>(seeds: &[u64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    crate::sweep::SweepRunner::from_env().run(seeds.len(), |i| f(seeds[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_is_componentwise() {
        let a = RunMetrics {
            recall: 1.0,
            latency_s: 2.0,
            overhead_mb: 4.0,
            overhead_by_phase_mb: [1.0, 2.0, 0.0, 1.0],
            rounds: 2.0,
            finished: true,
        };
        let b = RunMetrics {
            recall: 0.5,
            latency_s: 4.0,
            overhead_mb: 8.0,
            overhead_by_phase_mb: [2.0, 4.0, 0.0, 2.0],
            rounds: 4.0,
            finished: true,
        };
        let avg = average_runs(&[a, b]);
        assert!((avg.recall - 0.75).abs() < 1e-12);
        assert!((avg.latency_s - 3.0).abs() < 1e-12);
        assert!((avg.overhead_mb - 6.0).abs() < 1e-12);
        assert_eq!(avg.overhead_by_phase_mb, [1.5, 3.0, 0.0, 1.5]);
        assert!(avg.finished);
    }

    #[test]
    fn unfinished_run_poisons_average_flag() {
        let ok = RunMetrics {
            finished: true,
            ..RunMetrics::empty()
        };
        let bad = RunMetrics::empty();
        assert!(!average_runs(&[ok, bad]).finished);
    }

    #[test]
    fn run_seeds_preserves_order() {
        let out = run_seeds(&[1, 2, 3], |seed| RunMetrics {
            recall: seed as f64,
            ..RunMetrics::empty()
        });
        let recalls: Vec<f64> = out.iter().map(|r| r.recall).collect();
        assert_eq!(recalls, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn average_empty_panics() {
        let _ = average_runs(&[]);
    }
}
