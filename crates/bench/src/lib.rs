//! Experiment harness for the PDS reproduction.
//!
//! Rebuilds every figure of the paper's evaluation (§V–§VI): scenario
//! builders for the static grid and the mobility venues, workload seeding
//! (metadata entries, chunked items, redundancy), consumer orchestration
//! (single / sequential / simultaneous), and the metrics the paper reports
//! — *recall*, *latency* and *message overhead*.
//!
//! The `figures` binary drives one experiment per paper figure; see
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod city;
pub mod experiments;
pub mod metrics;
pub mod report;
pub mod scenario;
pub mod sweep;

pub use city::{CityScenario, CITY_BYTES_PER_NODE_BUDGET, CITY_NODE_COUNTS};
pub use metrics::{average_runs, run_seeds, RunMetrics, WallClock};
pub use scenario::{GridScenario, MobilityScenario, Workload};
pub use sweep::{run_grid, SweepRunner};
