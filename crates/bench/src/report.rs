//! Table rendering and CSV output for experiment results.

use std::fmt::Write as _;
use std::path::Path;

/// A result table: one per reproduced figure.
///
/// # Examples
///
/// ```
/// use pds_bench::report::Table;
///
/// let mut t = Table::new("Fig. X", &["n", "recall"]);
/// t.push_row(vec!["1".into(), "100.0%".into()]);
/// assert!(t.render().contains("Fig. X"));
/// assert_eq!(t.to_csv(), "n,recall\n1,100.0%\n");
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure title, e.g. "Fig. 6 — impact of metadata amount".
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (pre-formatted cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(cells);
    }

    /// Renders an aligned console table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.columns, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (cells are simple numbers/labels here).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV into `dir/<slug>.csv`, creating the directory.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, dir: &Path, slug: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{slug}.csv")), self.to_csv())
    }
}

/// Formats a float with 2 decimals (latency seconds, MB, recall).
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a recall as a percentage with 1 decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Fig. X", &["a", "metric"]);
        t.push_row(vec!["1".into(), "2.50".into()]);
        t.push_row(vec!["100".into(), "3.75".into()]);
        let s = t.render();
        assert!(s.contains("## Fig. X"));
        assert!(s.contains("  1"));
        assert!(s.contains("100"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new("T", &["x", "y"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("T", &["x", "y"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.9876), "98.8%");
    }
}
