//! Minimal `Cargo.toml` reader for the layering rule.
//!
//! Reads just what the dependency-DAG check needs — the package name and
//! the keys of `[dependencies]` / `[dev-dependencies]` — with a
//! line-oriented scan. The workspace's manifests are plain (no multi-line
//! inline tables for dependencies), and `cargo metadata` is unavailable
//! offline, so a full TOML parser would be dead weight.

use std::path::{Path, PathBuf};

/// One dependency key with the manifest line it was declared on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dep {
    /// Crate name as written in the dependency table.
    pub name: String,
    /// 1-based line in the manifest, for spanned diagnostics.
    pub line: u32,
}

/// One crate manifest, reduced to the facts the layering rule checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// `package.name`.
    pub name: String,
    /// Keys of `[dependencies]` (normal deps only — these shape the
    /// shipped DAG).
    pub dependencies: Vec<Dep>,
    /// Keys of `[dev-dependencies]`. Exempt from layering (they never
    /// ship and cargo permits cycles through them), but kept for
    /// reporting.
    pub dev_dependencies: Vec<Dep>,
    /// Manifest path, for diagnostics.
    pub path: PathBuf,
}

impl Manifest {
    /// Normal-dependency names, in declaration order.
    #[must_use]
    pub fn dep_names(&self) -> Vec<&str> {
        self.dependencies.iter().map(|d| d.name.as_str()).collect()
    }
}

/// Parses one manifest file's text.
#[must_use]
pub fn parse(path: &Path, text: &str) -> Option<Manifest> {
    let mut section = String::new();
    let mut name = None;
    let mut dependencies = Vec::new();
    let mut dev_dependencies = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = u32::try_from(idx).unwrap_or(u32::MAX).saturating_add(1);
        let line = raw.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']').trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"').to_string();
        let dep = Dep {
            name: key.clone(),
            line: lineno,
        };
        match section.as_str() {
            "package" if key == "name" => {
                name = Some(value.trim().trim_matches('"').to_string());
            }
            "dependencies" => dependencies.push(dep),
            "dev-dependencies" => dev_dependencies.push(dep),
            // Target-specific tables (`[target.….dependencies]`) count as
            // real dependencies too.
            s if s.ends_with(".dependencies") && !s.contains("dev") => dependencies.push(dep),
            _ => {}
        }
    }
    Some(Manifest {
        name: name?,
        dependencies,
        dev_dependencies,
        path: path.to_path_buf(),
    })
}

/// Loads every `crates/*/Cargo.toml` under `root`, sorted by crate name.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<Manifest>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Ok(out);
    }
    let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let manifest_path = entry.path().join("Cargo.toml");
        if manifest_path.is_file() {
            let text = std::fs::read_to_string(&manifest_path)?;
            let rel = manifest_path
                .strip_prefix(root)
                .unwrap_or(&manifest_path)
                .to_path_buf();
            if let Some(m) = parse(&rel, &text) {
                out.push(m);
            }
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_name_and_dep_sections() {
        let text = r#"
[package]
name = "pds-core"
version = "0.1.0"

[dependencies]
pds-det = { workspace = true }
bytes = { workspace = true }

[dev-dependencies]
pds-sim = { workspace = true }
"#;
        let m = parse(Path::new("crates/core/Cargo.toml"), text).unwrap();
        assert_eq!(m.name, "pds-core");
        assert_eq!(m.dep_names(), vec!["pds-det", "bytes"]);
        assert_eq!(m.dev_dependencies.len(), 1);
        assert_eq!(m.dev_dependencies[0].name, "pds-sim");
        // Line numbers point at the declaration, not the section header
        // (the raw string opens with a newline, so `pds-det` sits on line 7).
        assert_eq!(m.dependencies[0].line, 7);
    }

    #[test]
    fn comments_and_other_sections_are_ignored() {
        let text = "[package]\nname = \"x\"\n# comment\n[features]\nprof = []\n[dependencies]\na = \"1\"\n";
        let m = parse(Path::new("t"), text).unwrap();
        assert_eq!(m.dep_names(), vec!["a"]);
    }
}
