//! `pds-lint` — the workspace's AST-grade static-analysis engine.
//!
//! Replaces the old string-matching determinism scanner with a real
//! syntactic model: a spanned lexer ([`lexer`]), per-file analysis with
//! use-tree resolution, function spans, cfg regions and pragmas
//! ([`source`]), a pluggable rule registry ([`rules`]), and an engine
//! ([`engine`]) that applies exemption policy uniformly and emits
//! spanned, machine-readable diagnostics ([`diag`]).
//!
//! Driven by `cargo xtask lint`; see DESIGN.md §13 for the contract each
//! rule enforces and `lint-exemptions.txt` for the ratcheted exemption
//! inventory ([`ratchet`]).
//!
//! The crate is dependency-free on purpose: it must build before — and
//! independently of — everything it checks, and the build environment has
//! no network for pulling a real parser (`syn`). The lexer implements
//! exactly the subset of Rust syntax the rules need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod manifest;
pub mod ratchet;
pub mod rules;
pub mod source;

pub use diag::{Diagnostic, Exemption, Report, Severity};
pub use engine::{collect_files, run, run_rules};
pub use ratchet::{RatchetStatus, EXEMPTIONS_FILE};
pub use rules::{default_rules, Rule, RuleMeta};
