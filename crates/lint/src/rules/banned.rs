//! Generic banned-path rule: the shared matcher behind the four
//! determinism rules and the sans-io purity rule.
//!
//! A banned path is a canonical prefix like `["std", "time", "Instant"]`.
//! The rule flags, in scope-matched files:
//!
//! * `use` bindings whose canonical path starts with a banned prefix
//!   (aliases included — `use std::collections::HashMap as Map` resolves
//!   to the banned path even though `Map` never mentions it);
//! * glob imports whose prefix overlaps a banned prefix in either
//!   direction (`use std::collections::*` pulls `HashMap` into scope;
//!   `use std::thread::*` globs a banned module itself);
//! * expression/type path chains whose canonicalized form starts with a
//!   banned prefix (`Instant::now()` under the import, or the fully
//!   qualified `std::time::Instant::now()`);
//! * as a conservative fallback, bare identifiers from a short
//!   distinctive list (`HashMap`, `Instant`, …) that the import map could
//!   not resolve — catching names smuggled in by a glob or macro;
//! * banned method names in method-call position (`.from_entropy()`).

use crate::diag::{Diagnostic, Exemption};
use crate::lexer::TokenKind;
use crate::rules::{has_component, Rule, RuleMeta};
use crate::source::{Binding, SourceFile};
use std::path::Path;

/// A rule that forbids a set of canonical paths inside a set of crates.
pub struct BannedPathRule {
    /// Name/severity/cfg-skips.
    pub meta: RuleMeta,
    /// Shared remediation hint.
    pub help: &'static str,
    /// Path components the rule applies under (crate dir names, `tests`).
    pub components: &'static [&'static str],
    /// Path components exempt even when inside `components` (e.g. the
    /// bench harness may use threads).
    pub exempt_components: &'static [&'static str],
    /// Banned canonical path prefixes.
    pub banned: &'static [&'static [&'static str]],
    /// Distinctive bare identifiers flagged even without a resolvable
    /// import (glob/macro smuggling fallback).
    pub bare_idents: &'static [&'static str],
    /// Banned names in `.method()` position.
    pub banned_methods: &'static [&'static str],
}

impl BannedPathRule {
    fn match_banned(&self, canon: &[&str]) -> Option<&'static [&'static str]> {
        self.banned
            .iter()
            .copied()
            .find(|prefix| canon.len() >= prefix.len() && canon[..prefix.len()] == **prefix)
    }

    fn glob_overlap(&self, prefix: &[String]) -> Option<&'static [&'static str]> {
        self.banned.iter().copied().find(|banned| {
            let n = prefix.len().min(banned.len());
            prefix[..n]
                .iter()
                .map(String::as_str)
                .eq(banned[..n].iter().copied())
        })
    }

    fn diag(
        &self,
        file: &SourceFile,
        line: u32,
        col: u32,
        offset: usize,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            rule: self.meta.name,
            severity: self.meta.severity,
            path: file.path.clone(),
            line,
            col,
            offset,
            message,
            excerpt: file.line_text(line).to_string(),
            help: self.help,
        }
    }
}

impl Rule for BannedPathRule {
    fn meta(&self) -> &RuleMeta {
        &self.meta
    }

    fn applies(&self, path: &Path) -> bool {
        has_component(path, self.components) && !has_component(path, self.exempt_components)
    }

    fn check_file(
        &self,
        file: &SourceFile,
        out: &mut Vec<Diagnostic>,
        _exemptions: &mut Vec<Exemption>,
    ) {
        // Imports, aliases resolved.
        for b in &file.imports.bindings {
            let segs: Vec<&str> = b.path.iter().map(String::as_str).collect();
            if let Some(banned) = self.match_banned(&segs) {
                out.push(self.diag(
                    file,
                    b.line,
                    b.col,
                    b.offset,
                    format!(
                        "import of banned path `{}`{}",
                        banned.join("::"),
                        alias_note(b),
                    ),
                ));
            }
        }
        // Glob imports overlapping a banned prefix.
        for g in &file.imports.globs {
            if let Some(banned) = self.glob_overlap(&g.path) {
                out.push(self.diag(
                    file,
                    g.line,
                    g.col,
                    g.offset,
                    format!(
                        "glob import `{}::*` pulls banned `{}` into scope",
                        g.path.join("::"),
                        banned.join("::"),
                    ),
                ));
            }
        }
        // Expression/type path chains, canonicalized through the imports.
        let mut flagged_offsets: Vec<usize> = Vec::new();
        for (segs, start) in file.path_chains() {
            let canon = file.imports.canonicalize(&segs);
            if let Some(banned) = self.match_banned(&canon) {
                let t = &file.tokens[start];
                flagged_offsets.push(t.lo);
                out.push(self.diag(
                    file,
                    t.line,
                    t.col,
                    t.lo,
                    format!("use of banned path `{}`", banned.join("::")),
                ));
            } else if let Some(last) = segs.last().copied() {
                // Associated-function position: `SmallRng::from_entropy()`
                // reaches the banned constructor through an arbitrary
                // receiver type, so match the chain tail too.
                if segs.len() >= 2 && self.banned_methods.contains(&last) {
                    let t = &file.tokens[start];
                    flagged_offsets.push(t.lo);
                    out.push(self.diag(
                        file,
                        t.line,
                        t.col,
                        t.lo,
                        format!("call of banned constructor `{}`", segs.join("::")),
                    ));
                }
            }
        }
        // Bare-identifier fallback and method-call scan.
        for (i, t) in file.tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let word = t.text(&file.text);
            let method_pos = i >= 1 && file.tokens[i - 1].is_punct(b'.');
            if method_pos {
                if self.banned_methods.contains(&word)
                    && file
                        .tokens
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokenKind::Open(b'('))
                {
                    out.push(self.diag(
                        file,
                        t.line,
                        t.col,
                        t.lo,
                        format!("call of banned method `.{word}()`"),
                    ));
                }
                continue;
            }
            if !self.bare_idents.contains(&word) {
                continue;
            }
            // Imports were already checked via the resolved bindings.
            if file
                .use_token_ranges
                .iter()
                .any(|&(lo, hi)| i >= lo && i < hi)
            {
                continue;
            }
            // Chain continuations (`std::thread` → `thread` token) belong
            // to the chain flagged at its head.
            if i >= 2 && file.tokens[i - 1].is_punct(b':') && file.tokens[i - 2].is_punct(b':') {
                continue;
            }
            if flagged_offsets.contains(&t.lo) {
                continue;
            }
            out.push(self.diag(
                file,
                t.line,
                t.col,
                t.lo,
                format!("bare reference to banned name `{word}`"),
            ));
        }
    }
}

fn alias_note(b: &Binding) -> String {
    let leaf = b.path.last().map(String::as_str).unwrap_or("");
    if b.name == leaf || b.name == "*" {
        String::new()
    } else {
        format!(" (aliased as `{}`)", b.name)
    }
}
