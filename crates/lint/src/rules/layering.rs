//! `layering`: the crate dependency DAG is pinned.
//!
//! The workspace layers bottom-up:
//!
//! ```text
//! pds-det ─┬─► pds-obs ──┐
//!          │             ├─► pds-core ─► pds-sim ─► pds-mobility
//! pds-bloom┴─────────────┘                  │            │
//!                                           ▼            ▼
//!                              pds-bench ─► pds-dst   (facade: pds)
//! ```
//!
//! The invariant that motivated this rule: **`pds-core` must never depend
//! on `pds-sim`** — the protocol engines sit *below* the simulator so the
//! same engine code can later run under a real network backend. Cargo
//! would happily accept the reverse edge; this rule makes it a lint
//! error at the manifest line that introduced it.
//!
//! `[dev-dependencies]` are exempt: they never ship, and cargo permits
//! dev-only cycles (pds-core's integration tests drive pds-sim). Only
//! workspace (`pds-*`) crates are layered; vendored externals
//! (`bytes`, `proptest`, `criterion`) are outside the DAG.

use crate::diag::{Diagnostic, Severity};
use crate::rules::{Rule, RuleMeta, Workspace};

/// Allowed normal-dependency edges, per crate. A crate absent from this
/// table is itself a finding — extending the workspace means extending
/// the table consciously.
const ALLOWED: &[(&str, &[&str])] = &[
    ("pds-det", &[]),
    ("pds-bloom", &[]),
    ("pds-obs", &["pds-det"]),
    ("pds-core", &["pds-det", "pds-bloom", "pds-obs"]),
    ("pds-sim", &["pds-det", "pds-obs", "pds-core"]),
    (
        "pds-mobility",
        &["pds-det", "pds-obs", "pds-core", "pds-sim"],
    ),
    (
        "pds-bench",
        &[
            "pds-det",
            "pds-obs",
            "pds-bloom",
            "pds-core",
            "pds-sim",
            "pds-mobility",
        ],
    ),
    (
        "pds-dst",
        &[
            "pds-det",
            "pds-obs",
            "pds-bloom",
            "pds-core",
            "pds-sim",
            "pds-mobility",
            "pds-bench",
        ],
    ),
    (
        "pds",
        &[
            "pds-det",
            "pds-obs",
            "pds-bloom",
            "pds-core",
            "pds-sim",
            "pds-mobility",
            "pds-bench",
        ],
    ),
    // Test sources live in /tests and use everything via dev-dependencies
    // (exempt); the one real edge exists so the crate's `replay-digest`
    // feature can forward to pds-sim's (cargo features cannot reference
    // dev-dependencies). Integration sits above every shipping crate, so
    // the edge cannot create a cycle.
    ("pds-integration", &["pds-sim"]),
    ("pds-lint", &[]),
    ("xtask", &["pds-lint"]),
];

/// The crate-layering rule (workspace pass only).
pub struct Layering {
    meta: RuleMeta,
}

impl Layering {
    /// Constructs the rule.
    #[must_use]
    pub fn new() -> Self {
        Self {
            meta: RuleMeta {
                name: "layering",
                severity: Severity::Error,
                description: "crate dependency edges must stay inside the pinned DAG",
                skip_cfg_test: false,
                skip_cfg_prof: false,
            },
        }
    }
}

impl Default for Layering {
    fn default() -> Self {
        Self::new()
    }
}

/// `true` for names that belong to the layered workspace DAG.
fn is_workspace_crate(name: &str) -> bool {
    name.starts_with("pds") || name == "xtask"
}

impl Rule for Layering {
    fn meta(&self) -> &RuleMeta {
        &self.meta
    }

    fn applies(&self, _path: &std::path::Path) -> bool {
        false // no per-file pass
    }

    fn check_workspace(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for m in &ws.manifests {
            let Some((_, allowed)) = ALLOWED.iter().find(|(n, _)| *n == m.name) else {
                out.push(Diagnostic {
                    rule: self.meta.name,
                    severity: self.meta.severity,
                    path: m.path.clone(),
                    line: 1,
                    col: 1,
                    offset: 0,
                    message: format!(
                        "crate `{}` is not in the layering table; add it to rules/layering.rs with its allowed dependencies",
                        m.name
                    ),
                    excerpt: String::new(),
                    help: "every workspace crate must declare its layer",
                });
                continue;
            };
            for dep in &m.dependencies {
                if is_workspace_crate(&dep.name) && !allowed.contains(&dep.name.as_str()) {
                    out.push(Diagnostic {
                        rule: self.meta.name,
                        severity: self.meta.severity,
                        path: m.path.clone(),
                        line: dep.line,
                        col: 1,
                        offset: 0,
                        message: format!(
                            "layering violation: `{}` may not depend on `{}`",
                            m.name, dep.name
                        ),
                        excerpt: format!("{} = {{ workspace = true }}", dep.name),
                        help: "dependency edges flow det/bloom → obs → core → sim → mobility → bench → dst; invert the design, not the DAG",
                    });
                }
            }
        }
        // Cycle detection over normal deps — defense in depth for the day
        // the table itself encodes a cycle.
        if let Some(cycle) = find_cycle(ws) {
            out.push(Diagnostic {
                rule: self.meta.name,
                severity: self.meta.severity,
                path: "Cargo.toml".into(),
                line: 1,
                col: 1,
                offset: 0,
                message: format!("dependency cycle: {}", cycle.join(" -> ")),
                excerpt: String::new(),
                help: "break the cycle; only dev-dependencies may point back down",
            });
        }
    }
}

/// DFS cycle search over workspace normal-dependency edges.
fn find_cycle(ws: &Workspace) -> Option<Vec<String>> {
    let names: Vec<&str> = ws.manifests.iter().map(|m| m.name.as_str()).collect();
    // Adjacency by index, edges to non-workspace crates dropped.
    let adj: Vec<Vec<usize>> = ws
        .manifests
        .iter()
        .map(|m| {
            m.dependencies
                .iter()
                .filter_map(|d| names.iter().position(|n| *n == d.name))
                .collect()
        })
        .collect();
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; names.len()];
    let mut stack: Vec<usize> = Vec::new();
    fn visit(
        idx: usize,
        names: &[&str],
        adj: &[Vec<usize>],
        state: &mut [u8],
        stack: &mut Vec<usize>,
    ) -> Option<Vec<String>> {
        state[idx] = 1;
        stack.push(idx);
        for &j in &adj[idx] {
            match state[j] {
                1 => {
                    let start = stack.iter().position(|&s| s == j).unwrap_or(0);
                    let mut cycle: Vec<String> = stack[start..]
                        .iter()
                        .map(|&s| names[s].to_string())
                        .collect();
                    cycle.push(names[j].to_string());
                    return Some(cycle);
                }
                0 => {
                    if let Some(c) = visit(j, names, adj, state, stack) {
                        return Some(c);
                    }
                }
                _ => {}
            }
        }
        stack.pop();
        state[idx] = 2;
        None
    }
    for i in 0..names.len() {
        if state[i] == 0 {
            if let Some(c) = visit(i, &names, &adj, &mut state, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{Dep, Manifest};
    use std::path::PathBuf;

    fn manifest(name: &str, deps: &[&str]) -> Manifest {
        Manifest {
            name: name.to_string(),
            dependencies: deps
                .iter()
                .enumerate()
                .map(|(i, d)| Dep {
                    name: (*d).to_string(),
                    line: u32::try_from(i).unwrap() + 10,
                })
                .collect(),
            dev_dependencies: Vec::new(),
            path: PathBuf::from(format!("crates/{name}/Cargo.toml")),
        }
    }

    fn run(manifests: Vec<Manifest>) -> Vec<String> {
        let ws = Workspace { manifests };
        let mut out = Vec::new();
        Layering::new().check_workspace(&ws, &mut out);
        out.into_iter().map(|d| d.message).collect()
    }

    #[test]
    fn clean_dag_passes() {
        let msgs = run(vec![
            manifest("pds-det", &[]),
            manifest("pds-core", &["pds-det", "pds-bloom", "pds-obs"]),
            manifest("pds-sim", &["pds-det", "pds-obs", "pds-core"]),
        ]);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn core_depending_on_sim_is_the_canonical_violation() {
        let msgs = run(vec![
            manifest("pds-core", &["pds-det", "pds-sim"]),
            manifest("pds-sim", &["pds-core"]),
        ]);
        assert!(
            msgs.iter()
                .any(|m| m.contains("`pds-core` may not depend on `pds-sim`")),
            "{msgs:?}"
        );
        // The reverse edge also closes a cycle, reported separately.
        assert!(
            msgs.iter().any(|m| m.contains("dependency cycle")),
            "{msgs:?}"
        );
    }

    #[test]
    fn dev_dependencies_are_exempt() {
        let mut m = manifest("pds-core", &["pds-det"]);
        m.dev_dependencies.push(Dep {
            name: "pds-sim".to_string(),
            line: 20,
        });
        let msgs = run(vec![m]);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn unknown_crate_must_be_added_to_the_table() {
        let msgs = run(vec![manifest("pds-new-thing", &[])]);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("not in the layering table"));
    }
}
