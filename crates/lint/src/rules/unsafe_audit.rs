//! `unsafe-audit`: `#![forbid(unsafe_code)]` workspace-wide, with a
//! `// SAFETY:` rationale required on any block that survives.
//!
//! Two checks:
//!
//! * every crate root (`src/lib.rs` / `src/main.rs`) must carry the
//!   `#![forbid(unsafe_code)]` inner attribute — `deny` is not enough,
//!   because `deny` can be re-`allow`ed locally while `forbid` cannot;
//! * every `unsafe` token is flagged unless a `// SAFETY: <rationale>`
//!   comment sits within the three lines above it (or on the same line).
//!   A rationale-carrying block is recorded as an *exemption* — it shows
//!   up in the ratcheted `lint-exemptions.txt` inventory rather than
//!   silently passing.
//!
//! Today the workspace has zero unsafe blocks; the second check exists so
//! that the first one can ever be relaxed (via an audited pragma on the
//! crate root) without losing per-block accountability.

use crate::diag::{Diagnostic, Exemption, Severity};
use crate::lexer::TokenKind;
use crate::rules::{Rule, RuleMeta};
use crate::source::SourceFile;
use std::path::Path;

/// How many lines above an `unsafe` token a `// SAFETY:` comment may sit.
const SAFETY_WINDOW: u32 = 3;

/// The unsafe-audit rule.
pub struct UnsafeAudit {
    meta: RuleMeta,
}

impl UnsafeAudit {
    /// Constructs the rule.
    #[must_use]
    pub fn new() -> Self {
        Self {
            meta: RuleMeta {
                name: "unsafe-audit",
                severity: Severity::Error,
                description: "forbid(unsafe_code) at every crate root; SAFETY rationale per block",
                skip_cfg_test: false,
                skip_cfg_prof: false,
            },
        }
    }
}

impl Default for UnsafeAudit {
    fn default() -> Self {
        Self::new()
    }
}

/// `true` for `src/lib.rs` and `src/main.rs` — the files where the inner
/// attribute must live.
fn is_crate_root(path: &Path) -> bool {
    let name = path.file_name().and_then(|n| n.to_str());
    let parent = path
        .parent()
        .and_then(Path::file_name)
        .and_then(|n| n.to_str());
    matches!(name, Some("lib.rs" | "main.rs")) && parent == Some("src")
}

/// Scans for the `#![forbid(unsafe_code)]` inner attribute.
fn has_forbid_unsafe(file: &SourceFile) -> bool {
    let toks = &file.tokens;
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].is_punct(b'#')
            && toks[i + 1].is_punct(b'!')
            && toks[i + 2].kind == TokenKind::Open(b'[')
        {
            let mut depth = 1;
            let mut j = i + 3;
            let mut saw_forbid = false;
            let mut saw_unsafe_code = false;
            while j < toks.len() && depth > 0 {
                match toks[j].kind {
                    TokenKind::Open(_) => depth += 1,
                    TokenKind::Close(_) => depth -= 1,
                    TokenKind::Ident => {
                        let w = toks[j].text(&file.text);
                        saw_forbid |= w == "forbid";
                        saw_unsafe_code |= w == "unsafe_code";
                    }
                    _ => {}
                }
                j += 1;
            }
            if saw_forbid && saw_unsafe_code {
                return true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    false
}

impl Rule for UnsafeAudit {
    fn meta(&self) -> &RuleMeta {
        &self.meta
    }

    fn check_file(
        &self,
        file: &SourceFile,
        out: &mut Vec<Diagnostic>,
        exemptions: &mut Vec<Exemption>,
    ) {
        if is_crate_root(&file.path) && !has_forbid_unsafe(file) {
            out.push(Diagnostic {
                rule: self.meta.name,
                severity: self.meta.severity,
                path: file.path.clone(),
                line: 1,
                col: 1,
                offset: 0,
                message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
                excerpt: file.line_text(1).to_string(),
                help: "add the inner attribute; if the crate truly needs unsafe, exempt the root with an audited pragma",
            });
        }
        for t in &file.tokens {
            if t.kind != TokenKind::Ident || t.text(&file.text) != "unsafe" {
                continue;
            }
            // Look for a SAFETY rationale ending within the window above
            // (or trailing on the same line). Only a comment line that
            // *starts* with `SAFETY:` counts — prose that merely mentions
            // the word (like this sentence) must not pass the audit.
            let rationale = file.comments.iter().find_map(|c| {
                let close_enough = c.end_line <= t.line && c.end_line + SAFETY_WINDOW >= t.line;
                if !close_enough {
                    return None;
                }
                c.text.lines().find_map(|l| {
                    l.trim_start_matches(['/', '!', ' '])
                        .strip_prefix("SAFETY:")
                        .map(|rest| rest.trim().to_string())
                })
            });
            match rationale {
                Some(reason) if !reason.is_empty() => exemptions.push(Exemption {
                    path: file.path.clone(),
                    rule: "unsafe-audit".to_string(),
                    reason,
                }),
                _ => out.push(Diagnostic {
                    rule: self.meta.name,
                    severity: self.meta.severity,
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    offset: t.lo,
                    message: "`unsafe` without a `// SAFETY:` rationale".to_string(),
                    excerpt: file.line_text(t.line).to_string(),
                    help:
                        "document the invariant in a `// SAFETY:` comment directly above the block",
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> (Vec<String>, Vec<Exemption>) {
        let rule = UnsafeAudit::new();
        let f = SourceFile::parse(Path::new(path), src.to_string());
        let mut out = Vec::new();
        let mut ex = Vec::new();
        rule.check_file(&f, &mut out, &mut ex);
        (out.into_iter().map(|d| d.message).collect(), ex)
    }

    #[test]
    fn crate_root_without_forbid_is_flagged() {
        let (msgs, _) = check("crates/dst/src/lib.rs", "//! Docs.\npub fn f() {}\n");
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("forbid(unsafe_code)"));
    }

    #[test]
    fn crate_root_with_forbid_passes() {
        let (msgs, _) = check(
            "crates/dst/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn non_root_files_skip_the_forbid_check() {
        let (msgs, _) = check("crates/dst/src/faults.rs", "pub fn f() {}\n");
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn unsafe_without_safety_is_flagged() {
        let (msgs, ex) = check(
            "crates/sim/src/x.rs",
            "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(ex.is_empty());
    }

    #[test]
    fn unsafe_with_safety_becomes_an_exemption() {
        let (msgs, ex) = check(
            "crates/sim/src/x.rs",
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid for reads\n    unsafe { *p }\n}\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
        assert_eq!(ex.len(), 1);
        assert!(ex[0].reason.contains("caller guarantees"));
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let (msgs, _) = check(
            "crates/sim/src/x.rs",
            "// this code is not unsafe\nfn f() -> &'static str { \"unsafe\" }\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }
}
