//! The pluggable rule registry.
//!
//! Each rule implements [`Rule`]; the engine owns the shared plumbing
//! (file walking, cfg-region filtering, pragma exemption, sorting), so a
//! rule only describes *what* is wrong — never how exemptions work.
//!
//! The five rule families, mirroring the workspace's layering and
//! determinism contracts (DESIGN.md §8 and §13):
//!
//! 1. **determinism** ([`determinism`]) — four path-aware ports of the old
//!    lexical rules: `std-collections`, `wall-clock`, `entropy-rng`,
//!    `thread-pool`;
//! 2. **sans-io** ([`sans_io`]) — the protocol crates must stay pure;
//! 3. **panic-path** ([`panic_path`]) — the hot dispatch path must not
//!    panic;
//! 4. **layering** ([`layering`]) — the crate DAG is pinned;
//! 5. **unsafe-audit** ([`unsafe_audit`]) — `forbid(unsafe_code)`
//!    everywhere, `// SAFETY:` rationale per exempt block.

pub mod banned;
pub mod determinism;
pub mod layering;
pub mod panic_path;
pub mod sans_io;
pub mod unsafe_audit;

use crate::diag::{Diagnostic, Exemption, Severity};
use crate::manifest::Manifest;
use crate::source::SourceFile;
use std::path::Path;

/// Static description of a rule, consulted by the engine.
#[derive(Debug, Clone, Copy)]
pub struct RuleMeta {
    /// Rule name — also the `allow(<name>)` pragma key and the JSON `rule`
    /// field.
    pub name: &'static str,
    /// Default severity of its findings.
    pub severity: Severity,
    /// One-line description for `--list-rules` style output.
    pub description: &'static str,
    /// Findings inside `#[cfg(test)]` regions are dropped (tests may
    /// unwrap, may use HashMap, …).
    pub skip_cfg_test: bool,
    /// Findings inside `#[cfg(feature = "prof")]` regions are dropped
    /// (profiling code may read the wall clock).
    pub skip_cfg_prof: bool,
}

/// Workspace-level inputs for rules that look beyond single files.
pub struct Workspace {
    /// All `crates/*/Cargo.toml` manifests, sorted by crate name.
    pub manifests: Vec<Manifest>,
}

/// One static-analysis rule.
pub trait Rule {
    /// The rule's static metadata.
    fn meta(&self) -> &RuleMeta;

    /// Whether this rule runs on the given workspace-relative file path.
    fn applies(&self, _path: &Path) -> bool {
        true
    }

    /// Per-file pass. Push raw findings; the engine applies cfg-region
    /// filtering and pragma exemptions afterwards. Rules that audit
    /// in-source justifications (e.g. `// SAFETY:`) may push directly to
    /// `exemptions`.
    fn check_file(
        &self,
        _file: &SourceFile,
        _out: &mut Vec<Diagnostic>,
        _exemptions: &mut Vec<Exemption>,
    ) {
    }

    /// Whole-workspace pass (Cargo metadata, cross-file facts). Runs once.
    fn check_workspace(&self, _ws: &Workspace, _out: &mut Vec<Diagnostic>) {}
}

/// The default registry: every rule the workspace ships with, in
/// deterministic order.
#[must_use]
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    let mut rules: Vec<Box<dyn Rule>> = Vec::new();
    rules.extend(determinism::rules());
    rules.push(Box::new(sans_io::SansIo::new()));
    rules.push(Box::new(panic_path::PanicPath::new()));
    rules.push(Box::new(layering::Layering::new()));
    rules.push(Box::new(unsafe_audit::UnsafeAudit::new()));
    rules
}

/// `true` if any path component equals one of `names`.
#[must_use]
pub fn has_component(path: &Path, names: &[&str]) -> bool {
    path.components()
        .any(|c| c.as_os_str().to_str().is_some_and(|s| names.contains(&s)))
}

/// `true` if the path lives under a top-level `crates/<name>/` directory
/// for any `name` in `names` — or, for fixture trees, under any directory
/// component equal to `name` (fixtures mirror crate names without the
/// `crates/` root).
#[must_use]
pub fn in_crate(path: &Path, names: &[&str]) -> bool {
    has_component(path, names)
}
