//! `panic`: panic-freedom on the hot dispatch path.
//!
//! A panic mid-dispatch poisons the world: the event queue is left
//! half-drained, the replay digest diverges from the prefix already
//! emitted, and under the DST fault layer a panic is indistinguishable
//! from a seed-minimization hit. The hot path therefore must not contain
//! `unwrap`/`expect`, panic-family macros, unchecked accessors, or bare
//! slice indexing (which panics on out-of-bounds).
//!
//! Scope is targeted, not blanket:
//!
//! * `crates/sim/src/wheel.rs` — the timer wheel (whole file);
//! * `crates/sim/src/transport.rs` — fragment reassembly (whole file);
//! * `crates/sim/src/world.rs` — the dispatch-path functions only
//!   (`World::dispatch` down through `fire_timer`); builders, accessors
//!   and tests are out of scope;
//! * `crates/core/src/engine/{mod,pdd,pdr,mdr}.rs` — the PDD/PDR/MDR
//!   step functions (whole files; `engine/tests.rs` is excluded).
//!
//! An invariant-justified index can stay with an audited line pragma:
//! `// lint: allow(panic) -- <why the invariant holds>`. Every such
//! pragma lands in the ratcheted exemption inventory.

use crate::diag::{Diagnostic, Exemption, Severity};
use crate::lexer::TokenKind;
use crate::rules::{has_component, Rule, RuleMeta};
use crate::source::SourceFile;
use std::path::Path;

/// One file under the panic-freedom contract.
struct HotTarget {
    /// Path component that must be present (crate or module dir).
    component: &'static str,
    /// Exact file name.
    file: &'static str,
    /// `None` = whole file; `Some` = only these function bodies.
    fns: Option<&'static [&'static str]>,
}

/// `World` dispatch-path functions, in call order from `run_until` down.
const WORLD_HOT_FNS: &[&str] = &[
    "run_until",
    "run_for",
    "dispatch",
    "dispatch_inner",
    "trace_kernel",
    "call_app",
    "apply_commands",
    "start_send",
    "pace_frame",
    "drain_bucket",
    "enqueue_os",
    "mac_try",
    "tx_end",
    "fault_cut",
    "fault_roll_drop",
    "fault_roll_delay",
    "fault_roll_dup",
    "fault_enqueue",
    "fault_deliver",
    "deliver_frame",
    "frame_done",
    "fire_timer",
    "refresh_node_grid",
    "emit",
];

const TARGETS: &[HotTarget] = &[
    HotTarget {
        component: "sim",
        file: "wheel.rs",
        fns: None,
    },
    HotTarget {
        component: "sim",
        file: "transport.rs",
        fns: None,
    },
    HotTarget {
        component: "sim",
        file: "world.rs",
        fns: Some(WORLD_HOT_FNS),
    },
    HotTarget {
        component: "engine",
        file: "mod.rs",
        fns: None,
    },
    HotTarget {
        component: "engine",
        file: "pdd.rs",
        fns: None,
    },
    HotTarget {
        component: "engine",
        file: "pdr.rs",
        fns: None,
    },
    HotTarget {
        component: "engine",
        file: "mdr.rs",
        fns: None,
    },
];

/// Method names that panic (or are UB) on the unhappy path.
const PANICKY_METHODS: &[&str] = &["unwrap", "expect", "unwrap_unchecked"];

/// Panic-family macro names.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can precede `[` without it being an index expression
/// (slice patterns, mostly).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "while", "match", "return", "else", "move", "box",
];

/// The panic-freedom rule.
pub struct PanicPath {
    meta: RuleMeta,
}

impl PanicPath {
    /// Constructs the rule.
    #[must_use]
    pub fn new() -> Self {
        Self {
            meta: RuleMeta {
                name: "panic",
                severity: Severity::Error,
                description: "no unwrap/expect/panic!/indexing/unchecked on the hot dispatch path",
                skip_cfg_test: true,
                skip_cfg_prof: false,
            },
        }
    }

    fn target_for(path: &Path) -> Option<&'static HotTarget> {
        let name = path.file_name()?.to_str()?;
        TARGETS
            .iter()
            .find(|t| t.file == name && has_component(path, &[t.component]))
    }
}

impl Default for PanicPath {
    fn default() -> Self {
        Self::new()
    }
}

impl Rule for PanicPath {
    fn meta(&self) -> &RuleMeta {
        &self.meta
    }

    fn applies(&self, path: &Path) -> bool {
        Self::target_for(path).is_some()
    }

    fn check_file(
        &self,
        file: &SourceFile,
        out: &mut Vec<Diagnostic>,
        _exemptions: &mut Vec<Exemption>,
    ) {
        let Some(target) = Self::target_for(&file.path) else {
            return;
        };
        // In-scope byte ranges: the listed fn bodies, or the whole file.
        let ranges: Vec<(usize, usize)> = match target.fns {
            None => vec![(0, file.text.len())],
            Some(names) => file
                .fns
                .iter()
                .filter(|f| names.contains(&f.name.as_str()))
                .map(|f| (f.lo, f.hi))
                .collect(),
        };
        let in_scope = |offset: usize| ranges.iter().any(|&(lo, hi)| offset >= lo && offset < hi);
        let enclosing = |offset: usize| {
            file.fns
                .iter()
                .filter(|f| offset >= f.lo && offset < f.hi)
                .min_by_key(|f| f.hi - f.lo)
                .map(crate::source::FnSpan::qualified)
        };
        let mut push = |tok: &crate::lexer::Token, what: String| {
            let site = enclosing(tok.lo)
                .map(|f| format!(" in `{f}`"))
                .unwrap_or_default();
            out.push(Diagnostic {
                rule: self.meta.name,
                severity: self.meta.severity,
                path: file.path.clone(),
                line: tok.line,
                col: tok.col,
                offset: tok.lo,
                message: format!("{what} on the hot path{site}"),
                excerpt: file.line_text(tok.line).to_string(),
                help: "return a typed error, use .get()/checked ops, or justify with `// lint: allow(panic) -- <invariant>`",
            });
        };

        let toks = &file.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if !in_scope(t.lo) {
                continue;
            }
            match t.kind {
                TokenKind::Ident => {
                    let word = t.text(&file.text);
                    let prev_dot = i >= 1 && toks[i - 1].is_punct(b'.');
                    let next_open_paren = toks
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokenKind::Open(b'('));
                    let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct(b'!'));
                    if prev_dot && next_open_paren {
                        if PANICKY_METHODS.contains(&word) {
                            push(t, format!("`.{word}()`"));
                        } else if word.starts_with("get_unchecked") {
                            push(t, format!("unchecked accessor `.{word}()`"));
                        }
                    } else if next_bang && PANIC_MACROS.contains(&word) {
                        // `foo!` — but not `a != b` (the ident is then not
                        // a macro name we track followed by `(`/`[`/`{`).
                        let after_bang = toks.get(i + 2).map(|n| n.kind);
                        if matches!(
                            after_bang,
                            Some(
                                TokenKind::Open(b'(')
                                    | TokenKind::Open(b'[')
                                    | TokenKind::Open(b'{')
                            )
                        ) {
                            push(t, format!("`{word}!`"));
                        }
                    }
                }
                TokenKind::Open(b'[') if i >= 1 => {
                    let prev = &toks[i - 1];
                    let indexable = match prev.kind {
                        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text(&file.text)),
                        TokenKind::Close(b')') | TokenKind::Close(b']') => true,
                        _ => false,
                    };
                    if indexable {
                        push(t, "slice/array indexing".to_string());
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<String> {
        let rule = PanicPath::new();
        let f = SourceFile::parse(Path::new(path), src.to_string());
        let mut out = Vec::new();
        let mut ex = Vec::new();
        if rule.applies(Path::new(path)) {
            rule.check_file(&f, &mut out, &mut ex);
        }
        out.into_iter().map(|d| d.message).collect()
    }

    #[test]
    fn unwrap_in_wheel_is_caught() {
        let msgs = check(
            "crates/sim/src/wheel.rs",
            "fn pop(&mut self) { let x = self.slots.front().unwrap(); }\n",
        );
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("`.unwrap()`"));
        assert!(msgs[0].contains("in `pop`"), "{msgs:?}");
    }

    #[test]
    fn world_scope_is_fn_targeted() {
        let src = "impl World {\n    fn dispatch(&mut self) { self.q[0]; }\n    fn stats(&self) -> u32 { self.counts[0] }\n}\n";
        let msgs = check("crates/sim/src/world.rs", src);
        // Indexing inside dispatch is flagged; the accessor is out of scope.
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("World::dispatch"));
    }

    #[test]
    fn panic_macro_and_expect_are_caught() {
        let msgs = check(
            "crates/core/src/engine/pdr.rs",
            "fn step(&mut self) { let v = self.x.expect(\"set\"); panic!(\"boom\"); }\n",
        );
        assert_eq!(msgs.len(), 2, "{msgs:?}");
    }

    #[test]
    fn benign_constructs_pass() {
        let msgs = check(
            "crates/sim/src/transport.rs",
            "fn ok(&self) -> Option<u8> {\n    let [a, b] = self.pair;\n    let _ = a != b;\n    let arr = [0u8; 4];\n    self.map.get(&1).copied().map(|x| x.saturating_add(arr.len() as u8))\n}\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn unwrap_or_variants_pass() {
        let msgs = check(
            "crates/sim/src/wheel.rs",
            "fn f(&self) -> u32 { self.x.unwrap_or(0).min(self.y.unwrap_or_else(|| 1)) }\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn other_files_are_out_of_scope() {
        assert!(!PanicPath::new().applies(Path::new("crates/sim/src/radio.rs")));
        assert!(!PanicPath::new().applies(Path::new("crates/core/src/engine/tests.rs")));
        assert!(PanicPath::new().applies(Path::new("crates/core/src/engine/mdr.rs")));
    }
}
