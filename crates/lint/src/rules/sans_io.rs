//! `sans-io`: the protocol crates must stay pure.
//!
//! `pds-core` (protocol engines), `pds-bloom` (filters) and `pds`
//! (facade) are the sans-io layer: every effect leaves through the
//! `Application`/`Command` seam, so the same code runs under the
//! deterministic simulator today and a real network backend later
//! (ROADMAP: pds-net). Any direct reference to sockets, the host clock,
//! the filesystem, threads, or an async runtime punches a hole in that
//! seam — it would work in production and silently diverge in replay.
//!
//! This is a distinct rule from the determinism family: determinism bans
//! *specific nondeterministic* std APIs in all simulation crates, while
//! sans-io bans *whole effect modules* in the protocol crates only
//! (e.g. `std::time::Duration` is deterministic but still banned here —
//! protocol code must speak `SimDuration`).

use crate::diag::Severity;
use crate::rules::banned::BannedPathRule;
use crate::rules::RuleMeta;

/// Constructs the sans-io purity rule.
pub struct SansIo;

impl SansIo {
    /// The configured [`BannedPathRule`] (named constructor kept so the
    /// registry reads uniformly).
    #[must_use]
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> BannedPathRule {
        BannedPathRule {
            meta: RuleMeta {
                name: "sans-io",
                severity: Severity::Error,
                // Unit tests inside protocol crates may drive the sim
                // harness or use std conveniences; purity binds shipped
                // code.
                skip_cfg_test: true,
                skip_cfg_prof: true,
                description: "protocol crates must not touch I/O, clocks, threads, or async runtimes",
            },
            help: "route the effect through the Application/Command seam (SimTime, timers, send_message)",
            components: &["core", "bloom", "pds"],
            exempt_components: &[],
            banned: &[
                &["std", "net"],
                &["std", "time"],
                &["std", "fs"],
                &["std", "thread"],
                &["std", "process"],
                &["std", "io"],
                &["tokio"],
                &["async_std"],
                &["smol"],
                &["mio"],
                &["socket2"],
            ],
            bare_idents: &["TcpStream", "TcpListener", "UdpSocket"],
            banned_methods: &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;
    use crate::source::SourceFile;
    use std::path::Path;

    fn check(path: &str, src: &str) -> Vec<String> {
        let rule = SansIo::new();
        let f = SourceFile::parse(Path::new(path), src.to_string());
        let mut out = Vec::new();
        let mut ex = Vec::new();
        if rule.applies(Path::new(path)) {
            rule.check_file(&f, &mut out, &mut ex);
        }
        out.into_iter().map(|d| d.message).collect()
    }

    #[test]
    fn socket_in_core_is_caught() {
        let msgs = check(
            "crates/core/src/x.rs",
            "use std::net::UdpSocket;\nfn f() { let s = UdpSocket::bind(\"0.0.0.0:0\"); }\n",
        );
        assert_eq!(msgs.len(), 2, "{msgs:?}");
    }

    #[test]
    fn duration_in_core_is_caught_even_though_deterministic() {
        let msgs = check(
            "crates/core/src/x.rs",
            "fn f() { let d = std::time::Duration::from_secs(1); }\n",
        );
        assert_eq!(msgs.len(), 1, "{msgs:?}");
    }

    #[test]
    fn sim_crate_is_out_of_scope() {
        let msgs = check("crates/sim/src/x.rs", "use std::time::Duration;\n");
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn pure_protocol_code_passes() {
        let msgs = check(
            "crates/core/src/x.rs",
            "use pds_core::{SimTime, SimDuration};\nfn f(t: SimTime) -> SimTime { t + SimDuration::from_millis(5) }\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }
}
