//! The four determinism rules, ported from the old lexical scanner to
//! path-aware AST matching.
//!
//! Simulation crates must be bit-reproducible: iteration order, time, and
//! randomness all flow from the seeded deterministic substrate
//! (DESIGN.md §8). These rules ban the std escape hatches:
//!
//! * `std-collections` — `HashMap`/`HashSet` (RandomState iteration order
//!   varies per process); use `BTreeMap`/`BTreeSet` or `pds_det`
//!   containers;
//! * `wall-clock` — `Instant`/`SystemTime`/`UNIX_EPOCH`; use `SimTime`;
//! * `entropy-rng` — OS-entropy RNG constructors; use the seeded
//!   `SimRng`;
//! * `thread-pool` — `std::thread`/`rayon`; the simulation commits
//!   everything observable on one thread by construction. Two audited
//!   exceptions exist: the parallel sweep executor in `pds-bench`
//!   (component-exempt) and the shard verdict executor in
//!   `crates/sim/src/shard.rs`, which carries a pragma because its
//!   scoped workers only evaluate a pure function over a frozen
//!   snapshot (DESIGN.md §15) — both ratcheted in `lint-exemptions.txt`.
//!
//! Unlike the old scanner these resolve `use` trees, so
//! `use std::collections::HashMap as Map; Map::new()` is caught.

use crate::diag::Severity;
use crate::rules::banned::BannedPathRule;
use crate::rules::{Rule, RuleMeta};

/// Crates under the determinism contract, plus the workspace `tests/`
/// tree. Test code is *not* exempt: replay digests are computed in tests,
/// so nondeterminism there hides real regressions.
const DET_SCOPE: &[&str] = &[
    "sim", "core", "mobility", "bloom", "bench", "obs", "dst", "tests",
];

/// The four determinism rules, in registry order.
#[must_use]
pub fn rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(std_collections()),
        Box::new(wall_clock()),
        Box::new(entropy_rng()),
        Box::new(thread_pool()),
    ]
}

/// `std-collections`: randomized-iteration-order containers.
#[must_use]
pub fn std_collections() -> BannedPathRule {
    BannedPathRule {
        meta: RuleMeta {
            name: "std-collections",
            severity: Severity::Error,
            description: "HashMap/HashSet iteration order is per-process random",
            skip_cfg_test: false,
            skip_cfg_prof: false,
        },
        help: "use BTreeMap/BTreeSet (deterministic iteration) instead",
        components: DET_SCOPE,
        exempt_components: &[],
        banned: &[
            &["std", "collections", "HashMap"],
            &["std", "collections", "HashSet"],
            &["std", "collections", "hash_map"],
            &["std", "collections", "hash_set"],
            &["std", "hash", "RandomState"],
        ],
        bare_idents: &["HashMap", "HashSet", "RandomState"],
        banned_methods: &[],
    }
}

/// `wall-clock`: host-clock reads.
#[must_use]
pub fn wall_clock() -> BannedPathRule {
    BannedPathRule {
        meta: RuleMeta {
            name: "wall-clock",
            severity: Severity::Error,
            description: "host clock reads are nondeterministic across runs",
            // Profiling instrumentation may read the clock — it reports
            // throughput, never feeds simulation state.
            skip_cfg_test: false,
            skip_cfg_prof: true,
        },
        help: "use SimTime / the event scheduler; wall time only behind the prof feature",
        components: DET_SCOPE,
        exempt_components: &[],
        banned: &[
            &["std", "time", "Instant"],
            &["std", "time", "SystemTime"],
            &["std", "time", "UNIX_EPOCH"],
        ],
        bare_idents: &["Instant", "SystemTime", "UNIX_EPOCH"],
        banned_methods: &[],
    }
}

/// `entropy-rng`: OS-entropy randomness.
#[must_use]
pub fn entropy_rng() -> BannedPathRule {
    BannedPathRule {
        meta: RuleMeta {
            name: "entropy-rng",
            severity: Severity::Error,
            description: "OS-entropy RNGs break seeded replay",
            skip_cfg_test: false,
            skip_cfg_prof: false,
        },
        help: "use the seeded SimRng (split from the world seed)",
        components: DET_SCOPE,
        exempt_components: &[],
        banned: &[
            &["rand", "thread_rng"],
            &["rand", "rngs", "OsRng"],
            &["rand", "rngs", "ThreadRng"],
            &["getrandom"],
        ],
        bare_idents: &["OsRng", "ThreadRng", "thread_rng", "getrandom"],
        banned_methods: &["from_entropy"],
    }
}

/// `thread-pool`: host threads.
#[must_use]
pub fn thread_pool() -> BannedPathRule {
    BannedPathRule {
        meta: RuleMeta {
            name: "thread-pool",
            severity: Severity::Error,
            description: "host threads introduce scheduling nondeterminism",
            skip_cfg_test: false,
            skip_cfg_prof: false,
        },
        help: "keep observable simulation state single-threaded; parallelism lives in \
               pds-bench's sweep executor or the audited shard verdict executor \
               (crates/sim/src/shard.rs, pragma + DESIGN.md §15)",
        components: DET_SCOPE,
        // The bench harness runs whole deterministic worlds on worker
        // threads; digests stay reproducible because each world commits
        // sequentially internally. The crate stays exempt, as under the
        // old scanner. The sim crate's shard executor is NOT
        // component-exempt: it carries a line pragma so any new thread
        // use elsewhere in the kernel still fails the ratchet.
        exempt_components: &["bench"],
        banned: &[&["std", "thread"], &["std", "sync", "mpsc"], &["rayon"]],
        bare_idents: &["ThreadPool", "rayon"],
        banned_methods: &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::Path;

    fn check(rule: &BannedPathRule, path: &str, src: &str) -> Vec<String> {
        let f = SourceFile::parse(Path::new(path), src.to_string());
        assert!(rule.applies(Path::new(path)), "rule should apply to {path}");
        let mut out = Vec::new();
        let mut ex = Vec::new();
        rule.check_file(&f, &mut out, &mut ex);
        out.into_iter().map(|d| d.message).collect()
    }

    #[test]
    fn aliased_hashmap_is_caught() {
        let msgs = check(
            &std_collections(),
            "crates/sim/src/x.rs",
            "use std::collections::HashMap as Map;\nfn f() { let m = Map::new(); m.len(); }\n",
        );
        assert_eq!(msgs.len(), 2, "{msgs:?}");
        assert!(msgs[0].contains("aliased as `Map`"), "{msgs:?}");
    }

    #[test]
    fn fully_qualified_instant_is_caught() {
        let msgs = check(
            &wall_clock(),
            "crates/core/src/x.rs",
            "fn f() { let t = std::time::Instant::now(); }\n",
        );
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("std::time::Instant"));
    }

    #[test]
    fn deterministic_collections_pass() {
        let msgs = check(
            &std_collections(),
            "crates/sim/src/x.rs",
            "use std::collections::{BTreeMap, BTreeSet, VecDeque, BinaryHeap};\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn glob_of_banned_module_is_caught() {
        let msgs = check(
            &thread_pool(),
            "crates/dst/src/x.rs",
            "use std::thread::*;\n",
        );
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("glob import"));
    }

    #[test]
    fn from_entropy_method_is_caught() {
        let msgs = check(
            &entropy_rng(),
            "crates/core/src/x.rs",
            "fn f(r: R) { let x = R::seed(0).from_entropy(); }\n",
        );
        assert_eq!(msgs.len(), 1, "{msgs:?}");
    }

    #[test]
    fn bench_is_exempt_from_thread_pool_only() {
        let rule = thread_pool();
        assert!(!rule.applies(Path::new("crates/bench/src/sweep.rs")));
        let clock = wall_clock();
        assert!(clock.applies(Path::new("crates/bench/src/metrics.rs")));
    }

    #[test]
    fn xtask_is_out_of_scope() {
        let rule = std_collections();
        assert!(!rule.applies(Path::new("crates/xtask/src/main.rs")));
        assert!(rule.applies(Path::new("tests/replay.rs")));
    }
}
