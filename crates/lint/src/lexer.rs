//! A self-contained Rust lexer producing spanned tokens plus the comment
//! stream.
//!
//! This is the foundation the rules build on instead of the old
//! "blank-comments-and-grep" pass: every token knows its byte offset,
//! line and column, string/char literal *contents* never produce tokens
//! (so a `"HashMap"` in a log message can never trip a rule), and
//! comments are preserved separately because pragmas (`// lint: allow…`)
//! and `// SAFETY:` rationales live there.
//!
//! The grammar subset is deliberately small — identifiers (including raw
//! `r#ident`), lifetimes, literals (string, raw string, byte string,
//! char, numeric), one-character punctuation, and delimiters — but it is
//! *positionally exact*: the token stream round-trips source order, so
//! downstream passes can reconstruct paths (`a::b::c`), method calls
//! (`.unwrap()`), attributes (`#[cfg(test)]`) and item extents by
//! walking it.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`World`, `fn`, `unsafe`, `r#type`).
    Ident,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Any literal: string, raw string, byte string, char, or number.
    /// The contents are intentionally opaque to rules.
    Literal,
    /// A single punctuation character (`:`, `.`, `!`, `#`, …).
    Punct(u8),
    /// An opening delimiter: `(`, `[` or `{`.
    Open(u8),
    /// A closing delimiter: `)`, `]` or `}`.
    Close(u8),
}

/// One lexed token with its exact source extent.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// Byte offset of the first byte in the source.
    pub lo: usize,
    /// Byte offset one past the last byte.
    pub hi: usize,
    /// 1-based source line of `lo`.
    pub line: u32,
    /// 1-based source column (in bytes) of `lo`.
    pub col: u32,
}

impl Token {
    /// The token's text, sliced out of the file it was lexed from.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.lo..self.hi]
    }

    /// `true` if this is an identifier with exactly the given text.
    #[must_use]
    pub fn is_ident(&self, src: &str, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(src) == word
    }

    /// `true` for the given punctuation byte.
    #[must_use]
    pub fn is_punct(&self, ch: u8) -> bool {
        self.kind == TokenKind::Punct(ch)
    }
}

/// A comment, kept out of the token stream but preserved for pragma and
/// SAFETY-rationale scanning.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: u32,
}

/// Lexer output: the token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment, non-whitespace tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Invalid UTF-8 never reaches here (files are read as
/// `String`); genuinely malformed source produces a best-effort stream
/// rather than an error — the compiler, not the linter, owns syntax
/// diagnosis.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        text: src,
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            let next = self.src.get(self.pos + 1).copied();
            match b {
                b' ' | b'\t' | b'\r' => self.advance(1),
                b'\n' => self.newline(),
                b'/' if next == Some(b'/') => self.line_comment(),
                b'/' if next == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'r' if matches!(next, Some(b'"' | b'#')) && self.raw_string(0) => {}
                b'b' if next == Some(b'"') => {
                    self.advance(1);
                    self.string();
                }
                b'b' if next == Some(b'r') && self.raw_string(1) => {}
                b'\'' => self.char_or_lifetime(),
                _ if b.is_ascii_digit() => self.number(),
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => self.ident(),
                b'(' | b'[' | b'{' => {
                    self.push(TokenKind::Open(b), 1);
                }
                b')' | b']' | b'}' => {
                    self.push(TokenKind::Close(b), 1);
                }
                _ => {
                    self.push(TokenKind::Punct(b), 1);
                }
            }
        }
        self.out
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
        self.col += n as u32;
    }

    fn newline(&mut self) {
        self.pos += 1;
        self.line += 1;
        self.col = 1;
    }

    fn push(&mut self, kind: TokenKind, len: usize) {
        self.out.tokens.push(Token {
            kind,
            lo: self.pos,
            hi: self.pos + len,
            line: self.line,
            col: self.col,
        });
        self.advance(len);
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.advance(1);
        }
        self.out.comments.push(Comment {
            text: self.text[start..self.pos].to_string(),
            line,
            end_line: line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        let mut depth = 0u32;
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            let next = self.src.get(self.pos + 1).copied();
            if b == b'\n' {
                self.newline();
            } else if b == b'/' && next == Some(b'*') {
                depth += 1;
                self.advance(2);
            } else if b == b'*' && next == Some(b'/') {
                depth -= 1;
                self.advance(2);
                if depth == 0 {
                    break;
                }
            } else {
                self.advance(1);
            }
        }
        self.out.comments.push(Comment {
            text: self.text[start..self.pos].to_string(),
            line,
            end_line: self.line,
        });
    }

    /// A `"…"` string; emits one opaque Literal token.
    fn string(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        self.advance(1); // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.advance(2.min(self.src.len() - self.pos)),
                b'"' => {
                    self.advance(1);
                    break;
                }
                b'\n' => self.newline(),
                _ => self.advance(1),
            }
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Literal,
            lo: start,
            hi: self.pos,
            line,
            col,
        });
    }

    /// `r"…"`, `r#"…"#`, `br#"…"#` … Returns `false` (consuming nothing)
    /// if what follows is not actually a raw string (e.g. `r#ident`).
    fn raw_string(&mut self, b_prefix: usize) -> bool {
        let hash_start = self.pos + 1 + b_prefix;
        let mut hashes = 0;
        while self.src.get(hash_start + hashes) == Some(&b'#') {
            hashes += 1;
        }
        if self.src.get(hash_start + hashes) != Some(&b'"') {
            return false; // raw identifier or lone `r`
        }
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        self.advance(1 + b_prefix + hashes + 1); // r [b] #* "
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'\n' {
                self.newline();
            } else if self.src[self.pos] == b'"'
                && self.src[self.pos + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&c| c == b'#')
                    .count()
                    == hashes
            {
                self.advance(1 + hashes);
                break;
            } else {
                self.advance(1);
            }
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Literal,
            lo: start,
            hi: self.pos,
            line,
            col,
        });
        true
    }

    /// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) {
        let next = self.src.get(self.pos + 1).copied();
        let after = self.src.get(self.pos + 2).copied();
        let is_char = match next {
            Some(b'\\') => true,
            Some(_) if after == Some(b'\'') => true,
            _ => false,
        };
        if is_char {
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            self.advance(1);
            while self.pos < self.src.len() {
                match self.src[self.pos] {
                    b'\\' => self.advance(2.min(self.src.len() - self.pos)),
                    b'\'' => {
                        self.advance(1);
                        break;
                    }
                    b'\n' => self.newline(),
                    _ => self.advance(1),
                }
            }
            self.out.tokens.push(Token {
                kind: TokenKind::Literal,
                lo: start,
                hi: self.pos,
                line,
                col,
            });
        } else {
            // Lifetime: consume the quote plus the identifier run.
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            self.advance(1);
            while self
                .src
                .get(self.pos)
                .is_some_and(|&b| b == b'_' || b.is_ascii_alphanumeric())
            {
                self.advance(1);
            }
            self.out.tokens.push(Token {
                kind: TokenKind::Lifetime,
                lo: start,
                hi: self.pos,
                line,
                col,
            });
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        // Digits, underscores, type suffixes, hex/oct/bin prefixes, a
        // decimal point followed by a digit, exponents. Precision here is
        // unimportant — numbers are opaque to every rule.
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            let next = self.src.get(self.pos + 1).copied();
            let cont = b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && next.is_some_and(|n| n.is_ascii_digit()))
                || ((b == b'+' || b == b'-')
                    && matches!(self.src.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E')));
            if !cont {
                break;
            }
            self.advance(1);
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Literal,
            lo: start,
            hi: self.pos,
            line,
            col,
        });
    }

    fn ident(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        // Raw identifier prefix.
        if self.src[self.pos] == b'r' && self.src.get(self.pos + 1) == Some(&b'#') {
            self.advance(2);
        }
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.advance(1);
            } else {
                break;
            }
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Ident,
            lo: start,
            hi: self.pos,
            line,
            col,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn literals_are_opaque() {
        let toks = kinds(r#"let s = "HashMap::new()"; let c = 'x';"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || !t.contains("HashMap")));
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn comments_are_side_channel() {
        let out = lex("// HashMap here\nlet x = 1; /* SystemTime */\n");
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].line, 1);
        assert!(out.comments[1].text.contains("SystemTime"));
        assert!(out.tokens.iter().all(|t| t.kind != TokenKind::Ident
            || t.text("// HashMap here\nlet x = 1; /* SystemTime */\n") == "let"
            || t.text("// HashMap here\nlet x = 1; /* SystemTime */\n") == "x"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'y'; }";
        let out = lex(src);
        let lifetimes: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let src = r##"let a = r#"Instant"#; let r#type = 1;"##;
        let out = lex(src);
        let idents: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert!(idents.contains(&"r#type"));
        assert!(!idents.iter().any(|t| t.contains("Instant")));
    }

    #[test]
    fn positions_are_exact() {
        let src = "ab\n  cd::ef\n";
        let out = lex(src);
        let cd = out.tokens.iter().find(|t| t.text(src) == "cd").unwrap();
        assert_eq!((cd.line, cd.col), (2, 3));
        let ef = out.tokens.iter().find(|t| t.text(src) == "ef").unwrap();
        assert_eq!((ef.line, ef.col), (2, 7));
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* a /* b */ c */ fn main() {}");
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].text.ends_with("c */"));
        assert!(out.tokens.iter().any(|t| t.kind == TokenKind::Ident));
    }
}
