//! The exemption ratchet.
//!
//! Every audited exemption (pragma or `// SAFETY:` block) is inventoried
//! by the lint run; `lint-exemptions.txt` at the workspace root pins that
//! inventory. CI fails when the two diverge — growing the exemption set
//! requires touching the pinned file in the same commit, which makes the
//! growth visible in review. Shrinking diverges too (stale entries), so
//! the file never rots.
//!
//! `cargo xtask lint --update-exemptions` rewrites the file from the
//! current run.

use crate::diag::Report;
use std::path::Path;

/// The pinned inventory file, relative to the workspace root.
pub const EXEMPTIONS_FILE: &str = "lint-exemptions.txt";

const HEADER: &str = "\
# Audited lint exemptions — one line per (file, rule, reason).
# Regenerate with: cargo xtask lint --update-exemptions
# CI fails if this file does not exactly match the lint run's inventory;
# adding an exemption means changing this file in the same commit.
";

/// Result of comparing the run's inventory to the pinned file.
#[derive(Debug, PartialEq, Eq)]
pub enum RatchetStatus {
    /// Pinned file matches the inventory exactly.
    Match,
    /// Divergence: `missing` lines are new exemptions not yet pinned
    /// (the ratchet grew); `extra` lines are pinned but no longer
    /// produced (stale).
    Mismatch {
        /// In the inventory, not in the file.
        missing: Vec<String>,
        /// In the file, not in the inventory.
        extra: Vec<String>,
    },
}

/// Compares `report`'s inventory to the pinned file under `root`. A
/// missing file is treated as an empty inventory.
pub fn check(root: &Path, report: &Report) -> std::io::Result<RatchetStatus> {
    let pinned = read_pinned(root)?;
    let current = report.inventory();
    let missing: Vec<String> = current
        .iter()
        .filter(|l| !pinned.contains(l))
        .cloned()
        .collect();
    let extra: Vec<String> = pinned
        .iter()
        .filter(|l| !current.contains(l))
        .cloned()
        .collect();
    if missing.is_empty() && extra.is_empty() {
        Ok(RatchetStatus::Match)
    } else {
        Ok(RatchetStatus::Mismatch { missing, extra })
    }
}

/// Rewrites the pinned file from `report`'s inventory.
pub fn update(root: &Path, report: &Report) -> std::io::Result<()> {
    let mut text = String::from(HEADER);
    for line in report.inventory() {
        text.push_str(&line);
        text.push('\n');
    }
    std::fs::write(root.join(EXEMPTIONS_FILE), text)
}

fn read_pinned(root: &Path) -> std::io::Result<Vec<String>> {
    let path = root.join(EXEMPTIONS_FILE);
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Exemption;
    use std::path::PathBuf;

    fn report_with(lines: &[(&str, &str, &str)]) -> Report {
        let mut r = Report::default();
        for (path, rule, reason) in lines {
            r.exemptions.push(Exemption {
                path: PathBuf::from(path),
                rule: (*rule).to_string(),
                reason: (*reason).to_string(),
            });
        }
        r
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pds-lint-ratchet-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn update_then_check_matches() {
        let root = tmpdir("roundtrip");
        let report = report_with(&[("a.rs", "panic", "bounded"), ("b.rs", "wall-clock", "prof")]);
        update(&root, &report).unwrap();
        assert_eq!(check(&root, &report).unwrap(), RatchetStatus::Match);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn growth_is_reported_as_missing() {
        let root = tmpdir("growth");
        let pinned = report_with(&[("a.rs", "panic", "bounded")]);
        update(&root, &pinned).unwrap();
        let grown = report_with(&[("a.rs", "panic", "bounded"), ("c.rs", "panic", "new one")]);
        match check(&root, &grown).unwrap() {
            RatchetStatus::Mismatch { missing, extra } => {
                assert_eq!(missing, vec!["c.rs: allow(panic) -- new one"]);
                assert!(extra.is_empty());
            }
            RatchetStatus::Match => panic!("growth must not match"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_file_with_empty_inventory_matches() {
        let root = tmpdir("absent");
        let _ = std::fs::remove_file(root.join(EXEMPTIONS_FILE));
        assert_eq!(
            check(&root, &Report::default()).unwrap(),
            RatchetStatus::Match
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
