//! Diagnostics, severity, the aggregate report, and its machine-readable
//! JSON rendering.

use std::fmt;
use std::path::PathBuf;

/// How a finding affects the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Surfaced in output but never fails the run (hygiene nits such as
    /// stale pragmas).
    Warning,
    /// Fails `cargo xtask lint`.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One spanned finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule that produced it (also the `allow(…)` pragma name).
    pub rule: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Workspace-relative file.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Byte offset (used for region filtering, not displayed).
    pub offset: usize,
    /// What is wrong, specifically.
    pub message: String,
    /// The trimmed source line, for context without opening the file.
    pub excerpt: String,
    /// What to do instead.
    pub help: &'static str,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}:{}:{}: {}",
            self.severity,
            self.rule,
            self.path.display(),
            self.line,
            self.col,
            self.message,
        )?;
        if !self.excerpt.is_empty() {
            write!(f, "\n    | {}", self.excerpt)?;
        }
        if !self.help.is_empty() {
            write!(f, "\n    = help: {}", self.help)?;
        }
        Ok(())
    }
}

/// A finding suppressed by an audited pragma — kept, not discarded, so the
/// full exemption inventory is always one lint run away (and ratcheted).
#[derive(Debug, Clone)]
pub struct Exemption {
    /// File carrying the pragma.
    pub path: PathBuf,
    /// Rule the pragma allows.
    pub rule: String,
    /// The justification after `--`.
    pub reason: String,
}

impl Exemption {
    /// Canonical one-line form used in `lint-exemptions.txt`.
    #[must_use]
    pub fn inventory_line(&self) -> String {
        format!(
            "{}: allow({}) -- {}",
            self.path.display(),
            self.rule,
            self.reason
        )
    }
}

/// Aggregate result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings, sorted by (path, line, rule).
    pub findings: Vec<Diagnostic>,
    /// Audited exemptions (deduplicated pragma inventory).
    pub exemptions: Vec<Exemption>,
    /// Number of `.rs` files analyzed.
    pub files_checked: usize,
}

impl Report {
    /// `true` when no error-severity findings remain.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.findings.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Sorted, deduplicated exemption inventory lines (the ratchet file
    /// contents).
    #[must_use]
    pub fn inventory(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .exemptions
            .iter()
            .map(Exemption::inventory_line)
            .collect();
        lines.sort();
        lines.dedup();
        lines
    }

    /// Machine-readable rendering of the whole report.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, d) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            json_field(&mut out, "rule", d.rule, true);
            json_field(&mut out, "severity", &d.severity.to_string(), false);
            json_field(&mut out, "file", &d.path.display().to_string(), false);
            out.push_str(&format!("\"line\": {}, \"col\": {}, ", d.line, d.col));
            json_field(&mut out, "message", &d.message, false);
            json_field(&mut out, "excerpt", &d.excerpt, false);
            json_field(&mut out, "help", d.help, false);
            // Trim the trailing comma-space.
            while out.ends_with([' ', ',']) {
                out.pop();
            }
            out.push('}');
        }
        out.push_str("\n  ],\n  \"exemptions\": [");
        for (i, e) in self.exemptions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            json_field(&mut out, "file", &e.path.display().to_string(), true);
            json_field(&mut out, "rule", &e.rule, false);
            json_field(&mut out, "reason", &e.reason, false);
            while out.ends_with([' ', ',']) {
                out.pop();
            }
            out.push('}');
        }
        out.push_str(&format!(
            "\n  ],\n  \"summary\": {{\"files_checked\": {}, \"errors\": {}, \"warnings\": {}, \"exemptions\": {}}}\n}}\n",
            self.files_checked,
            self.error_count(),
            self.findings.len() - self.error_count(),
            self.exemptions.len(),
        ));
        out
    }
}

fn json_field(out: &mut String, key: &str, value: &str, first: bool) {
    if !first {
        // Caller already wrote a field; separators are embedded per-field.
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\": \"");
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push_str("\", ");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_summarizes() {
        let mut report = Report {
            files_checked: 3,
            ..Report::default()
        };
        report.findings.push(Diagnostic {
            rule: "wall-clock",
            severity: Severity::Error,
            path: PathBuf::from("crates/sim/src/x.rs"),
            line: 4,
            col: 9,
            offset: 0,
            message: "banned path `std::time::Instant` (say \"no\")".into(),
            excerpt: "let t = Instant::now();".into(),
            help: "use SimTime",
        });
        report.exemptions.push(Exemption {
            path: PathBuf::from("crates/sim/src/prof.rs"),
            rule: "wall-clock".into(),
            reason: "prof only".into(),
        });
        let json = report.to_json();
        assert!(json.contains("\\\"no\\\""), "quotes escaped: {json}");
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"exemptions\": 1"));
        assert!(json.contains("\"files_checked\": 3"));
    }

    #[test]
    fn inventory_is_sorted_and_deduped() {
        let mut report = Report::default();
        for _ in 0..2 {
            report.exemptions.push(Exemption {
                path: PathBuf::from("b.rs"),
                rule: "panic".into(),
                reason: "r".into(),
            });
        }
        report.exemptions.push(Exemption {
            path: PathBuf::from("a.rs"),
            rule: "panic".into(),
            reason: "r".into(),
        });
        assert_eq!(
            report.inventory(),
            vec!["a.rs: allow(panic) -- r", "b.rs: allow(panic) -- r"]
        );
    }
}
