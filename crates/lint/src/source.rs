//! Per-file syntactic model: the analysis passes every rule shares.
//!
//! A [`SourceFile`] is built once per file and hands rules:
//!
//! * **use-tree resolution** ([`Imports`]) — every `use` declaration parsed
//!   into (alias → canonical path) bindings, including nested groups
//!   (`use std::{collections::HashMap, thread}`), renames
//!   (`as Map` — the hole the old lexical scanner could not see) and
//!   glob imports;
//! * **path chains** — maximal `a::b::c` expression paths with the leading
//!   segment canonicalized through the import map, so
//!   `Instant::now()` under `use std::time::Instant` and
//!   `std::time::Instant::now()` resolve to the same banned path;
//! * **conditional-compilation regions** — byte extents gated by
//!   `#[cfg(test)]` and `#[cfg(feature = "prof")]`, which individual rules
//!   may opt out of (test code may unwrap; prof code may read the clock);
//! * **function spans** — `fn` items with best-effort `Type::fn` qualified
//!   names, so the panic rule can target `World::dispatch` specifically;
//! * **pragmas** — audited `// lint: allow(<rule>) -- <reason>` (line
//!   scope), `// lint: allow-file(<rule>) -- <reason>` (file scope) and the
//!   legacy `// det-lint: allow(<rule>) -- <reason>` (file scope) escape
//!   hatches.

use crate::lexer::{lex, Comment, Token, TokenKind};
use std::path::{Path, PathBuf};

/// A single name binding introduced by a `use` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// The name now visible in this file (the alias if `as` was used).
    pub name: String,
    /// Canonical path segments, e.g. `["std", "collections", "HashMap"]`.
    pub path: Vec<String>,
    /// 1-based line of the leaf segment (diagnostic anchor).
    pub line: u32,
    /// 1-based column of the leaf segment.
    pub col: u32,
    /// Byte offset of the leaf segment.
    pub offset: usize,
}

/// Resolved imports of one file.
#[derive(Debug, Default)]
pub struct Imports {
    /// Name bindings, in source order.
    pub bindings: Vec<Binding>,
    /// Glob imports (`use std::collections::*`), stored as a [`Binding`]
    /// named `*` whose path is the globbed prefix.
    pub globs: Vec<Binding>,
}

impl Imports {
    /// Canonicalizes a path chain: if the first segment is a local alias,
    /// splice in the imported path. Returns the canonical segments.
    #[must_use]
    pub fn canonicalize<'a>(&'a self, chain: &[&'a str]) -> Vec<&'a str> {
        let Some(first) = chain.first() else {
            return Vec::new();
        };
        for b in &self.bindings {
            if b.name == *first {
                let mut out: Vec<&str> = b.path.iter().map(String::as_str).collect();
                out.extend(&chain[1..]);
                return out;
            }
        }
        chain.to_vec()
    }
}

/// A `fn` item with its body extent.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type name, when inside an impl block.
    pub qualifier: Option<String>,
    /// Byte range covering the signature and body.
    pub lo: usize,
    /// End of the body (one past the closing brace), or of the `;` for
    /// bodyless trait declarations.
    pub hi: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

impl FnSpan {
    /// `World::dispatch`-style display name.
    #[must_use]
    pub fn qualified(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Scope of a pragma exemption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PragmaScope {
    /// Exempts findings on the pragma's own line or the line right below.
    Line,
    /// Exempts the rule for the whole file.
    File,
}

/// One audited exemption pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rule name inside `allow(…)`.
    pub rule: String,
    /// Justification after `--`. Pragmas without one are ignored (and
    /// reported), so an exemption can never be silent.
    pub reason: String,
    /// 1-based line the pragma comment starts on.
    pub line: u32,
    /// Last line of the comment (the line-scope anchor).
    pub end_line: u32,
    /// Line or file scope.
    pub scope: PragmaScope,
}

/// A fully analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// Raw source text.
    pub text: String,
    /// Token stream (comments excluded).
    pub tokens: Vec<Token>,
    /// Comment side-channel.
    pub comments: Vec<Comment>,
    /// Resolved `use` declarations.
    pub imports: Imports,
    /// All `fn` items.
    pub fns: Vec<FnSpan>,
    /// Byte ranges under `#[cfg(test)]`.
    pub cfg_test: Vec<(usize, usize)>,
    /// Byte ranges under `#[cfg(feature = "prof")]`.
    pub cfg_prof: Vec<(usize, usize)>,
    /// Token-index ranges occupied by `use` declarations (skipped by the
    /// expression-path scan; imports are checked via [`Imports`]).
    pub use_token_ranges: Vec<(usize, usize)>,
    /// Exemption pragmas, both valid and (separately flagged) reasonless.
    pub pragmas: Vec<Pragma>,
    /// Pragma-shaped comments missing the `-- reason` justification.
    pub reasonless_pragmas: Vec<(String, u32)>,
}

impl SourceFile {
    /// Lexes and analyzes one file.
    #[must_use]
    pub fn parse(path: &Path, text: String) -> Self {
        let lexed = lex(&text);
        let tokens = lexed.tokens;
        let comments = lexed.comments;
        let (imports, use_token_ranges) = parse_imports(&text, &tokens);
        let fns = parse_fns(&text, &tokens);
        let (cfg_test, cfg_prof) = cfg_regions(&text, &tokens);
        let (pragmas, reasonless_pragmas) = parse_pragmas(&comments);
        Self {
            path: path.to_path_buf(),
            text,
            tokens,
            comments,
            imports,
            fns,
            cfg_test,
            cfg_prof,
            use_token_ranges,
            pragmas,
            reasonless_pragmas,
        }
    }

    /// `true` if the byte offset lies in a `#[cfg(test)]` region.
    #[must_use]
    pub fn in_cfg_test(&self, offset: usize) -> bool {
        self.cfg_test
            .iter()
            .any(|&(lo, hi)| offset >= lo && offset < hi)
    }

    /// `true` if the byte offset lies in a `#[cfg(feature = "prof")]` region.
    #[must_use]
    pub fn in_cfg_prof(&self, offset: usize) -> bool {
        self.cfg_prof
            .iter()
            .any(|&(lo, hi)| offset >= lo && offset < hi)
    }

    /// The trimmed source line at a 1-based line number.
    #[must_use]
    pub fn line_text(&self, line: u32) -> &str {
        self.text
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
    }

    /// Maximal `a::b::c` path chains in expression/type position, skipping
    /// `use` declarations. Yields `(segments, first_token_index)`.
    #[must_use]
    pub fn path_chains(&self) -> Vec<(Vec<&str>, usize)> {
        let mut out = Vec::new();
        let toks = &self.tokens;
        let mut i = 0;
        while i < toks.len() {
            if self
                .use_token_ranges
                .iter()
                .any(|&(lo, hi)| i >= lo && i < hi)
            {
                i += 1;
                continue;
            }
            if toks[i].kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            // A chain continuation (`::ident`) was consumed by its start.
            if i >= 2 && toks[i - 1].is_punct(b':') && toks[i - 2].is_punct(b':') {
                i += 1;
                continue;
            }
            // Field/method accesses are not paths.
            if i >= 1 && toks[i - 1].is_punct(b'.') {
                i += 1;
                continue;
            }
            let start = i;
            let mut segs = vec![toks[i].text(&self.text)];
            let mut j = i + 1;
            while j + 2 < toks.len() + 1
                && j + 1 < toks.len()
                && toks[j].is_punct(b':')
                && toks.get(j + 1).is_some_and(|t| t.is_punct(b':'))
                && toks.get(j + 2).is_some_and(|t| t.kind == TokenKind::Ident)
            {
                segs.push(toks[j + 2].text(&self.text));
                j += 3;
            }
            out.push((segs, start));
            i = j.max(i + 1);
        }
        out
    }
}

/// Parses every `use` declaration into bindings and glob prefixes, and
/// records the token ranges they occupy.
fn parse_imports(text: &str, tokens: &[Token]) -> (Imports, Vec<(usize, usize)>) {
    let mut imports = Imports::default();
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident(text, "use") {
            let start = i;
            i += 1;
            let mut prefix: Vec<String> = Vec::new();
            i = parse_use_tree(text, tokens, i, &mut prefix, &mut imports);
            // Consume through the terminating `;` if present.
            while i < tokens.len() && !tokens[i].is_punct(b';') {
                i += 1;
            }
            i += 1;
            ranges.push((start, i));
        } else {
            i += 1;
        }
    }
    (imports, ranges)
}

/// Recursive-descent parse of one use-tree level. `prefix` holds the path
/// accumulated so far; returns the token index after this level.
fn parse_use_tree(
    text: &str,
    tokens: &[Token],
    mut i: usize,
    prefix: &mut Vec<String>,
    imports: &mut Imports,
) -> usize {
    let depth_here = prefix.len();
    let mut last_leaf: Option<usize> = None; // token index of last ident
    while i < tokens.len() {
        let tok = &tokens[i];
        match tok.kind {
            TokenKind::Ident => {
                let word = tok.text(text);
                if word == "as" {
                    // Alias: the binding name is the alias, path is what we
                    // accumulated.
                    if let Some(alias_tok) = tokens.get(i + 1) {
                        if alias_tok.kind == TokenKind::Ident {
                            imports.bindings.push(Binding {
                                name: alias_tok.text(text).to_string(),
                                path: prefix.clone(),
                                line: alias_tok.line,
                                col: alias_tok.col,
                                offset: alias_tok.lo,
                            });
                        }
                    }
                    // The leaf was consumed by the alias; drop it from the
                    // prefix and suppress the default binding.
                    last_leaf = None;
                    i += 2;
                    continue;
                }
                prefix.push(word.to_string());
                last_leaf = Some(i);
                i += 1;
            }
            TokenKind::Punct(b':') => i += 1,
            TokenKind::Punct(b'*') => {
                imports.globs.push(Binding {
                    name: "*".to_string(),
                    path: prefix.clone(),
                    line: tok.line,
                    col: tok.col,
                    offset: tok.lo,
                });
                last_leaf = None;
                i += 1;
            }
            TokenKind::Open(b'{') => {
                // Group: each comma-separated subtree extends the current
                // prefix.
                i += 1;
                loop {
                    let before = prefix.len();
                    i = parse_use_tree(text, tokens, i, prefix, imports);
                    prefix.truncate(before);
                    if i >= tokens.len() {
                        break;
                    }
                    if tokens[i].is_punct(b',') {
                        i += 1;
                        continue;
                    }
                    if tokens[i].kind == TokenKind::Close(b'}') {
                        i += 1;
                        break;
                    }
                    break;
                }
                last_leaf = None;
            }
            TokenKind::Punct(b',') | TokenKind::Close(b'}') | TokenKind::Punct(b';') => break,
            _ => i += 1,
        }
        // A leaf binding materializes when the tree ends after an ident.
        if i < tokens.len()
            && (tokens[i].is_punct(b',')
                || tokens[i].kind == TokenKind::Close(b'}')
                || tokens[i].is_punct(b';'))
        {
            if let Some(leaf) = last_leaf {
                let t = &tokens[leaf];
                imports.bindings.push(Binding {
                    name: t.text(text).to_string(),
                    path: prefix.clone(),
                    line: t.line,
                    col: t.col,
                    offset: t.lo,
                });
            }
            prefix.truncate(depth_here);
            break;
        }
    }
    i
}

/// Builds the open→close delimiter map for a token slice.
fn delim_map(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut map = vec![None; tokens.len()];
    let mut stack: Vec<(u8, usize)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Open(d) => stack.push((d, i)),
            TokenKind::Close(d) => {
                let want = match d {
                    b')' => b'(',
                    b']' => b'[',
                    _ => b'{',
                };
                if let Some(pos) = stack.iter().rposition(|&(od, _)| od == want) {
                    let (_, oi) = stack.remove(pos);
                    map[oi] = Some(i);
                }
            }
            _ => {}
        }
    }
    map
}

/// Collects `fn` items with best-effort impl-type qualifiers.
fn parse_fns(text: &str, tokens: &[Token]) -> Vec<FnSpan> {
    let map = delim_map(tokens);
    let mut fns = Vec::new();
    scan_items(text, tokens, &map, 0, tokens.len(), None, &mut fns);
    fns
}

fn scan_items(
    text: &str,
    tokens: &[Token],
    map: &[Option<usize>],
    mut i: usize,
    end: usize,
    qualifier: Option<&str>,
    fns: &mut Vec<FnSpan>,
) {
    while i < end {
        let tok = &tokens[i];
        if tok.is_ident(text, "impl") {
            if let Some((type_name, body_open)) = impl_header(text, tokens, i, end) {
                if let Some(close) = map[body_open] {
                    scan_items(
                        text,
                        tokens,
                        map,
                        body_open + 1,
                        close,
                        Some(&type_name),
                        fns,
                    );
                    i = close + 1;
                    continue;
                }
            }
            i += 1;
        } else if tok.is_ident(text, "mod") {
            // Inline module: recurse without an impl qualifier.
            let mut j = i + 1;
            while j < end
                && !matches!(
                    tokens[j].kind,
                    TokenKind::Open(b'{') | TokenKind::Punct(b';')
                )
            {
                j += 1;
            }
            if j < end && tokens[j].kind == TokenKind::Open(b'{') {
                if let Some(close) = map[j] {
                    scan_items(text, tokens, map, j + 1, close, None, fns);
                    i = close + 1;
                    continue;
                }
            }
            i = j + 1;
        } else if tok.is_ident(text, "fn") {
            let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
                i += 1;
                continue;
            };
            // Find the body `{` (or a `;` for bodyless declarations) at
            // this nesting level.
            let mut j = i + 2;
            let mut body = None;
            while j < end {
                match tokens[j].kind {
                    TokenKind::Open(b'{') => {
                        body = Some(j);
                        break;
                    }
                    TokenKind::Open(_) => {
                        j = map[j].map_or(j + 1, |c| c + 1);
                    }
                    TokenKind::Punct(b';') => break,
                    _ => j += 1,
                }
            }
            let hi = match body.and_then(|b| map[b]) {
                Some(close) => tokens[close].hi,
                None => tokens.get(j).map_or(tok.hi, |t| t.hi),
            };
            fns.push(FnSpan {
                name: name_tok.text(text).to_string(),
                qualifier: qualifier.map(str::to_string),
                lo: tok.lo,
                hi,
                line: tok.line,
            });
            i = match body.and_then(|b| map[b]) {
                Some(close) => close + 1,
                None => j + 1,
            };
        } else {
            i += 1;
        }
    }
}

/// Parses an `impl` header starting at token `i`; returns the implemented
/// type's last path segment and the index of the body's `{`.
fn impl_header(text: &str, tokens: &[Token], i: usize, end: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut after_for: Option<String> = None;
    let mut current: Option<String> = None;
    while j < end {
        let t = &tokens[j];
        match t.kind {
            TokenKind::Punct(b'<') => angle += 1,
            TokenKind::Punct(b'>') => angle -= 1,
            TokenKind::Ident if angle == 0 => {
                let w = t.text(text);
                if w == "for" {
                    after_for = Some(String::new()); // switch target
                } else if w == "where" {
                    // Type is settled; keep scanning for `{`.
                } else if after_for.is_some() {
                    after_for = Some(w.to_string());
                } else {
                    current = Some(w.to_string());
                }
            }
            TokenKind::Open(b'{') if angle <= 0 => {
                let name = match after_for {
                    Some(n) if !n.is_empty() => n,
                    _ => current?,
                };
                return Some((name, j));
            }
            TokenKind::Open(_) => {
                // Skip parenthesized/bracketed parts (e.g. tuple types).
                let mut depth = 1;
                j += 1;
                while j < end && depth > 0 {
                    match tokens[j].kind {
                        TokenKind::Open(_) => depth += 1,
                        TokenKind::Close(_) => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// A list of half-open byte ranges.
type Regions = Vec<(usize, usize)>;

/// Byte regions gated by `#[cfg(test)]` and `#[cfg(feature = "prof")]`.
fn cfg_regions(text: &str, tokens: &[Token]) -> (Regions, Regions) {
    let map = delim_map(tokens);
    let mut test = Vec::new();
    let mut prof = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Outer attribute: `#` `[` … `]` (skip inner `#![…]`).
        if tokens[i].is_punct(b'#')
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Open(b'['))
        {
            let open = i + 1;
            let Some(close) = map[open] else {
                i += 1;
                continue;
            };
            let attr_kind = classify_cfg(text, &tokens[open + 1..close]);
            // Find the extent of the gated item: skip further attributes,
            // then run to the first `;` at depth 0 or the close of the
            // first `{…}` group.
            let mut j = close + 1;
            while j + 1 < tokens.len()
                && tokens[j].is_punct(b'#')
                && tokens[j + 1].kind == TokenKind::Open(b'[')
            {
                j = map[j + 1].map_or(j + 2, |c| c + 1);
            }
            let mut k = j;
            let mut item_end = None;
            while k < tokens.len() {
                match tokens[k].kind {
                    TokenKind::Open(b'{') => {
                        item_end = map[k].map(|c| tokens[c].hi);
                        break;
                    }
                    TokenKind::Open(_) => {
                        k = map[k].map_or(k + 1, |c| c + 1);
                        continue;
                    }
                    TokenKind::Punct(b';') => {
                        item_end = Some(tokens[k].hi);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            if let Some(endpos) = item_end {
                let region = (tokens[i].lo, endpos);
                match attr_kind {
                    CfgKind::Test => test.push(region),
                    CfgKind::Prof => prof.push(region),
                    CfgKind::Other => {}
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    (test, prof)
}

enum CfgKind {
    Test,
    Prof,
    Other,
}

/// Classifies an attribute body (`cfg(test)`, `cfg(feature = "prof")`, …).
fn classify_cfg(text: &str, body: &[Token]) -> CfgKind {
    if body.first().is_none_or(|t| !t.is_ident(text, "cfg")) {
        return CfgKind::Other;
    }
    let has_test = body.iter().any(|t| t.is_ident(text, "test"));
    let has_prof_feature = body.iter().any(|t| t.is_ident(text, "feature"))
        && body
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text(text) == "\"prof\"");
    if has_test {
        CfgKind::Test
    } else if has_prof_feature {
        CfgKind::Prof
    } else {
        CfgKind::Other
    }
}

/// Extracts pragmas from the comment stream.
fn parse_pragmas(comments: &[Comment]) -> (Vec<Pragma>, Vec<(String, u32)>) {
    let mut pragmas = Vec::new();
    let mut reasonless = Vec::new();
    for c in comments {
        let body = c.text.trim_start_matches('/').trim();
        let (scope, rest) = if let Some(r) = body.strip_prefix("lint: allow-file(") {
            (PragmaScope::File, r)
        } else if let Some(r) = body.strip_prefix("lint: allow(") {
            (PragmaScope::Line, r)
        } else if let Some(r) = body.strip_prefix("det-lint: allow(") {
            // Legacy determinism pragma: file-scoped, still honored so the
            // audited exemptions in prof.rs / bench metrics carry over.
            (PragmaScope::File, r)
        } else {
            continue;
        };
        let Some((rule, after)) = rest.split_once(')') else {
            continue;
        };
        match after.trim_start().strip_prefix("--") {
            Some(reason) if !reason.trim().is_empty() => pragmas.push(Pragma {
                rule: rule.trim().to_string(),
                reason: reason.trim().to_string(),
                line: c.line,
                end_line: c.end_line,
                scope,
            }),
            // A pragma without a justification never exempts anything; it
            // is surfaced as its own finding instead.
            _ => reasonless.push((rule.trim().to_string(), c.line)),
        }
    }
    (pragmas, reasonless)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse(Path::new("test.rs"), src.to_string())
    }

    #[test]
    fn resolves_plain_and_aliased_imports() {
        let f = file("use std::collections::HashMap;\nuse std::collections::HashSet as Fast;\n");
        let names: Vec<_> = f
            .imports
            .bindings
            .iter()
            .map(|b| (b.name.as_str(), b.path.join("::")))
            .collect();
        assert!(names.contains(&("HashMap", "std::collections::HashMap".into())));
        assert!(names.contains(&("Fast", "std::collections::HashSet".into())));
    }

    #[test]
    fn resolves_nested_groups_and_globs() {
        let f = file(
            "use std::{collections::{HashMap, hash_map::Entry}, thread};\nuse std::time::*;\n",
        );
        let paths: Vec<String> = f
            .imports
            .bindings
            .iter()
            .map(|b| b.path.join("::"))
            .collect();
        assert!(paths.contains(&"std::collections::HashMap".to_string()));
        assert!(paths.contains(&"std::collections::hash_map::Entry".to_string()));
        assert!(paths.contains(&"std::thread".to_string()));
        assert_eq!(f.imports.globs.len(), 1);
        assert_eq!(f.imports.globs[0].path, vec!["std", "time"]);
    }

    #[test]
    fn canonicalizes_chains_through_aliases() {
        let f = file("use std::collections::HashMap as Map;\nfn f() { let m = Map::new(); }\n");
        let chains = f.path_chains();
        let map_chain = chains
            .iter()
            .find(|(segs, _)| segs.first() == Some(&"Map"))
            .expect("Map::new chain");
        assert_eq!(
            f.imports.canonicalize(&map_chain.0),
            vec!["std", "collections", "HashMap", "new"]
        );
    }

    #[test]
    fn use_statements_do_not_leak_into_chains() {
        let f = file("use std::time::Instant;\n");
        assert!(f.path_chains().is_empty());
    }

    #[test]
    fn finds_fn_spans_with_impl_qualifiers() {
        let f = file(
            "struct World;\nimpl World {\n    fn dispatch(&mut self) { self.x(); }\n}\nfn free() {}\nimpl std::fmt::Debug for World {\n    fn fmt(&self) {}\n}\n",
        );
        let names: Vec<_> = f.fns.iter().map(FnSpan::qualified).collect();
        assert_eq!(names, vec!["World::dispatch", "free", "World::fmt"]);
    }

    #[test]
    fn cfg_test_region_covers_mod_tests() {
        let f =
            file("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n");
        let unwrap_at = f.text.find("unwrap").unwrap();
        assert!(f.in_cfg_test(unwrap_at));
        let live_at = f.text.find("live").unwrap();
        assert!(!f.in_cfg_test(live_at));
    }

    #[test]
    fn cfg_prof_region_covers_gated_item() {
        let f = file("#[cfg(feature = \"prof\")]\nfn timed() { now(); }\nfn plain() {}\n");
        assert!(f.in_cfg_prof(f.text.find("now").unwrap()));
        assert!(!f.in_cfg_prof(f.text.find("plain").unwrap()));
    }

    #[test]
    fn pragma_scopes_parse() {
        let f = file(
            "// lint: allow(panic) -- index bounded by loop invariant\n// lint: allow-file(sans-io) -- adapter file\n// det-lint: allow(wall-clock) -- prof only\n// lint: allow(panic)\n",
        );
        assert_eq!(f.pragmas.len(), 3);
        assert_eq!(f.pragmas[0].scope, PragmaScope::Line);
        assert_eq!(f.pragmas[1].scope, PragmaScope::File);
        assert_eq!(f.pragmas[2].scope, PragmaScope::File);
        assert_eq!(f.reasonless_pragmas.len(), 1);
    }
}
