//! The lint engine: file walking, rule dispatch, cfg-region filtering,
//! pragma exemption, and report assembly.
//!
//! Rules stay declarative; every cross-cutting policy lives here so it is
//! applied identically to all of them:
//!
//! * findings inside `#[cfg(test)]` / `#[cfg(feature = "prof")]` regions
//!   are dropped when the rule opts out of them;
//! * an audited pragma (`// lint: allow(<rule>) -- <reason>`) converts a
//!   finding into an [`Exemption`] — recorded, ratcheted, never silent;
//! * reasonless pragmas and pragmas that suppress nothing are themselves
//!   findings (warning severity, rule `pragma`);
//! * output ordering is deterministic: files are walked sorted, findings
//!   sorted by (path, line, col, rule).

use crate::diag::{Diagnostic, Exemption, Report, Severity};
use crate::manifest;
use crate::rules::{default_rules, Rule, Workspace};
use crate::source::{PragmaScope, SourceFile};
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "fixtures", "vendor", ".git", "node_modules"];

/// Top-level directories scanned, relative to the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "tests"];

/// Runs the default rule registry over the workspace at `root`.
pub fn run(root: &Path) -> std::io::Result<Report> {
    run_rules(root, &default_rules())
}

/// Runs a specific rule set over the workspace at `root`.
pub fn run_rules(root: &Path, rules: &[Box<dyn Rule>]) -> std::io::Result<Report> {
    let files = collect_files(root)?;
    let ws = Workspace {
        manifests: manifest::load_workspace(root)?,
    };
    let mut report = Report::default();
    let mut findings: Vec<Diagnostic> = Vec::new();
    let mut exemptions: Vec<Exemption> = Vec::new();
    for rel in files {
        let text = std::fs::read_to_string(root.join(&rel))?;
        let file = SourceFile::parse(&rel, text);
        report.files_checked += 1;
        check_one(&file, rules, &mut findings, &mut exemptions);
    }
    for rule in rules {
        rule.check_workspace(&ws, &mut findings);
    }
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    exemptions.sort_by(|a, b| (&a.path, &a.rule, &a.reason).cmp(&(&b.path, &b.rule, &b.reason)));
    exemptions.dedup_by(|a, b| a.path == b.path && a.rule == b.rule && a.reason == b.reason);
    report.findings = findings;
    report.exemptions = exemptions;
    Ok(report)
}

/// Runs the per-file rules over one already-parsed file. Public for the
/// fixture tests, which lint single files with synthetic paths.
pub fn check_one(
    file: &SourceFile,
    rules: &[Box<dyn Rule>],
    findings: &mut Vec<Diagnostic>,
    exemptions: &mut Vec<Exemption>,
) {
    let mut pragma_used = vec![false; file.pragmas.len()];
    for rule in rules {
        if !rule.applies(&file.path) {
            continue;
        }
        let meta = rule.meta();
        let mut raw = Vec::new();
        rule.check_file(file, &mut raw, exemptions);
        for d in raw {
            if meta.skip_cfg_test && file.in_cfg_test(d.offset) {
                continue;
            }
            if meta.skip_cfg_prof && file.in_cfg_prof(d.offset) {
                continue;
            }
            let mut suppressed = false;
            for (pi, p) in file.pragmas.iter().enumerate() {
                if p.rule != d.rule {
                    continue;
                }
                let hit = match p.scope {
                    PragmaScope::File => true,
                    // A line pragma covers its own line(s) and the line
                    // directly below — the idiomatic "comment above the
                    // offending statement" placement.
                    PragmaScope::Line => d.line >= p.line && d.line <= p.end_line + 1,
                };
                if hit {
                    pragma_used[pi] = true;
                    exemptions.push(Exemption {
                        path: file.path.clone(),
                        rule: p.rule.clone(),
                        reason: p.reason.clone(),
                    });
                    suppressed = true;
                    break;
                }
            }
            if !suppressed {
                findings.push(d);
            }
        }
    }
    // Pragma hygiene: a reasonless pragma exempts nothing; a pragma that
    // suppressed nothing is stale (or names an unknown rule). Both are
    // surfaced as warnings so they get cleaned up without blocking CI.
    for (rule, line) in &file.reasonless_pragmas {
        findings.push(pragma_warning(
            file,
            *line,
            format!("pragma `allow({rule})` has no `-- <reason>`; it exempts nothing"),
        ));
    }
    for (pi, p) in file.pragmas.iter().enumerate() {
        if !pragma_used[pi] {
            findings.push(pragma_warning(
                file,
                p.line,
                format!("stale pragma: `allow({})` matched no finding", p.rule),
            ));
        }
    }
}

fn pragma_warning(file: &SourceFile, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        rule: "pragma",
        severity: Severity::Warning,
        path: file.path.clone(),
        line,
        col: 1,
        offset: 0,
        message,
        excerpt: file.line_text(line).to_string(),
        help: "pragmas must carry a justification and suppress a real finding",
    }
}

/// Collects workspace-relative `.rs` paths under the scan roots, sorted.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(path: &str, src: &str) -> (Vec<Diagnostic>, Vec<Exemption>) {
        let file = SourceFile::parse(Path::new(path), src.to_string());
        let mut findings = Vec::new();
        let mut exemptions = Vec::new();
        check_one(&file, &default_rules(), &mut findings, &mut exemptions);
        (findings, exemptions)
    }

    #[test]
    fn line_pragma_converts_finding_into_exemption() {
        let (findings, ex) = lint_src(
            "crates/sim/src/wheel.rs",
            "fn pop(&mut self, i: usize) -> u64 {\n    // lint: allow(panic) -- i is produced by the wheel's own cursor\n    self.slots[i]\n}\n",
        );
        let errors: Vec<_> = findings
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(ex.len(), 1);
        assert!(ex[0].reason.contains("cursor"));
    }

    #[test]
    fn pragma_for_the_wrong_rule_does_not_suppress() {
        let (findings, ex) = lint_src(
            "crates/sim/src/wheel.rs",
            "fn pop(&mut self, i: usize) -> u64 {\n    // lint: allow(wall-clock) -- wrong rule\n    self.slots[i]\n}\n",
        );
        assert!(findings.iter().any(|d| d.rule == "panic"), "{findings:?}");
        // And the mismatched pragma is flagged as stale.
        assert!(
            findings
                .iter()
                .any(|d| d.rule == "pragma" && d.message.contains("stale")),
            "{findings:?}"
        );
        assert!(ex.is_empty());
    }

    #[test]
    fn reasonless_pragma_is_flagged_and_ignored() {
        let (findings, _) = lint_src(
            "crates/sim/src/wheel.rs",
            "fn pop(&mut self, i: usize) -> u64 {\n    // lint: allow(panic)\n    self.slots[i]\n}\n",
        );
        assert!(findings.iter().any(|d| d.rule == "panic"));
        assert!(findings
            .iter()
            .any(|d| d.rule == "pragma" && d.message.contains("no `--")));
    }

    #[test]
    fn cfg_test_regions_are_exempt_for_optin_rules() {
        let (findings, _) = lint_src(
            "crates/sim/src/wheel.rs",
            "fn live(&self) -> Option<u64> { self.slots.first().copied() }\n#[cfg(test)]\nmod tests {\n    fn t() { super::x().unwrap(); }\n}\n",
        );
        assert!(findings.iter().all(|d| d.rule != "panic"), "{findings:?}");
    }

    #[test]
    fn legacy_det_lint_pragma_still_exempts_file_wide() {
        let (findings, ex) = lint_src(
            "crates/bench/src/metrics.rs",
            "// det-lint: allow(wall-clock) -- harness stopwatch, never feeds sim state\nuse std::time::Instant;\nfn t() -> Instant { Instant::now() }\n",
        );
        assert!(
            findings.iter().all(|d| d.rule != "wall-clock"),
            "{findings:?}"
        );
        // One exemption per suppressed finding here; `run_rules` dedupes
        // them into a single inventory line.
        assert!(!ex.is_empty());
        assert!(ex.iter().all(|e| e.reason.contains("stopwatch")));
    }
}
