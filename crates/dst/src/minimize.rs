//! Failing-case minimization: greedy shrink to a fixpoint.
//!
//! Given a failing spec, repeatedly try single-field shrink steps (halve a
//! count, zero a probability, drop a window) and keep any step after which
//! the case still fails with the **same** invariant — shrinking must not
//! trade a recall failure for, say, an unrelated termination artifact.
//! Every accepted step strictly decreases [`CaseSpec::size`], so the loop
//! terminates; the result is locally minimal (no single step can shrink it
//! further) and its one-line encoding is the repro artifact CI emits.

use crate::harness::{run_checked, CaseResult};
use crate::spec::CaseSpec;

/// What the minimizer did.
#[derive(Debug)]
pub struct Minimized {
    /// The smallest spec found that still fails the original invariant.
    pub spec: CaseSpec,
    /// The failing result of that spec (for the report).
    pub result: CaseResult,
    /// Accepted shrink steps.
    pub steps: usize,
    /// Candidate runs spent (accepted + rejected).
    pub attempts: usize,
}

/// Single-field shrink candidates, cheapest-first. Each strictly reduces
/// `size()`; none touches `max_retr` or the horizon (those are scenario
/// contract, not adversity — shrinking them would change what "failure"
/// means rather than simplify its trigger).
fn candidates(spec: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut CaseSpec)| {
        let mut c = spec.clone();
        f(&mut c);
        if c.size() < spec.size() {
            out.push(c);
        }
    };
    // Drop whole fault classes first: the biggest simplifications.
    push(&|c| c.partitions = 0);
    push(&|c| c.silences = 0);
    push(&|c| c.storms = 0);
    push(&|c| c.dup_ppm = 0);
    push(&|c| c.delay_ppm = 0);
    push(&|c| c.drop_ppm = 0);
    push(&|c| c.loss_ppm = 0);
    // Then peel one window at a time.
    push(&|c| c.partitions = c.partitions.saturating_sub(1));
    push(&|c| c.silences = c.silences.saturating_sub(1));
    push(&|c| c.storms = c.storms.saturating_sub(1));
    // Then halve the magnitudes.
    push(&|c| c.drop_ppm /= 2);
    push(&|c| c.loss_ppm /= 2);
    push(&|c| c.dup_ppm /= 2);
    push(&|c| c.delay_ppm /= 2);
    push(&|c| c.delay_max_ms = (c.delay_max_ms / 2).max(1));
    // Finally shrink the scenario itself.
    push(&|c| c.nodes = (c.nodes / 2).max(2));
    push(&|c| c.nodes = c.nodes.saturating_sub(1).max(2));
    push(&|c| c.messages = (c.messages / 2).max(1));
    push(&|c| c.entries = (c.entries / 2).max(1));
    push(&|c| c.msg_bytes = (c.msg_bytes / 2).max(16));
    out
}

/// Shrinks `failing` to a local minimum that still fails the same
/// invariant. `failing` must actually fail; returns it unchanged (zero
/// steps) if it does not.
#[must_use]
pub fn minimize(failing: &CaseResult) -> Minimized {
    let Some(kind) = failing.violation_kind().map(str::to_owned) else {
        return Minimized {
            spec: failing.spec.clone(),
            result: failing.clone(),
            steps: 0,
            attempts: 0,
        };
    };
    // Replay failures must be re-verified with the double-run; everything
    // else shrinks faster single-run.
    let replay = kind == "replay";
    let mut best = failing.clone();
    let mut steps = 0;
    let mut attempts = 0;
    loop {
        let mut improved = false;
        for cand in candidates(&best.spec) {
            attempts += 1;
            let r = run_checked(&cand, replay);
            if r.violation_kind() == Some(kind.as_str()) {
                best = r;
                steps += 1;
                improved = true;
                break; // restart the pass from the shrunk spec
            }
        }
        if !improved {
            return Minimized {
                spec: best.spec.clone(),
                result: best,
                steps,
                attempts,
            };
        }
    }
}

/// The one-line reproduction command for a spec, as CI logs it.
#[must_use]
pub fn repro_command(spec: &CaseSpec) -> String {
    format!(
        "cargo run --release -p pds-dst -- repro \"{}\"",
        spec.encode()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Family;

    /// A spec that fails the recall invariant by construction: radio loss
    /// and fault-layer drop far beyond the validated envelope, with ack
    /// retransmissions disabled so lost responses stay lost.
    fn broken_pds() -> CaseSpec {
        CaseSpec {
            family: Family::Pds,
            world_seed: 1,
            plan_seed: 1,
            nodes: 3,
            messages: 0,
            msg_bytes: 64,
            entries: 6,
            loss_ppm: 650_000,
            drop_ppm: 200_000,
            dup_ppm: 30_000,
            delay_ppm: 30_000,
            delay_max_ms: 200,
            partitions: 0,
            silences: 1,
            storms: 1,
            max_retr: 0,
            horizon_ds: 900,
        }
    }

    #[test]
    fn minimizer_converges_and_minimized_case_still_fails() {
        let original = run_checked(&broken_pds(), false);
        assert!(
            !original.passed(),
            "seeded bug must trip an invariant: {:?}",
            original.outcome
        );
        let kind = original.violation_kind().map(str::to_owned);
        let min = minimize(&original);
        assert!(min.steps > 0, "shrink must make progress");
        assert!(min.spec.size() < original.spec.size());
        let replayed = run_checked(&min.spec, false);
        assert_eq!(
            replayed.violation_kind().map(str::to_owned),
            kind,
            "minimized spec must fail the same invariant"
        );
        // Local minimality: no single candidate still fails.
        for cand in super::candidates(&min.spec) {
            let r = run_checked(&cand, false);
            assert_ne!(
                r.violation_kind(),
                kind.as_deref(),
                "not a fixpoint: {} still fails",
                cand.encode()
            );
        }
    }

    #[test]
    fn minimize_on_a_passing_case_is_a_no_op() {
        let spec = crate::harness::generate(77, 0);
        let r = run_checked(&spec, false);
        assert!(r.passed(), "{:?}", r.violations);
        let min = minimize(&r);
        assert_eq!(min.steps, 0);
        assert_eq!(min.spec, spec);
    }

    #[test]
    fn repro_command_embeds_the_exact_spec() {
        let cmd = repro_command(&broken_pds());
        assert!(cmd.contains("pds-dst -- repro"));
        assert!(cmd.contains("retr=0;"));
        let quoted = cmd.split('"').nth(1).expect("quoted spec");
        assert_eq!(CaseSpec::decode(quoted).expect("valid"), broken_pds());
    }
}
